"""Bench `latency`: §VI — results arrive more quickly under load.

Paper: "results to queries may be received more quickly, and the networks
can support more simultaneous queries."  The discrete-event network
(uplink queueing) shows the crossover: flooding is faster when idle but
saturates at a far lower query rate than association routing.
"""

from benchmarks.conftest import run_and_report


def test_latency_under_load(benchmark):
    run_and_report(benchmark, "latency")
