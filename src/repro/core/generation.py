"""GENERATE-RULESET: build a rule set from one block of query–reply pairs.

The procedure from §III-B.1 and §IV-B of the paper: count how often each
(query-source, reply-source) pair of neighbors co-occurs within the block,
then *support-prune* pairs seen fewer than ``min_support_count`` times
(paper default: 10).  Two extensions from §III-B.1 / §VI are options here:
keeping only the top-k consequents per antecedent, and confidence-based
pruning (confidence of ``{u} -> {v}`` = pair count / number of replied
queries from ``u`` in the block).

Two implementations are provided per the HPC guides (vectorize the hot
loop; keep a simple reference to validate against):

* ``implementation="numpy"`` (default) packs each pair into one int64 key
  and counts with a single ``np.unique`` pass;
* ``implementation="python"`` is a dict-based reference.

The test suite asserts they produce identical rule sets.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.rules import Rule, RuleSet
from repro.trace.blocks import PairBlock, scan_id_range

__all__ = ["generate_ruleset", "pack_pair_keys"]


def pack_pair_keys(
    sources: np.ndarray, repliers: np.ndarray, *, validate: bool = True
) -> np.ndarray:
    """Pack parallel (source, replier) id arrays into single int64 keys.

    Ids must be in ``[0, 2**31)`` so the packed key is collision-free.
    ``validate=False`` skips the min/max range scan — only pass it when the
    arrays were already checked (e.g. via :meth:`PairBlock.validate_ids`,
    which runs the scan once per block instead of on every call).
    """
    sources = np.asarray(sources, dtype=np.int64)
    repliers = np.asarray(repliers, dtype=np.int64)
    if validate:
        scan_id_range(sources, repliers)
    return (sources << 32) | repliers


def _counts_numpy(block: PairBlock) -> tuple[np.ndarray, np.ndarray]:
    return np.unique(block.packed_keys(), return_counts=True)


def _source_totals_numpy(block: PairBlock) -> dict[int, int]:
    uniq, counts = np.unique(block.sources, return_counts=True)
    return dict(zip(uniq.tolist(), counts.tolist()))


def generate_ruleset(
    block: PairBlock,
    *,
    min_support_count: int = 10,
    top_k: int | None = None,
    min_confidence: float = 0.0,
    implementation: str = "numpy",
) -> RuleSet:
    """Build a rule set from ``block``.

    Parameters
    ----------
    block:
        The training block of query–reply pairs.
    min_support_count:
        Support-pruning threshold: (source, replier) pairs used fewer than
        this many times in the block are removed (paper default 10).
    top_k:
        If given, keep only the ``k`` highest-support consequents per
        antecedent ("sent to the k neighbors with the highest support").
    min_confidence:
        Confidence-pruning threshold in [0, 1] (§VI extension); 0 disables.
    implementation:
        ``"numpy"`` (vectorized) or ``"python"`` (reference).
    """
    if min_support_count < 1:
        raise ValueError("min_support_count must be >= 1")
    if top_k is not None and top_k < 1:
        raise ValueError("top_k must be >= 1 or None")
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError("min_confidence must be in [0, 1]")

    if implementation == "numpy":
        keys, counts = _counts_numpy(block)
        keep = counts >= min_support_count
        keys, counts = keys[keep], counts[keep]
        if min_confidence > 0.0 and keys.size:
            totals = _source_totals_numpy(block)
            antecedents = (keys >> 32).tolist()
            conf_keep = np.fromiter(
                (
                    c / totals[a] >= min_confidence
                    for a, c in zip(antecedents, counts.tolist())
                ),
                dtype=bool,
                count=len(antecedents),
            )
            keys, counts = keys[conf_keep], counts[conf_keep]
        rules = [
            Rule(int(key >> 32), int(key & 0xFFFFFFFF), int(count))
            for key, count in zip(keys.tolist(), counts.tolist())
        ]
    elif implementation == "python":
        pair_counts: Counter[tuple[int, int]] = Counter(
            zip(block.sources.tolist(), block.repliers.tolist())
        )
        source_totals: Counter[int] = Counter(block.sources.tolist())
        rules = []
        for (source, replier), count in pair_counts.items():
            if count < min_support_count:
                continue
            if min_confidence > 0.0 and count / source_totals[source] < min_confidence:
                continue
            rules.append(Rule(source, replier, count))
    else:
        raise ValueError(f"unknown implementation {implementation!r}")

    if top_k is not None:
        by_ante: dict[int, list[Rule]] = {}
        for rule in rules:
            by_ante.setdefault(rule.antecedent, []).append(rule)
        rules = []
        for lst in by_ante.values():
            lst.sort(key=lambda r: (-r.count, r.consequent))
            rules.extend(lst[:top_k])
    return RuleSet(rules)
