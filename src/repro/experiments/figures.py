"""Runners for every figure and in-text result of the paper's evaluation.

Each ``run_*`` function regenerates one artifact (see DESIGN.md §5) and
returns an :class:`~repro.experiments.results.ExperimentResult` whose rows
compare measured values against the paper's reported ones, with acceptance
bands encoding the reproduction contract (shape and rough magnitude, not
bit-exact numbers — our substrate is a synthetic trace).
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro.core.strategies import (
    AdaptiveSlidingWindow,
    LazySlidingWindow,
    SlidingWindow,
    StaticRuleset,
)
from repro.core.streaming import StreamingRules
from repro.experiments.config import DEFAULT_SEED, current_scale
from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow
from repro.metrics.series import sawtooth_depth
from repro.trace.blocks import blocks_from_arrays
from repro.workload.tracegen import MonitorTraceConfig

__all__ = [
    "generate_trace_blocks",
    "run_static",
    "run_fig1_sliding",
    "run_fig2_block_sizes",
    "run_fig3_lazy",
    "run_fig4_adaptive",
    "run_adaptive_history",
    "run_streaming",
    "run_prune_ablation",
    "run_confidence_ablation",
]


def generate_trace_blocks(
    n_blocks: int,
    *,
    seed: int = DEFAULT_SEED,
    config: MonitorTraceConfig | None = None,
):
    """``n_blocks`` blocks of the calibrated synthetic trace.

    Resolution order, every tier bit-identical to the next:

    1. an installed trace provider (in-process memo or shared-memory
       view — see :mod:`repro.parallel.provider`), when the experiment
       engine has set one up;
    2. the on-disk trace-store cache
       (:func:`repro.trace.cache.store_backed_blocks`): the first run
       writes the trace as a columnar store, every later run — across
       processes — streams zero-copy memmap blocks back instead of
       regenerating.  ``REPRO_TRACE_CACHE_DIR`` moves the cache;
       ``REPRO_TRACE_STORE_CACHE=0`` disables this tier;
    3. direct generation (also the fallback if the cache directory is
       unusable).
    """
    from repro.parallel.provider import current_trace_provider, provide_pair_columns

    cfg = config or MonitorTraceConfig()
    n_pairs = n_blocks * cfg.block_size
    if current_trace_provider() is None and _store_cache_enabled():
        from repro.trace.cache import store_backed_blocks
        from repro.trace.store import TraceStoreError

        try:
            return store_backed_blocks(n_pairs, config=cfg, seed=seed)
        except (OSError, TraceStoreError) as exc:
            warnings.warn(
                f"trace-store cache unusable ({exc}); generating in memory",
                stacklevel=2,
            )
    sources, repliers = provide_pair_columns(cfg, seed, n_pairs)
    return blocks_from_arrays(sources, repliers, block_size=cfg.block_size)


def _store_cache_enabled() -> bool:
    return os.environ.get("REPRO_TRACE_STORE_CACHE", "1").strip().lower() not in (
        "0",
        "off",
        "no",
        "false",
    )


# ---------------------------------------------------------------------------
# §V-A  Static Ruleset
# ---------------------------------------------------------------------------
def run_static(*, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """§V-A: Static Ruleset degrades and never recovers."""
    scale = current_scale()
    blocks = generate_trace_blocks(scale.n_blocks_static, seed=seed)
    run = StaticRuleset().run(blocks)
    succ = run.success_series
    cov = run.coverage_series
    tail_success = float(np.mean(succ[16:])) if len(succ) > 16 else float("nan")
    plateau = float(np.mean(cov[2:12]))
    rows = [
        ComparisonRow(
            "success from trial 16 on (paper: ~0, never rises)",
            0.0,
            tail_success,
            band=(0.0, 0.08),
        ),
        ComparisonRow(
            "coverage plateau, trials 3-12 (paper: ~0.4)",
            0.40,
            plateau,
            band=(0.25, 0.55),
        ),
        ComparisonRow(
            "long-run average coverage (paper: 0.18 over 365 trials)",
            0.18,
            run.average_coverage,
            band=(0.10, 0.40),
        ),
        ComparisonRow(
            "late average success (paper: < 0.02 over 365 trials)",
            "<0.02",
            tail_success,
            band=(0.0, 0.08),
        ),
    ]
    return ExperimentResult(
        experiment_id="static",
        title="Static Ruleset over time (paper §V-A)",
        rows=rows,
        series={"coverage": cov, "success": succ},
        extras={"n_trials": run.n_trials},
    )


# ---------------------------------------------------------------------------
# Fig. 1  Sliding Window
# ---------------------------------------------------------------------------
def run_fig1_sliding(*, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Fig. 1: coverage and success of Sliding Window over time."""
    scale = current_scale()
    blocks = generate_trace_blocks(scale.n_blocks, seed=seed)
    run = SlidingWindow().run(blocks)
    rows = [
        ComparisonRow(
            "average coverage (paper: > 0.80)",
            0.80,
            run.average_coverage,
            band=(0.72, 0.88),
        ),
        ComparisonRow(
            "average success (paper: ~0.79)",
            0.79,
            run.average_success,
            band=(0.70, 0.88),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Sliding Window coverage & success over time (paper Fig. 1)",
        rows=rows,
        series={"coverage": run.coverage_series, "success": run.success_series},
    )


# ---------------------------------------------------------------------------
# Fig. 2  Sliding Window, block-size sweep
# ---------------------------------------------------------------------------
def run_fig2_block_sizes(
    *, seed: int = DEFAULT_SEED, block_sizes: tuple[int, ...] = (5_000, 10_000, 20_000, 50_000)
) -> ExperimentResult:
    """Fig. 2: Sliding Window coverage is similar across block sizes."""
    from repro.parallel.provider import provide_pair_columns

    scale = current_scale()
    cfg = MonitorTraceConfig()
    sources, repliers = provide_pair_columns(cfg, seed, scale.n_pairs_blocksweep)
    rows = []
    series: dict[str, list[float]] = {}
    coverages = {}
    for block_size in block_sizes:
        blocks = blocks_from_arrays(sources, repliers, block_size=block_size)
        if len(blocks) < 2:
            continue
        run = SlidingWindow().run(blocks)
        coverages[block_size] = run.average_coverage
        series[f"coverage_{block_size}"] = run.coverage_series
        rows.append(
            ComparisonRow(
                f"average coverage, block size {block_size}",
                "~0.8 (similar across sizes)",
                run.average_coverage,
                band=(0.60, 0.92),
            )
        )
    spread = max(coverages.values()) - min(coverages.values())
    rows.append(
        ComparisonRow(
            "coverage spread across block sizes (paper: very similar)",
            "small",
            spread,
            band=(0.0, 0.15),
        )
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Sliding Window coverage vs block size (paper Fig. 2)",
        rows=rows,
        series=series,
        extras={"coverages": coverages},
    )


# ---------------------------------------------------------------------------
# Fig. 3  Lazy Sliding Window
# ---------------------------------------------------------------------------
def run_fig3_lazy(*, seed: int = DEFAULT_SEED, laziness: int = 10) -> ExperimentResult:
    """Fig. 3: Lazy Sliding Window sawtooth; averages ≈ 0.59."""
    scale = current_scale()
    blocks = generate_trace_blocks(scale.n_blocks, seed=seed)
    run = LazySlidingWindow(laziness=laziness).run(blocks)
    depth = sawtooth_depth(run.success_series, laziness)
    rows = [
        ComparisonRow(
            "average coverage (paper: 0.59)",
            0.59,
            run.average_coverage,
            band=(0.45, 0.72),
        ),
        ComparisonRow(
            "average success (paper: 0.59)",
            0.59,
            run.average_success,
            band=(0.42, 0.72),
        ),
        ComparisonRow(
            "success sawtooth drop within a lazy span (paper: tapering decay)",
            ">0",
            depth,
            band=(0.05, 1.0),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig3",
        title="Lazy Sliding Window over time, regen every 10 blocks (paper Fig. 3)",
        rows=rows,
        series={"coverage": run.coverage_series, "success": run.success_series},
        extras={"n_generations": run.n_generations},
    )


# ---------------------------------------------------------------------------
# Fig. 4  Adaptive Sliding Window
# ---------------------------------------------------------------------------
def run_fig4_adaptive(
    *, seed: int = DEFAULT_SEED, history: int = 10
) -> ExperimentResult:
    """Fig. 4: Adaptive Sliding Window with rolling thresholds, N=10."""
    scale = current_scale()
    blocks = generate_trace_blocks(scale.n_blocks, seed=seed)
    run = AdaptiveSlidingWindow(history=history, initial_threshold=0.7).run(blocks)
    rows = [
        ComparisonRow(
            "average coverage (paper: 0.78)",
            0.78,
            run.average_coverage,
            band=(0.70, 0.86),
        ),
        ComparisonRow(
            "average success (paper: ~0.76-0.79)",
            0.77,
            run.average_success,
            band=(0.66, 0.86),
        ),
        ComparisonRow(
            "blocks per rule-set generation (paper: ~1.7)",
            1.7,
            run.blocks_per_generation,
            band=(1.2, 2.6),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Adaptive Sliding Window over time, history N=10 (paper Fig. 4)",
        rows=rows,
        series={"coverage": run.coverage_series, "success": run.success_series},
        extras={"n_generations": run.n_generations},
    )


# ---------------------------------------------------------------------------
# §V-D  Adaptive threshold-history comparison (N=10 vs N=50)
# ---------------------------------------------------------------------------
def run_adaptive_history(*, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """§V-D: larger threshold history regenerates less often, same quality."""
    scale = current_scale()
    blocks = generate_trace_blocks(scale.n_blocks, seed=seed)
    run10 = AdaptiveSlidingWindow(history=10, initial_threshold=0.7).run(blocks)
    run50 = AdaptiveSlidingWindow(history=50, initial_threshold=0.7).run(blocks)
    rows = [
        ComparisonRow(
            "blocks/generation, N=10 (paper: 1.7)",
            1.7,
            run10.blocks_per_generation,
            band=(1.2, 2.6),
        ),
        ComparisonRow(
            "blocks/generation, N=50 (paper: 1.9)",
            1.9,
            run50.blocks_per_generation,
            band=(1.2, 3.2),
        ),
        ComparisonRow(
            "N=50 average coverage (paper: 0.79)",
            0.79,
            run50.average_coverage,
            band=(0.70, 0.88),
        ),
        ComparisonRow(
            "N=50 average success (paper: 0.76)",
            0.76,
            run50.average_success,
            band=(0.66, 0.86),
        ),
        ComparisonRow(
            "N=50 regenerates no more often than N=10 (paper: half of Sliding)",
            ">=",
            run50.blocks_per_generation - run10.blocks_per_generation,
            band=(-0.4, 10.0),
        ),
    ]
    return ExperimentResult(
        experiment_id="adaptive-history",
        title="Adaptive thresholds: history N=10 vs N=50 (paper §V-D)",
        rows=rows,
        series={
            "coverage_n10": run10.coverage_series,
            "coverage_n50": run50.coverage_series,
            "success_n10": run10.success_series,
            "success_n50": run50.success_series,
        },
        extras={
            "generations_n10": run10.n_generations,
            "generations_n50": run50.n_generations,
        },
    )


# ---------------------------------------------------------------------------
# §VI  Streaming rule maintenance (future work; "above 90%")
# ---------------------------------------------------------------------------
def run_streaming(*, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """§VI: immediate rule updates beat every batch strategy.

    The paper reports coverage/success "consistently above 90%" on its
    trace.  On the synthetic trace, achievable coverage is capped by the
    ephemeral-source volume (~13% of queries come from one-shot hosts
    that no rule can ever cover), so the quantitative band here is the
    cap-adjusted one; the qualitative claim — streaming beats Sliding
    Window, which beats everything else — is asserted exactly.
    """
    scale = current_scale()
    blocks = generate_trace_blocks(scale.n_blocks, seed=seed)
    streaming = StreamingRules(min_support_count=5).run(blocks)
    sliding = SlidingWindow().run(blocks)
    rows = [
        ComparisonRow(
            "streaming average coverage (paper: > 0.90; ceiling here ~0.87)",
            0.90,
            streaming.average_coverage,
            band=(0.80, 1.0),
        ),
        ComparisonRow(
            "streaming average success (paper: > 0.90)",
            0.90,
            streaming.average_success,
            band=(0.80, 1.0),
        ),
        ComparisonRow(
            "streaming coverage - sliding coverage (paper: streaming best)",
            ">0",
            streaming.average_coverage - sliding.average_coverage,
            band=(0.0, 1.0),
        ),
        ComparisonRow(
            "streaming success - sliding success (paper: streaming best)",
            ">0",
            streaming.average_success - sliding.average_success,
            band=(0.0, 1.0),
        ),
    ]
    return ExperimentResult(
        experiment_id="streaming",
        title="Streaming rule maintenance (paper §VI future work)",
        rows=rows,
        series={
            "coverage": streaming.coverage_series,
            "success": streaming.success_series,
        },
    )


# ---------------------------------------------------------------------------
# §III-B.1  Support-prune threshold ablation
# ---------------------------------------------------------------------------
def run_prune_ablation(
    *, seed: int = DEFAULT_SEED, thresholds: tuple[int, ...] = (1, 5, 10, 25, 50)
) -> ExperimentResult:
    """§III-B.1/§V-B: rule quality across support-prune thresholds.

    The paper states Sliding Window "achieves very similar levels of
    coverage when either the block size or the query-reply pair threshold
    is altered" and that "only a small number of query-reply pairs are
    needed" — i.e. coverage degrades gracefully as the threshold rises.
    """
    scale = current_scale()
    blocks = generate_trace_blocks(scale.n_blocks, seed=seed)
    rows = []
    series = {}
    coverages = {}
    for threshold in thresholds:
        run = SlidingWindow(min_support_count=threshold).run(blocks)
        coverages[threshold] = run.average_coverage
        series[f"coverage_t{threshold}"] = run.coverage_series
        rows.append(
            ComparisonRow(
                f"average coverage, prune threshold {threshold}",
                "similar for moderate thresholds",
                run.average_coverage,
                band=(0.45, 0.95),
            )
        )
    monotone = all(
        coverages[a] >= coverages[b] - 0.02
        for a, b in zip(thresholds, thresholds[1:])
    )
    rows.append(
        ComparisonRow(
            "coverage non-increasing in threshold (support pruning semantics)",
            "monotone",
            1.0 if monotone else 0.0,
            band=(1.0, 1.0),
        )
    )
    if 5 in coverages and 10 in coverages:
        rows.append(
            ComparisonRow(
                "coverage spread, thresholds 5 vs 10 (paper: very similar)",
                "small",
                abs(coverages[5] - coverages[10]),
                band=(0.0, 0.10),
            )
        )
    if 5 in coverages and 25 in coverages:
        rows.append(
            ComparisonRow(
                "coverage spread, thresholds 5 vs 25 (beyond paper's sweep)",
                "-",
                abs(coverages[5] - coverages[25]),
            )
        )
    return ExperimentResult(
        experiment_id="prune-ablation",
        title="Support-prune threshold ablation (paper §III-B.1, §V-B)",
        rows=rows,
        series=series,
        extras={"coverages": coverages},
    )


# ---------------------------------------------------------------------------
# §VI  Confidence-based pruning extension
# ---------------------------------------------------------------------------
def run_confidence_ablation(
    *, seed: int = DEFAULT_SEED, confidences: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5)
) -> ExperimentResult:
    """§VI: confidence pruning shrinks rule sets while retaining quality."""
    scale = current_scale()
    blocks = generate_trace_blocks(scale.n_blocks, seed=seed)
    rows = []
    sizes = {}
    successes = {}
    coverages = {}
    for conf in confidences:
        run = SlidingWindow(min_confidence=conf).run(blocks)
        mean_size = float(np.mean([t.ruleset_size for t in run.trials]))
        sizes[conf] = mean_size
        successes[conf] = run.average_success
        coverages[conf] = run.average_coverage
        rows.append(
            ComparisonRow(
                f"mean rule-set size @ min_confidence={conf}",
                "shrinks with confidence",
                mean_size,
            )
        )
    shrank = sizes[max(confidences)] < sizes[0.0]
    rows.append(
        ComparisonRow(
            "rule sets shrink under confidence pruning",
            "yes",
            1.0 if shrank else 0.0,
            band=(1.0, 1.0),
        )
    )
    retained = successes[0.1] >= successes[0.0] - 0.05
    rows.append(
        ComparisonRow(
            "success retained at min_confidence=0.1 (within 0.05)",
            "yes",
            1.0 if retained else 0.0,
            band=(1.0, 1.0),
        )
    )
    return ExperimentResult(
        experiment_id="confidence-ablation",
        title="Confidence-based pruning extension (paper §VI)",
        rows=rows,
        extras={"sizes": sizes, "successes": successes, "coverages": coverages},
    )
