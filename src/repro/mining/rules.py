"""Association-rule extraction from frequent itemsets.

Given the frequent itemsets produced by :func:`~repro.mining.apriori.apriori`
or :func:`~repro.mining.fpgrowth.fpgrowth`, enumerate rules
``antecedent -> consequent`` (both non-empty, disjoint, union frequent) and
keep those passing the support and confidence thresholds — the pruning
process described in Section III-A of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.mining.measures import RuleMeasures, compute_measures
from repro.mining.transactions import TransactionDataset

__all__ = ["AssociationRule", "generate_rules"]


@dataclass(frozen=True)
class AssociationRule:
    """One mined rule with its measures.

    ``antecedent`` and ``consequent`` hold *original* items (decoded from
    internal ids) so callers never see the encoding.
    """

    antecedent: frozenset
    consequent: frozenset
    measures: RuleMeasures

    @property
    def support(self) -> float:
        return self.measures.support

    @property
    def confidence(self) -> float:
        return self.measures.confidence

    def __str__(self) -> str:  # pragma: no cover - display convenience
        ante = "{" + ", ".join(map(str, sorted(self.antecedent, key=str))) + "}"
        cons = "{" + ", ".join(map(str, sorted(self.consequent, key=str))) + "}"
        return (
            f"{ante} -> {cons} "
            f"(supp={self.support:.3f}, conf={self.confidence:.3f})"
        )


def generate_rules(
    dataset: TransactionDataset,
    frequent_itemsets: dict[frozenset[int], int],
    *,
    min_confidence: float = 0.0,
    min_support: float = 0.0,
) -> list[AssociationRule]:
    """Enumerate rules from ``frequent_itemsets`` passing both thresholds.

    Parameters
    ----------
    dataset:
        The dataset the itemsets were mined from (provides total transaction
        count and id decoding).
    frequent_itemsets:
        Mapping itemset -> support count, as returned by the miners.  Every
        subset of a listed itemset must itself be listed (true for both
        miners by the anti-monotone property).
    min_confidence, min_support:
        Fractional thresholds in [0, 1].

    Returns
    -------
    list of :class:`AssociationRule`, sorted by descending confidence then
    descending support (a deterministic, useful default ordering).
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError("min_confidence must be in [0, 1]")
    if not 0.0 <= min_support <= 1.0:
        raise ValueError("min_support must be in [0, 1]")
    n = len(dataset)
    if n == 0:
        return []

    rules: list[AssociationRule] = []
    for itemset, union_count in frequent_itemsets.items():
        if len(itemset) < 2:
            continue
        if union_count / n < min_support:
            continue
        items = sorted(itemset)
        for r in range(1, len(items)):
            for ante_tuple in combinations(items, r):
                antecedent = frozenset(ante_tuple)
                consequent = itemset - antecedent
                ante_count = frequent_itemsets.get(antecedent)
                cons_count = frequent_itemsets.get(consequent)
                if ante_count is None or cons_count is None:
                    # Subset missing can only happen if the caller passed a
                    # filtered mapping; fall back to an exact scan.
                    ante_count = dataset.support_count(antecedent)
                    cons_count = dataset.support_count(consequent)
                if ante_count == 0:
                    continue
                confidence = union_count / ante_count
                if confidence < min_confidence:
                    continue
                measures = compute_measures(
                    n_transactions=n,
                    antecedent_count=ante_count,
                    consequent_count=cons_count,
                    union_count=union_count,
                )
                rules.append(
                    AssociationRule(
                        antecedent=dataset.decode_itemset(antecedent),
                        consequent=dataset.decode_itemset(consequent),
                        measures=measures,
                    )
                )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, str(rule)))
    return rules
