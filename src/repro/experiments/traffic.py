"""Online traffic-reduction experiment (the paper's motivating claim).

§I/§VI argue that forwarding queries along association rules yields "a
dramatic reduction in the number of queries that are flooded" without
hurting result quality.  The paper does not plot this (its evaluation is
trace-driven), so this experiment supplies the missing end-to-end check:
the same query workload is pushed through each routing strategy on the
same overlay, comparing messages per query and hit rate.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED, current_scale
from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow
from repro.metrics.traffic import TrafficStats
from repro.network.overlay import Overlay, OverlayConfig
from repro.routing import (
    AssociationRoutingPolicy,
    ExpandingRingPolicy,
    FloodingPolicy,
    InterestShortcutsPolicy,
    KRandomWalkPolicy,
    RoutingIndicesPolicy,
    build_routing_indices,
)
from repro.utils.rng import as_generator

__all__ = ["run_traffic_comparison", "STRATEGY_FACTORIES"]


def _assoc_factory(nid, overlay):
    return AssociationRoutingPolicy(nid, overlay, top_k=2, window=2048)


def _kwalk_factory_builder(seed):
    rng = as_generator(seed)

    def factory(nid, overlay):
        return KRandomWalkPolicy(nid, overlay, seed=int(rng.integers(1 << 30)))

    return factory


STRATEGY_FACTORIES = {
    "flooding": lambda nid, ov: FloodingPolicy(nid, ov),
    "expanding-ring": lambda nid, ov: ExpandingRingPolicy(nid, ov),
    "shortcuts": lambda nid, ov: InterestShortcutsPolicy(nid, ov),
    "routing-indices": lambda nid, ov: RoutingIndicesPolicy(nid, ov),
    "association": _assoc_factory,
}


def run_strategy_traffic(
    name: str,
    *,
    seed: int = DEFAULT_SEED,
    n_nodes: int | None = None,
    n_queries: int | None = None,
    warmup: int | None = None,
    churn_rate: float = 0.002,
) -> TrafficStats:
    """Run one strategy's workload on a freshly built identical overlay."""
    scale = current_scale()
    n_nodes = n_nodes or scale.overlay_nodes
    n_queries = n_queries or scale.overlay_queries
    overlay = Overlay(OverlayConfig(n_nodes=n_nodes, churn_rate=churn_rate), seed=seed)
    if name == "k-random-walk":
        factory = _kwalk_factory_builder(seed + 1)
    else:
        factory = STRATEGY_FACTORIES[name]
    overlay.install_policies(factory)
    if name == "routing-indices":
        index = build_routing_indices(overlay, horizon=3)
        for node_id in range(overlay.n_nodes):
            overlay.node(node_id).policy.install_index(index[node_id])
    if warmup is None:
        # Learning strategies get a warmup workload; memoryless ones don't
        # need one (keeps total runtime proportionate).
        learning = name in ("association", "shortcuts")
        warmup = scale.overlay_warmup if learning else 0
    return overlay.run_workload(n_queries, warmup=warmup)


def run_traffic_comparison(*, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Compare all strategies on identical overlays and workloads."""
    names = [
        "flooding",
        "expanding-ring",
        "k-random-walk",
        "shortcuts",
        "routing-indices",
        "association",
    ]
    stats: dict[str, TrafficStats] = {}
    for name in names:
        stats[name] = run_strategy_traffic(name, seed=seed)
    flood = stats["flooding"]
    assoc = stats["association"]
    rows = [
        ComparisonRow(
            f"messages/query [{name}]",
            "flooding worst",
            s.messages_per_query,
        )
        for name, s in stats.items()
    ]
    reduction = (
        flood.messages_per_query / assoc.messages_per_query
        if assoc.messages_per_query
        else float("inf")
    )
    rows.append(
        ComparisonRow(
            "flooding/association message ratio (paper: dramatic reduction)",
            ">1.5x",
            reduction,
            band=(1.5, 1000.0),
        )
    )
    rows.append(
        ComparisonRow(
            "association hit rate vs flooding (paper: quality preserved)",
            "~equal",
            assoc.success_rate - flood.success_rate,
            band=(-0.10, 1.0),
        )
    )
    return ExperimentResult(
        experiment_id="traffic",
        title="Online traffic reduction across routing strategies (paper §I/§VI claim)",
        rows=rows,
        extras={name: str(s) for name, s in stats.items()},
    )
