"""Tests for repro.trace.io."""

import pytest

from repro.trace.io import read_queries, read_replies, write_queries, write_replies
from repro.trace.records import QueryRecord, ReplyRecord


def sample_queries():
    return [
        QueryRecord(time=1.25, guid=11, source=1, query_string="topic001 item00001"),
        QueryRecord(time=2.5, guid=22, source=2, query_string="topic002 item00002 live"),
    ]


def sample_replies():
    return [
        ReplyRecord(time=1.5, guid=11, replier=9, host=1000, file_name="cat001/file00001.dat"),
    ]


class TestQueryRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "queries.tsv"
        n = write_queries(path, sample_queries())
        assert n == 2
        table = read_queries(path)
        assert len(table) == 2
        assert table.row(0) == (1.25, 11, 1, "topic001 item00001")
        assert table.row(1) == (2.5, 22, 2, "topic002 item00002 live")

    def test_rejects_tab_in_string(self, tmp_path):
        bad = [QueryRecord(time=1.0, guid=1, source=1, query_string="a\tb")]
        with pytest.raises(ValueError):
            write_queries(tmp_path / "q.tsv", bad)

    def test_bad_header_detected(self, tmp_path):
        path = tmp_path / "bogus.tsv"
        path.write_text("not a header\n")
        with pytest.raises(ValueError):
            read_queries(path)


class TestReplyRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "replies.tsv"
        assert write_replies(path, sample_replies()) == 1
        table = read_replies(path)
        assert table.row(0) == (1.5, 11, 9, 1000, "cat001/file00001.dat")

    def test_bad_header_detected(self, tmp_path):
        path = tmp_path / "bogus.tsv"
        path.write_text("time\tguid\n")
        with pytest.raises(ValueError):
            read_replies(path)

    def test_empty_file_roundtrip(self, tmp_path):
        path = tmp_path / "empty.tsv"
        write_replies(path, [])
        assert len(read_replies(path)) == 0


class TestChunkedReads:
    def _many_queries(self, n=23):
        return [
            QueryRecord(time=float(i), guid=i, source=i % 5, query_string=f"q {i}")
            for i in range(n)
        ]

    def test_chunk_size_does_not_change_result(self, tmp_path):
        path = tmp_path / "queries.tsv"
        write_queries(path, self._many_queries())
        baseline = read_queries(path)
        for chunk_size in (1, 2, 7, 23, 1000):
            table = read_queries(path, chunk_size=chunk_size)
            assert len(table) == len(baseline)
            assert table.row(22) == baseline.row(22)

    def test_reply_chunk_sizes(self, tmp_path):
        path = tmp_path / "replies.tsv"
        records = [
            ReplyRecord(time=float(i), guid=i, replier=i, host=i, file_name=f"f {i}")
            for i in range(11)
        ]
        write_replies(path, records)
        assert len(read_replies(path, chunk_size=4)) == 11

    def test_rejects_bad_chunk_size(self, tmp_path):
        path = tmp_path / "queries.tsv"
        write_queries(path, self._many_queries(3))
        with pytest.raises(ValueError):
            read_queries(path, chunk_size=0)

    def test_row_iterators_stream_lazily(self, tmp_path):
        from repro.trace.io import iter_query_rows, iter_reply_rows

        qpath = tmp_path / "queries.tsv"
        write_queries(qpath, self._many_queries(5))
        it = iter_query_rows(qpath)
        assert next(it) == (0.0, 0, 0, "q 0")
        assert len(list(it)) == 4

        rpath = tmp_path / "replies.tsv"
        write_replies(
            rpath, [ReplyRecord(time=1.0, guid=2, replier=3, host=4, file_name="x y")]
        )
        assert list(iter_reply_rows(rpath)) == [(1.0, 2, 3, 4, "x y")]

    def test_row_iterator_bad_header(self, tmp_path):
        from repro.trace.io import iter_query_rows

        path = tmp_path / "bogus.tsv"
        path.write_text("nope\n")
        with pytest.raises(ValueError):
            next(iter_query_rows(path))
