"""Tests for repro.network.protocol (Gnutella wire codec)."""

import pytest
from hypothesis import given, strategies as st

from repro.network.protocol import (
    PAYLOAD_PING,
    PAYLOAD_QUERY,
    DescriptorHeader,
    PingMessage,
    PongMessage,
    QueryHitMessage,
    ProtocolError,
    QueryMessage,
    ReplyRoutingTable,
    decode_message,
    encode_message,
)


class TestDescriptorHeader:
    def test_roundtrip(self):
        header = DescriptorHeader(
            guid=1234567890123456789, payload_type=PAYLOAD_QUERY,
            ttl=7, hops=0, payload_length=42,
        )
        assert DescriptorHeader.decode(header.encode()) == header

    def test_encoded_size_is_23_bytes(self):
        header = DescriptorHeader(1, PAYLOAD_PING, 1, 0, 0)
        assert len(header.encode()) == 23

    def test_aged(self):
        header = DescriptorHeader(1, PAYLOAD_QUERY, ttl=7, hops=0, payload_length=0)
        aged = header.aged()
        assert aged.ttl == 6 and aged.hops == 1
        assert aged.guid == header.guid

    def test_cannot_age_dead_descriptor(self):
        header = DescriptorHeader(1, PAYLOAD_QUERY, ttl=0, hops=7, payload_length=0)
        with pytest.raises(ValueError):
            header.aged()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"guid": 1 << 128},
            {"payload_type": 0x42},
            {"ttl": 256},
            {"hops": -1},
            {"payload_length": -1},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(guid=1, payload_type=PAYLOAD_PING, ttl=1, hops=0, payload_length=0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            DescriptorHeader(**base)

    def test_truncated_decode(self):
        with pytest.raises(ValueError):
            DescriptorHeader.decode(b"\x00" * 10)


class TestPayloads:
    def test_ping_roundtrip(self):
        data = encode_message(7, 3, 1, PingMessage())
        header, payload = decode_message(data)
        assert header.guid == 7
        assert isinstance(payload, PingMessage)

    def test_pong_roundtrip(self):
        pong = PongMessage(port=6346, ip="10.1.2.3", n_files=120, n_kilobytes=54321)
        header, decoded = decode_message(encode_message(9, 2, 5, pong))
        assert decoded == pong

    def test_query_roundtrip(self):
        query = QueryMessage(min_speed=56, search="topic007 item00123 live")
        _header, decoded = decode_message(encode_message(11, 7, 0, query))
        assert decoded == query

    def test_query_hit_roundtrip(self):
        hit = QueryHitMessage(
            port=6346,
            ip="10.9.8.7",
            speed=128,
            file_index=42,
            file_size=3_500_000,
            file_name="cat007/file00042.dat",
            servent_guid=(1 << 100) + 5,
        )
        _header, decoded = decode_message(encode_message(13, 7, 2, hit))
        assert decoded == hit

    def test_payload_length_mismatch_detected(self):
        data = encode_message(1, 1, 0, QueryMessage(0, "abc"))
        with pytest.raises(ValueError):
            decode_message(data + b"extra")

    def test_nul_in_search_rejected(self):
        with pytest.raises(ValueError):
            QueryMessage(0, "bad\x00string").encode_payload()

    def test_bad_ip_rejected(self):
        with pytest.raises(ValueError):
            PongMessage(1, "not-an-ip", 0, 0).encode_payload()
        with pytest.raises(ValueError):
            PongMessage(1, "1.2.3.999", 0, 0).encode_payload()

    @given(
        st.integers(0, (1 << 128) - 1),
        st.integers(1, 255),
        st.integers(0, 255),
        st.text(
            alphabet=st.characters(min_codepoint=1, max_codepoint=0x10FFFF,
                                   blacklist_categories=("Cs",)),
            max_size=60,
        ),
    )
    def test_query_roundtrip_property(self, guid, ttl, hops, search):
        query = QueryMessage(min_speed=0, search=search)
        data = encode_message(guid, ttl, hops, query)
        header, decoded = decode_message(data)
        assert header.guid == guid
        assert decoded.search == search


class TestReplyRoutingTable:
    def test_records_first_route(self):
        table = ReplyRoutingTable()
        assert table.record(100, upstream=3)
        assert table.route_for(100) == 3

    def test_duplicate_guid_dropped(self):
        """The GUID dedup behaviour the paper's pipeline relies on."""
        table = ReplyRoutingTable()
        assert table.record(100, upstream=3)
        assert not table.record(100, upstream=9)
        assert table.route_for(100) == 3  # original route kept

    def test_unknown_guid(self):
        assert ReplyRoutingTable().route_for(5) is None

    def test_fifo_eviction(self):
        table = ReplyRoutingTable(capacity=2)
        table.record(1, 10)
        table.record(2, 11)
        table.record(3, 12)
        assert table.route_for(1) is None
        assert table.route_for(2) == 11
        assert len(table) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReplyRoutingTable(capacity=0)

    def test_routing_a_reply_refreshes_eviction_order(self):
        """Regression: an entry still carrying live reply traffic must not
        be the first one evicted just because it was recorded earliest."""
        table = ReplyRoutingTable(capacity=3)
        table.record(1, 10)
        table.record(2, 11)
        table.record(3, 12)
        assert table.route_for(1) == 10  # touch guid 1: now most recent
        table.record(4, 13)  # evicts guid 2, the stalest entry
        assert table.route_for(1) == 10
        assert table.route_for(2) is None
        assert table.route_for(3) == 12
        assert table.route_for(4) == 13

    def test_route_for_miss_does_not_disturb_order(self):
        table = ReplyRoutingTable(capacity=2)
        table.record(1, 10)
        table.record(2, 11)
        assert table.route_for(99) is None
        table.record(3, 12)
        assert table.route_for(1) is None  # guid 1 was still the stalest


class TestProtocolError:
    def test_is_value_error_subclass(self):
        assert issubclass(ProtocolError, ValueError)

    def test_truncated_header(self):
        with pytest.raises(ProtocolError):
            DescriptorHeader.decode(b"\x00" * 10)

    def test_unknown_payload_type(self):
        raw = bytes(16) + bytes([0x99, 7, 0]) + (0).to_bytes(4, "little")
        with pytest.raises(ProtocolError):
            DescriptorHeader.decode(raw)

    def test_truncated_frame(self):
        data = encode_message(1, 7, 0, QueryMessage(min_speed=0, search="ab"))
        with pytest.raises(ProtocolError):
            decode_message(data[:-1])

    def test_short_pong_payload_is_protocol_error(self):
        frame = (
            bytes(16)
            + bytes([0x01, 7, 0])  # Pong wants 14 payload bytes
            + (3).to_bytes(4, "little")
            + b"\x00\x01\x02"
        )
        with pytest.raises(ProtocolError):
            decode_message(frame)

    def test_nul_in_search_criteria(self):
        payload = b"\x00\x00" + b"a\x00b" + b"\x00"
        frame = (
            bytes(16)
            + bytes([PAYLOAD_QUERY, 7, 0])
            + len(payload).to_bytes(4, "little")
            + payload
        )
        with pytest.raises(ProtocolError):
            decode_message(frame)

    def test_query_hit_trailing_garbage(self):
        hit = QueryHitMessage(
            port=6346,
            ip="10.0.0.1",
            speed=0,
            file_index=0,
            file_size=1,
            file_name="x",
            servent_guid=7,
        )
        payload = hit.encode_payload() + b"junk"
        frame = (
            bytes(16)
            + bytes([0x81, 7, 0])
            + len(payload).to_bytes(4, "little")
            + payload
        )
        with pytest.raises(ProtocolError):
            decode_message(frame)
