"""Warm crash recovery over real TCP: kill -9 a servent, restart it, and
prove the recovered rule state is bit-identical to what the dying node
held — the tentpole acceptance scenario for :mod:`repro.persist`.

``hard=True`` kills skip the graceful final checkpoint, so recovery has
to come through the snapshot + WAL-tail path, exactly like a SIGKILL'd
daemon.  Fingerprints (blake2b over canonical count state) are the
equality oracle throughout.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.core.streaming import StreamingRules
from repro.live import LiveCluster, harness_config, make_vocabulary
from repro.network.topology import Topology
from repro.persist import PersistentState, fingerprint_counts
from tests.live.test_cluster import targeted_plan


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def star(n_nodes: int) -> Topology:
    return Topology(n_nodes, [(0, i) for i in range(1, n_nodes)])


def cluster_kwargs(tmp_path, **overrides):
    kwargs = dict(
        rule_routed=True,
        top_k=1,
        config=harness_config(),
        state_dir=str(tmp_path / "state"),
        checkpoint_interval=30.0,  # timer stays out of the way by default
        fsync="never",
    )
    kwargs.update(overrides)
    return kwargs


def warmup(n_leaves=4, n_queries=80, seed=7):
    vocab = make_vocabulary(15)
    return vocab, targeted_plan(n_leaves, vocab, n_queries, np.random.default_rng(seed))


@pytest.mark.live
class TestWarmRestart:
    def test_hard_kill_then_restart_recovers_bit_identical_state(self, tmp_path):
        async def body():
            vocab, plan = warmup()
            async with LiveCluster(star(5), **cluster_kwargs(tmp_path)) as cluster:
                cluster.stock_partitioned_library(vocab)
                await cluster.run_plan(plan)
                center = cluster.nodes[0]
                pre_crash = fingerprint_counts(center.servent.counts)
                pre_rules = center.servent.counts.n_rules()
                assert pre_rules > 0  # the warmup actually taught it rules

                await cluster.kill(0, hard=True)  # no final checkpoint
                node = await cluster.restart(0)
                await cluster.wait_connected(timeout=10.0)

                info = node.recovery
                assert info is not None
                assert info.fingerprint == pre_crash
                assert fingerprint_counts(node.servent.counts) == pre_crash
                assert info.n_rules == pre_rules
                assert not info.truncated
                # and the recovered node keeps serving rule-routed queries
                term_on_2 = next(t for i, t in enumerate(vocab) if i % 5 == 2)
                assert await cluster.query(1, term_on_2) == 1

        run(body())

    def test_snapshot_plus_wal_tail_path(self, tmp_path):
        """A checkpoint mid-life splits recovery into snapshot + tail."""

        async def body():
            vocab, plan = warmup()
            half = len(plan) // 2
            async with LiveCluster(star(5), **cluster_kwargs(tmp_path)) as cluster:
                cluster.stock_partitioned_library(vocab)
                await cluster.run_plan(plan[:half])
                center = cluster.nodes[0]
                header = center.checkpoint()
                assert header is not None and header["n_rules"] >= 0
                await cluster.run_plan(plan[half:])
                pre_crash = fingerprint_counts(center.servent.counts)

                await cluster.kill(0, hard=True)
                node = await cluster.restart(0)
                info = node.recovery
                assert info.restored  # came up from the snapshot...
                assert info.records_replayed > 0  # ...plus a WAL tail
                assert info.fingerprint == pre_crash

        run(body())

    def test_torn_final_wal_record_recovers_by_truncation(self, tmp_path):
        async def body():
            vocab, plan = warmup()
            async with LiveCluster(star(5), **cluster_kwargs(tmp_path)) as cluster:
                cluster.stock_partitioned_library(vocab)
                await cluster.run_plan(plan)
                await cluster.kill(0, hard=True)

                # Tear the journal: a partial frame at the end of the
                # newest segment, as if the crash hit mid-append.
                node_dir = cluster.node_state_dir(0)
                segments = sorted(
                    f for f in os.listdir(node_dir) if f.endswith(".wal")
                )
                newest = os.path.join(node_dir, segments[-1])
                with open(newest, "ab") as fh:
                    fh.write(b"\x10\x00\x00\x00\xde\xad")

                node = await cluster.restart(0)
                info = node.recovery
                assert info is not None and info.truncated
                assert info.n_rules >= 0  # recovered, not errored
                # the torn bytes were physically removed
                second = PersistentState(node_dir, fsync="never")
                twin, info2 = second.recover(
                    StreamingRules(min_support_count=2, window_pairs=512)
                )
                second.close()
                assert not info2.truncated
                assert info2.fingerprint == info.fingerprint

        run(body())

    def test_cold_restart_without_state_dir_forgets(self, tmp_path):
        async def body():
            vocab, plan = warmup()
            kwargs = cluster_kwargs(tmp_path)
            kwargs.pop("state_dir")
            async with LiveCluster(star(5), **kwargs) as cluster:
                cluster.stock_partitioned_library(vocab)
                await cluster.run_plan(plan)
                assert cluster.nodes[0].servent.counts.n_rules() > 0
                await cluster.kill(0, hard=True)
                node = await cluster.restart(0)
                assert node.recovery is None
                assert node.servent.counts.n_rules() == 0

        run(body())


@pytest.mark.live
class TestGracefulShutdown:
    def test_close_checkpoints_and_offline_replay_matches(self, tmp_path):
        async def body():
            vocab, plan = warmup()
            cluster = LiveCluster(star(5), **cluster_kwargs(tmp_path))
            await cluster.start()
            try:
                cluster.stock_partitioned_library(vocab)
                await cluster.run_plan(plan)
                fingerprints = {
                    node.node_id: fingerprint_counts(node.servent.counts)
                    for node in cluster.nodes
                }
            finally:
                await cluster.close()
            return cluster, fingerprints

        cluster, fingerprints = run(body())
        # Graceful close checkpointed every node; an offline recovery
        # must land on the exact live state, snapshot-only.
        for node_id, live in fingerprints.items():
            state = PersistentState(
                cluster.node_state_dir(node_id), fsync="never"
            )
            _counts, info = state.recover(
                StreamingRules(min_support_count=2, window_pairs=512)
            )
            state.close()
            assert info.restored
            assert info.records_replayed == 0  # checkpoint sealed it all
            assert info.fingerprint == live

    def test_checkpoint_timer_fires_without_traffic(self, tmp_path):
        async def body():
            vocab, plan = warmup(n_queries=30)
            kwargs = cluster_kwargs(tmp_path, checkpoint_interval=0.2)
            async with LiveCluster(star(5), **kwargs) as cluster:
                cluster.stock_partitioned_library(vocab)
                await cluster.run_plan(plan)
                await asyncio.sleep(0.5)  # let the periodic loop fire
                node_dir = cluster.node_state_dir(0)
                assert any(
                    name.endswith(".snap") for name in os.listdir(node_dir)
                )

        run(body())


class TestConfigValidation:
    def test_state_dir_requires_rule_routing(self, tmp_path):
        with pytest.raises(ValueError, match="rule_routed"):
            LiveCluster(star(3), state_dir=str(tmp_path / "s"))
