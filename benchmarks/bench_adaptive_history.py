"""Bench `adaptive-history`: §V-D — threshold history N=10 vs N=50.

Paper: N=10 regenerates every ~1.7 blocks; N=50 every ~1.9 blocks with
coverage 0.79 / success 0.76 — near Sliding Window quality at roughly
half the rule-set generations.
"""

from benchmarks.conftest import run_and_report


def test_adaptive_history(benchmark):
    result = run_and_report(benchmark, "adaptive-history")
    gens_n10 = int(result.extras["generations_n10"])
    gens_n50 = int(result.extras["generations_n50"])
    assert gens_n50 <= gens_n10 + 2  # longer history never regenerates much more
