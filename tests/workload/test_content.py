"""Tests for repro.workload.content."""

import pytest

from repro.workload.content import ContentCatalog
from repro.workload.interests import InterestProfile


class TestContentCatalog:
    def test_n_files(self):
        assert ContentCatalog(4, 100).n_files == 400

    def test_category_of(self):
        catalog = ContentCatalog(4, 100)
        assert catalog.category_of(0) == 0
        assert catalog.category_of(99) == 0
        assert catalog.category_of(100) == 1
        assert catalog.category_of(399) == 3

    def test_category_of_out_of_range(self):
        with pytest.raises(IndexError):
            ContentCatalog(2, 10).category_of(20)

    def test_sample_file_stays_in_category(self, rng):
        catalog = ContentCatalog(5, 50)
        for _ in range(100):
            f = catalog.sample_file(rng, 3)
            assert catalog.category_of(f) == 3

    def test_sample_file_bad_category(self, rng):
        with pytest.raises(IndexError):
            ContentCatalog(2, 10).sample_file(rng, 5)

    def test_library_respects_interests(self, rng):
        catalog = ContentCatalog(6, 40)
        profile = InterestProfile(categories=(1, 4), weights=(0.7, 0.3))
        library = catalog.sample_library(rng, profile, size=60)
        assert library
        assert all(catalog.category_of(f) in (1, 4) for f in library)

    def test_library_size_zero(self, rng):
        catalog = ContentCatalog(2, 10)
        profile = InterestProfile(categories=(0,), weights=(1.0,))
        assert catalog.sample_library(rng, profile, size=0) == frozenset()

    def test_library_negative_size(self, rng):
        catalog = ContentCatalog(2, 10)
        profile = InterestProfile(categories=(0,), weights=(1.0,))
        with pytest.raises(ValueError):
            catalog.sample_library(rng, profile, size=-1)

    def test_file_name_stable_and_parseable(self):
        catalog = ContentCatalog(3, 20)
        name = catalog.file_name(45)  # category 2, rank 5
        assert name == "cat002/file00005.dat"

    def test_query_matches(self):
        catalog = ContentCatalog(2, 10)
        assert catalog.query_matches(5, frozenset({3, 5}))
        assert not catalog.query_matches(5, frozenset({3}))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ContentCatalog(0, 10)
        with pytest.raises(ValueError):
            ContentCatalog(10, 0)
