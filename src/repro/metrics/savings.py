"""Analytic flood-reduction model.

Bridges the paper's two halves: its *measurements* are coverage/success
of rule sets on a trace, but its *claim* is network traffic reduction.
Under the deployment model of §III-B (rule-route when covered, flood as
fallback when the rule route misses), a query avoids flooding exactly
when it is covered AND its rule route succeeds — probability
``coverage * success``.  Expected per-query message cost is then

    E[msgs] = C*S * rule_cost + C*(1-S) * (rule_cost + flood_cost)
              + (1-C) * flood_cost

where ``rule_cost`` is the cheap targeted-forwarding cost (about
``top_k * path_length`` messages) and ``flood_cost`` the full flood's.
The model lets trace-driven results (Figures 1-4) be read as traffic
numbers, and its predictions agree with the online simulator's measured
ratios to within tens of percent (see the traffic experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive, check_probability

__all__ = ["FloodReductionEstimate", "estimate_flood_reduction"]


@dataclass(frozen=True)
class FloodReductionEstimate:
    """Predicted traffic under rule routing with flooding fallback."""

    coverage: float
    success: float
    rule_cost: float
    flood_cost: float

    @property
    def resolved_fraction(self) -> float:
        """Queries that never flood (covered and correctly routed)."""
        return self.coverage * self.success

    @property
    def expected_messages(self) -> float:
        c, s = self.coverage, self.success
        resolved = c * s * self.rule_cost
        covered_miss = c * (1.0 - s) * (self.rule_cost + self.flood_cost)
        uncovered = (1.0 - c) * self.flood_cost
        return resolved + covered_miss + uncovered

    @property
    def reduction_factor(self) -> float:
        """How many times cheaper than always-flooding (>1 is a win)."""
        expected = self.expected_messages
        return self.flood_cost / expected if expected > 0 else float("inf")

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return (
            f"resolved={self.resolved_fraction:.2f} "
            f"E[msgs]={self.expected_messages:.1f} "
            f"reduction={self.reduction_factor:.2f}x"
        )


def estimate_flood_reduction(
    *,
    coverage: float,
    success: float,
    rule_cost: float = 6.0,
    flood_cost: float = 2000.0,
) -> FloodReductionEstimate:
    """Build a :class:`FloodReductionEstimate` from rule-set quality.

    Parameters
    ----------
    coverage, success:
        The paper's alpha and rho for the rule maintenance strategy in
        force (e.g. Sliding Window's 0.80 / 0.79).
    rule_cost:
        Messages for one targeted rule route (top_k consequents followed
        over the few hops to the provider; ~6 for top-2 over 3 hops).
    flood_cost:
        Messages for one TTL-limited flood of the same overlay.
    """
    check_probability("coverage", coverage)
    check_probability("success", success)
    check_positive("rule_cost", rule_cost)
    check_positive("flood_cost", flood_cost)
    return FloodReductionEstimate(
        coverage=coverage,
        success=success,
        rule_cost=float(rule_cost),
        flood_cost=float(flood_cost),
    )
