"""The headline calibration is not a single-seed artifact.

Runs the paper's flagship comparison (Sliding Window, Fig. 1) on several
seeds at reduced scale and asserts each lands in band — guarding against
a calibration that only works for the registry's default seed.
"""

import pytest

from repro.core.strategies import SlidingWindow, StaticRuleset
from repro.trace.blocks import blocks_from_arrays
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

N_BLOCKS = 25


@pytest.mark.parametrize("seed", [1, 7, 42, 123, 2024])
def test_sliding_window_in_band_across_seeds(seed):
    cfg = MonitorTraceConfig()
    gen = MonitorTraceGenerator(cfg, seed=seed)
    arrays = gen.generate_pair_arrays(N_BLOCKS * cfg.block_size)
    blocks = blocks_from_arrays(arrays.source, arrays.replier, block_size=cfg.block_size)
    run = SlidingWindow().run(blocks)
    assert 0.72 <= run.average_coverage <= 0.88, f"seed {seed}"
    assert 0.70 <= run.average_success <= 0.88, f"seed {seed}"


@pytest.mark.parametrize("seed", [1, 42])
def test_static_always_below_sliding(seed):
    cfg = MonitorTraceConfig()
    gen = MonitorTraceGenerator(cfg, seed=seed)
    arrays = gen.generate_pair_arrays(N_BLOCKS * cfg.block_size)
    blocks = blocks_from_arrays(arrays.source, arrays.replier, block_size=cfg.block_size)
    sliding = SlidingWindow().run(blocks)
    static = StaticRuleset().run(blocks)
    assert static.average_coverage < sliding.average_coverage
    assert static.average_success < sliding.average_success
