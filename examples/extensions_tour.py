#!/usr/bin/env python
"""Tour of the paper's §VI future-work extensions, implemented.

Runs the four §VI extension experiments plus the §III-B incremental
deployment sweep, printing each paper-vs-measured table:

* query-string (category) dimension in rule antecedents;
* rule-driven overlay rewiring ("one less hop");
* interest shortcuts with rules as the pre-flood last chance;
* streaming rule maintenance (immediate updates);
* partial-adoption deployment.

Run:  python examples/extensions_tour.py            (~30 s)
"""

import time

from repro.experiments import run_experiment
from repro.metrics.ascii_chart import sparkline

TOUR = [
    (
        "category-rules",
        "§VI: 'Adding dimensions such as the query strings during rule "
        "generation ... could also aid in increasing the quality of the rule sets.'",
    ),
    (
        "topology-adaptation",
        "§VI: '...attempt to make this third node a new neighbor, which would "
        "result in queries ... requiring one less hop in the path to its target.'",
    ),
    (
        "hybrid",
        "§VI: 'association rules could be used to route queries that have not "
        "been successfully replied to when using the shortcuts ... one last "
        "chance to avoid flooding.'",
    ),
    (
        "streaming",
        "§VI: 'update these rules immediately as query and reply messages are "
        "received ... consistently show coverage and success values above 90%.'",
    ),
    (
        "adoption",
        "§III-B: 'the benefits increase as the number of nodes using this "
        "routing technique increases.'",
    ),
]


def main() -> None:
    for experiment_id, quote in TOUR:
        print("=" * 78)
        print(quote)
        print()
        t0 = time.time()
        result = run_experiment(experiment_id)
        print(result.report())
        if "success" in result.series:
            print(f"\nsuccess over blocks: {sparkline(result.series['success'])}")
        status = "all bands OK" if result.all_within_band else "OUT OF BAND"
        print(f"\n[{experiment_id}] {status} ({time.time() - t0:.1f}s)\n")


if __name__ == "__main__":
    main()
