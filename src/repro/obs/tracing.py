"""GUID-keyed hop-by-hop query tracing.

A Gnutella query is born with a GUID, fans out hop by hop, and its hits
retrace the GUID route backwards — so the GUID *is* the trace id.
:class:`QueryTracer` collects :class:`TraceEvent` records from every
servent that touches a descriptor (one shared tracer per cluster, or one
per node) and can reconstruct the full path of any query: where it was
issued, which nodes received it at which TTL, whether each hop
rule-routed or flooded it, where it matched a file, and how the hit
travelled back.

Event kinds used by the instrumented stack:

========== ==========================================================
``issued``       query originated at ``node``
``received``     query arrived at ``node`` from ``peer``
``duplicate``    query arrived again over another path and was dropped
``rule_routed``  forwarded along learned rules to ``targets``
``flooded``      forwarded to every other connection (no covering rule)
``ttl_expired``  not forwarded: TTL exhausted at ``node``
``hit``          matched ``info`` in the local library of ``node``
``hit_routed``   hit passed backwards through ``node`` towards ``peer``
``delivered``    hit reached the originating node
``timeout``      harness marker: the query quiesced with no hit
========== ==========================================================

Retention is TTL-bounded on both axes: at most ``max_traces`` distinct
GUIDs are kept (oldest evicted first) and whole traces expire ``ttl``
seconds after their last event, so a long-running daemon's tracer is a
ring buffer, not a leak.  :data:`NULL_TRACER` is the disabled twin whose
``record`` is a no-op; hot paths guard with ``tracer is not None`` or
call the null object unconditionally.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "QueryTrace",
    "QueryTracer",
    "TraceEvent",
    "format_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    """One step in a query's life, as seen by one node."""

    ts: float
    node: int
    kind: str
    peer: int | None = None
    info: str = ""

    def render(self, t0: float) -> str:
        parts = [f"+{self.ts - t0:8.4f}s", f"node {self.node:<4}", self.kind]
        if self.peer is not None:
            arrow = "->" if self.kind in ("rule_routed", "flooded", "hit_routed") else "<-"
            parts.append(f"{arrow} {self.peer}")
        if self.info:
            parts.append(f"[{self.info}]")
        return "  ".join(parts)


@dataclass
class QueryTrace:
    """Every recorded event for one GUID, in arrival order."""

    guid: int
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def started(self) -> float:
        return self.events[0].ts if self.events else 0.0

    @property
    def last_event(self) -> float:
        return self.events[-1].ts if self.events else 0.0

    @property
    def answered(self) -> bool:
        return any(e.kind == "delivered" for e in self.events)

    @property
    def hops(self) -> int:
        """Distinct nodes the query itself reached."""
        return len(
            {e.node for e in self.events if e.kind in ("issued", "received")}
        )

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]


class QueryTracer:
    """Bounded, GUID-keyed store of in-flight and recent query traces."""

    enabled = True

    def __init__(
        self,
        *,
        max_traces: int = 1024,
        ttl: float = 300.0,
        clock=time.monotonic,
    ) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.max_traces = max_traces
        self.ttl = ttl
        self._clock = clock
        self._traces: "OrderedDict[int, QueryTrace]" = OrderedDict()

    def record(
        self,
        guid: int,
        node: int,
        kind: str,
        *,
        peer: int | None = None,
        info: str = "",
    ) -> None:
        """Append one event to the GUID's trace (creating it on first use)."""
        now = self._clock()
        trace = self._traces.get(guid)
        if trace is None:
            self._evict(now)
            trace = self._traces[guid] = QueryTrace(guid)
        trace.events.append(TraceEvent(now, node, kind, peer, info))

    def _evict(self, now: float) -> None:
        """Drop expired traces, then the oldest beyond ``max_traces - 1``."""
        expired = [
            guid
            for guid, trace in self._traces.items()
            if now - trace.last_event > self.ttl
        ]
        for guid in expired:
            del self._traces[guid]
        while len(self._traces) >= self.max_traces:
            self._traces.popitem(last=False)

    # -- queries -----------------------------------------------------------
    def trace(self, guid: int) -> QueryTrace | None:
        return self._traces.get(guid)

    def guids(self) -> list[int]:
        """Known GUIDs, oldest first."""
        return list(self._traces)

    def answered_guids(self) -> list[int]:
        return [g for g, t in self._traces.items() if t.answered]

    def __len__(self) -> int:
        return len(self._traces)

    def format(self, guid: int) -> str:
        trace = self.trace(guid)
        if trace is None:
            return f"no trace for guid {guid}"
        return format_trace(trace)


def format_trace(trace: QueryTrace) -> str:
    """A human-readable hop-by-hop rendering of one query trace."""
    outcome = "answered" if trace.answered else "unanswered"
    header = (
        f"query {trace.guid:#x}: {len(trace.events)} events over "
        f"{trace.hops} nodes ({outcome})"
    )
    t0 = trace.started
    lines = [header]
    lines.extend("  " + event.render(t0) for event in trace.events)
    return "\n".join(lines)


class NullTracer:
    """Tracing disabled: record() is a no-op, lookups find nothing."""

    enabled = False

    def record(self, guid, node, kind, *, peer=None, info="") -> None:
        pass

    def trace(self, guid) -> QueryTrace | None:
        return None

    def guids(self) -> list[int]:
        return []

    def answered_guids(self) -> list[int]:
        return []

    def __len__(self) -> int:
        return 0

    def format(self, guid) -> str:
        return "tracing disabled"


NULL_TRACER = NullTracer()
