"""Latency-under-load experiment (the paper's §VI timing claim).

"Because of this, results to queries may be received more quickly, and
the networks can support more simultaneous queries, allowing the number
of users who can efficiently and successfully use the network to grow."

The discrete-event network (uplink queueing + link latency) makes this
measurable: flooding wins on latency while the network is idle (it
searches every path in parallel), but its per-query message bill
saturates peer uplinks at a much lower query rate — past that point its
latency and backlogs explode while association routing, paying ~½ the
messages, keeps serving.  The experiment runs both policies at a light
and a heavy offered load and asserts the crossover.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED, current_scale
from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow
from repro.network.discrete_event import DiscreteEventConfig, DiscreteEventNetwork
from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.association import AssociationRoutingPolicy
from repro.routing.flooding import FloodingPolicy

__all__ = ["run_latency_under_load"]


def _run_one(policy: str, interarrival: float, *, seed: int, n_nodes: int, n_queries: int):
    overlay = Overlay(OverlayConfig(n_nodes=n_nodes), seed=seed)
    if policy == "flooding":
        overlay.install_policies(lambda nid, ov: FloodingPolicy(nid, ov))
    else:
        overlay.install_policies(
            lambda nid, ov: AssociationRoutingPolicy(nid, ov, window=2048)
        )
        # Let the learning policy build its tables before timing anything.
        overlay.run_workload(0, warmup=800)
    net = DiscreteEventNetwork(
        overlay,
        DiscreteEventConfig(query_interarrival=interarrival, fallback_timeout=1.5),
    )
    return net.run(n_queries, seed=seed + 1)


def run_latency_under_load(
    *,
    seed: int = DEFAULT_SEED,
    light_interarrival: float = 0.2,
    heavy_interarrival: float = 0.01,
) -> ExperimentResult:
    """Flooding vs association routing at light and saturating load."""
    scale = current_scale()
    n_nodes = min(scale.overlay_nodes, 300)
    n_queries = max(200, scale.overlay_queries // 2)

    flood_light = _run_one("flooding", light_interarrival, seed=seed, n_nodes=n_nodes, n_queries=n_queries)
    assoc_light = _run_one("association", light_interarrival, seed=seed, n_nodes=n_nodes, n_queries=n_queries)
    flood_heavy = _run_one("flooding", heavy_interarrival, seed=seed, n_nodes=n_nodes, n_queries=n_queries)
    assoc_heavy = _run_one("association", heavy_interarrival, seed=seed, n_nodes=n_nodes, n_queries=n_queries)

    rows = [
        ComparisonRow(
            "light load: flooding mean latency (parallel search wins when idle)",
            "-",
            flood_light.mean_latency,
        ),
        ComparisonRow(
            "light load: association mean latency (narrow paths + fallback wait)",
            "-",
            assoc_light.mean_latency,
        ),
        ComparisonRow(
            "heavy load: flooding mean latency (uplinks saturate)",
            "-",
            flood_heavy.mean_latency,
        ),
        ComparisonRow(
            "heavy load: association mean latency",
            "-",
            assoc_heavy.mean_latency,
        ),
        ComparisonRow(
            "heavy load: association beats flooding on mean latency "
            "(paper: 'results ... received more quickly')",
            ">0",
            flood_heavy.mean_latency - assoc_heavy.mean_latency,
            band=(0.0, 1e9),
        ),
        ComparisonRow(
            "heavy load: flooding tail latency / association tail latency "
            "(paper: 'support more simultaneous queries')",
            ">1.5",
            flood_heavy.p_high_latency / assoc_heavy.p_high_latency,
            band=(1.5, 1e9),
        ),
        ComparisonRow(
            "heavy load: uplink backlog ratio (flooding / association)",
            ">1.5",
            flood_heavy.peak_queue_length / max(assoc_heavy.peak_queue_length, 1),
            band=(1.5, 1e9),
        ),
        ComparisonRow(
            "answer rates comparable (flood fallback active)",
            "~equal",
            assoc_heavy.answer_rate - flood_heavy.answer_rate,
            band=(-0.08, 1.0),
        ),
    ]
    return ExperimentResult(
        experiment_id="latency",
        title="Latency under load: flooding vs association routing (paper §VI)",
        rows=rows,
        extras={
            "flooding_light": str(flood_light),
            "association_light": str(assoc_light),
            "flooding_heavy": str(flood_heavy),
            "association_heavy": str(assoc_heavy),
        },
    )
