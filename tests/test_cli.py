"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_seed_option(self):
        args = build_parser().parse_args(["--seed", "7", "list"])
        assert args.seed == 7


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "traffic" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        # usage errors are diagnostics: structured log on stderr, not
        # mixed into the stdout report stream.
        captured = capsys.readouterr()
        assert "unknown experiment" in captured.err
        assert "unknown experiment" not in captured.out

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "[fig1] OK" in out
        assert "*=coverage" in out  # chart rendered

    def test_run_no_chart(self, capsys):
        assert main(["run", "fig1", "--no-chart"]) == 0
        out = capsys.readouterr().out
        assert "*=coverage" not in out

    def test_trace_profile(self, capsys):
        assert main(["trace", "--blocks", "2"]) == 0
        out = capsys.readouterr().out
        assert "block 0:" in out
        assert "coverage ceiling" in out

    def test_full_flag_sets_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert main(["--full", "list"]) == 0
        import os

        assert os.environ.get("REPRO_FULL_SCALE") == "1"
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)


class TestSeedSweepCli:
    def test_run_with_seeds(self, capsys, monkeypatch):
        from repro.experiments.config import ExperimentScale

        tiny = ExperimentScale("t", 8, 10, 30_000, 80, 30, 60)
        monkeypatch.setattr("repro.experiments.config.DEFAULT_SCALE", tiny)
        assert main(["run", "fig1", "--seeds", "2"]) in (0, 1)
        out = capsys.readouterr().out
        assert "seed sweep over" in out
        assert "±" in out


class TestCsvExport:
    def test_run_with_csv(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.config import ExperimentScale

        tiny = ExperimentScale("t", 8, 10, 30_000, 80, 30, 60)
        monkeypatch.setattr("repro.experiments.config.DEFAULT_SCALE", tiny)
        out_dir = tmp_path / "csv"
        assert main(["run", "fig1", "--no-chart", "--csv", str(out_dir)]) in (0, 1)
        csv_path = out_dir / "fig1.csv"
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("trial,")


class TestPersistInspect:
    def _state_dir(self, tmp_path):
        from repro.core.streaming import StreamingRules
        from repro.persist import PersistentState

        state = PersistentState(str(tmp_path / "node"), fsync="never")
        counts, _ = state.recover(StreamingRules(min_support_count=2))
        for source, replier in [(1, 2)] * 3 + [(3, 4)] * 2:
            counts.push(source, replier)
            state.record_pair(source, replier)
        state.checkpoint(counts)
        state.record_pair(5, 6)
        state.close()
        return state.state_dir

    def test_inspect_dumps_headers_as_json(self, tmp_path, capsys):
        import json

        state_dir = self._state_dir(tmp_path)
        assert main(["persist", "inspect", state_dir]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["state_dir"] == state_dir
        assert len(report["snapshots"]) == 1
        assert report["snapshots"][0]["backend"] == "exact"
        assert report["wal_segments"][0]["records"] == 1
        assert report["wal_segments"][0]["clean"] is True

    def test_inspect_missing_dir_is_an_error(self, tmp_path, capsys):
        assert main(["persist", "inspect", str(tmp_path / "nope")]) == 2

    def test_inspect_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["persist"])


class TestTraceViewCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace-view"])
        assert args.command == "trace-view"
        assert args.endpoint == []
        assert args.ports_file is None
        assert args.guid is None
        assert args.polls == 2 and args.trees == 1

    def test_cluster_tracing_flags(self):
        args = build_parser().parse_args(
            ["cluster", "--trace-sample", "4", "--flight-dir", "fd",
             "--ports-file", "ports.json"]
        )
        assert args.trace_sample == 4
        assert args.flight_dir == "fd"
        assert args.ports_file == "ports.json"

    def test_no_endpoints_is_an_error(self):
        assert main(["trace-view"]) == 2

    def test_bad_ports_file_is_an_error(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["trace-view", "--ports-file", str(missing)]) == 2

    def test_ports_file_feeds_endpoints(self, tmp_path, monkeypatch):
        import json

        ports = tmp_path / "ports.json"
        ports.write_text(json.dumps({
            "nodes": [
                {"node": 0, "host": "127.0.0.1", "port": 1, "obs_port": 9100},
                {"node": 1, "host": "127.0.0.1", "port": 2, "obs_port": None},
            ]
        }))
        captured = {}

        class FakeCollector:
            def __init__(self, endpoints, **kwargs):
                captured["endpoints"] = endpoints
                self.traces = {}
                self.per_node = {0: {}}
                self.errors = 0

            def poll(self):
                return {"nodes": 1, "traces": 0, "window": None}

            def answered_guids(self):
                return []

        monkeypatch.setattr(
            "repro.obs.collect.ClusterTraceCollector", FakeCollector
        )
        monkeypatch.setattr(
            "repro.obs.collect.format_cluster_rollup", lambda c: "rollup"
        )
        code = main(
            ["trace-view", "--ports-file", str(ports), "--polls", "1"]
        )
        assert code == 0
        # the obs-port-less node is skipped, not dialled.
        assert captured["endpoints"] == [(0, "http://127.0.0.1:9100")]

    def test_unknown_guid_is_an_error(self, monkeypatch):
        class FakeCollector:
            def __init__(self, endpoints, **kwargs):
                self.traces = {}
                self.per_node = {0: {}}
                self.errors = 0

            def poll(self):
                return {"nodes": 1, "traces": 0, "window": None}

        monkeypatch.setattr(
            "repro.obs.collect.ClusterTraceCollector", FakeCollector
        )
        monkeypatch.setattr(
            "repro.obs.collect.format_cluster_rollup", lambda c: "rollup"
        )
        code = main(
            ["trace-view", "--endpoint", "127.0.0.1:9100",
             "--polls", "1", "--guid", "deadbeef"]
        )
        assert code == 2
