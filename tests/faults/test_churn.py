"""TopologyChurn: fault plans replayed as offline topology mutation."""

from repro.faults.churn import TopologyChurn
from repro.faults.plan import CRASH, HEAL, PARTITION, RESTART, FaultEvent, FaultPlan
from repro.network.dynamic import DynamicTopology
from repro.network.topology import Topology


def ring4() -> Topology:
    return Topology(4, [(0, 1), (1, 2), (2, 3), (0, 3)])


def edge_set(churn):
    return set(churn.topology.edges())


class TestTopologyChurn:
    def test_crash_detaches_and_restart_restores(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind=CRASH, node=1),
                FaultEvent(time=2.0, kind=RESTART, node=1),
            ),
            duration=3.0,
        )
        churn = TopologyChurn(ring4(), plan)
        churn.advance_to(1.0)
        assert churn.down == {1}
        assert churn.alive() == {0, 2, 3}
        assert edge_set(churn) == {(2, 3), (0, 3)}
        churn.advance_to(2.0)
        assert churn.down == set()
        assert edge_set(churn) == {(0, 1), (1, 2), (2, 3), (0, 3)}

    def test_partition_cuts_cross_edges_and_heal_restores(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=1.0, kind=PARTITION, groups=((0, 1), (2, 3))
                ),
                FaultEvent(time=2.0, kind=HEAL),
            ),
            duration=3.0,
        )
        churn = TopologyChurn(ring4(), plan)
        churn.advance_to(1.5)
        assert edge_set(churn) == {(0, 1), (2, 3)}
        churn.advance_to(2.5)
        assert edge_set(churn) == {(0, 1), (1, 2), (2, 3), (0, 3)}

    def test_heal_while_node_down_defers_its_edges_to_rejoin(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind=CRASH, node=1),
                FaultEvent(
                    time=2.0, kind=PARTITION, groups=((0, 1), (2, 3))
                ),
                FaultEvent(time=3.0, kind=HEAL),
                FaultEvent(time=4.0, kind=RESTART, node=1),
            ),
            duration=5.0,
        )
        churn = TopologyChurn(ring4(), plan)
        churn.advance_to(3.0)  # healed, but node 1 still down
        assert edge_set(churn) == {(2, 3), (0, 3)}
        churn.advance_to(4.0)  # node 1 rejoins with all its edges
        assert edge_set(churn) == {(0, 1), (1, 2), (2, 3), (0, 3)}

    def test_finish_restores_end_state(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind=CRASH, node=2),
                FaultEvent(
                    time=2.0, kind=PARTITION, groups=((0, 1), (2, 3))
                ),
            ),
            duration=3.0,
        )
        churn = TopologyChurn(ring4(), plan)
        applied = churn.finish()
        assert edge_set(churn) == {(0, 1), (1, 2), (2, 3), (0, 3)}
        kinds = [entry["kind"] for entry in applied]
        assert "final-restart" in kinds and "final-heal" in kinds

    def test_degree_cap_can_refuse_a_rejoin(self):
        topology = DynamicTopology.from_topology(ring4(), max_degree=2)
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind=CRASH, node=1),
                FaultEvent(time=2.0, kind=RESTART, node=1),
            ),
            duration=3.0,
        )
        churn = TopologyChurn(topology, plan)
        churn.advance_to(1.0)
        topology.add_edge(0, 2)  # fills both endpoints' budgets
        churn.advance_to(2.0)
        # node 1's old edges cannot come back under the cap
        assert topology.neighbors(1) == ()

    def test_link_level_kinds_are_ignored_offline(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=0.5, kind="latency", link=(0, 1), seconds=0.1
                ),
                FaultEvent(time=1.0, kind=CRASH, node=1),
            ),
            duration=2.0,
        )
        churn = TopologyChurn(ring4(), plan)
        churn.advance_to(0.5)
        assert churn.log == []  # latency has no offline meaning
        churn.advance_to(1.0)
        assert [entry["kind"] for entry in churn.log] == [CRASH]

    def test_log_is_deterministic(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind=CRASH, node=1),
                FaultEvent(time=2.0, kind=RESTART, node=1),
                FaultEvent(
                    time=2.5, kind=PARTITION, groups=((0, 1), (2, 3))
                ),
            ),
            duration=4.0,
        )
        a = TopologyChurn(ring4(), plan)
        b = TopologyChurn(ring4(), plan)
        a.finish()
        b.finish()
        assert a.log == b.log
        assert edge_set(a) == edge_set(b)
