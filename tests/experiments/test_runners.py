"""Every experiment runner executes end-to-end at a tiny scale.

Bands are asserted only by the benchmarks (tiny scales are too noisy);
here we check that each runner produces a well-formed result: rows with
finite measured values, correct experiment ids, and printable reports.
"""

import math

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.config import ExperimentScale

# Small but not degenerate: fig3 needs > laziness(10) blocks for its
# sawtooth statistic, static needs > 16 trials for its tail statistic.
TINY = ExperimentScale(
    name="tiny",
    n_blocks=12,
    n_blocks_static=20,
    n_pairs_blocksweep=60_000,
    overlay_nodes=120,
    overlay_queries=60,
    overlay_warmup=120,
)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setattr("repro.experiments.config.DEFAULT_SCALE", TINY)
    monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)


# fig2 sweeps block sizes up to 50k and needs more pairs than TINY offers;
# its full run is covered by the benchmarks.
FAST_IDS = sorted(set(EXPERIMENTS) - {"fig2"})


@pytest.mark.parametrize("experiment_id", FAST_IDS)
def test_runner_produces_wellformed_result(experiment_id):
    result = run_experiment(experiment_id)
    assert result.experiment_id == experiment_id
    assert result.rows
    for row in result.rows:
        assert isinstance(row.measured, float)
        assert not math.isnan(row.measured)
    text = result.report()
    assert experiment_id in text
    for series in result.series.values():
        assert all(0.0 <= v <= 1.0 for v in series)


def test_fig2_runs_with_reduced_sizes():
    result = run_experiment("fig2", block_sizes=(5_000, 10_000))
    assert result.rows
