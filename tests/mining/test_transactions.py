"""Tests for repro.mining.transactions."""

from repro.mining.transactions import TransactionDataset


def make_market():
    return TransactionDataset(
        [
            {"bread", "milk"},
            {"bread", "diapers", "beer", "eggs"},
            {"milk", "diapers", "beer", "cola"},
            {"bread", "milk", "diapers", "beer"},
            {"bread", "milk", "diapers", "cola"},
        ]
    )


class TestEncoding:
    def test_vocabulary_size(self):
        ds = make_market()
        # bread, milk, diapers, beer, eggs, cola
        assert ds.n_items == 6

    def test_roundtrip(self):
        ds = make_market()
        for item in ("bread", "milk", "beer"):
            assert ds.item(ds.item_id(item)) == item

    def test_decode_itemset(self):
        ds = make_market()
        encoded = frozenset({ds.item_id("beer"), ds.item_id("diapers")})
        assert ds.decode_itemset(encoded) == frozenset({"beer", "diapers"})

    def test_empty_transactions_dropped(self):
        ds = TransactionDataset([set(), {"a"}, set()])
        assert len(ds) == 1


class TestSupport:
    def test_item_counts(self):
        ds = make_market()
        assert ds.item_count(ds.item_id("bread")) == 4
        assert ds.item_count(ds.item_id("beer")) == 3

    def test_support_count_pair(self):
        ds = make_market()
        pair = {ds.item_id("diapers"), ds.item_id("beer")}
        assert ds.support_count(pair) == 3

    def test_support_fraction(self):
        ds = make_market()
        pair = {ds.item_id("diapers"), ds.item_id("beer")}
        assert ds.support(pair) == 0.6

    def test_empty_itemset_supported_by_all(self):
        ds = make_market()
        assert ds.support_count([]) == 5

    def test_support_empty_dataset(self):
        ds = TransactionDataset([])
        assert ds.support([0]) == 0.0

    def test_unseen_item_count_zero(self):
        ds = make_market()
        assert ds.item_count(999) == 0
