"""Routing rules and rule sets.

A :class:`RuleSet` maps each antecedent (query-source neighbor) to its
consequents (reply-source neighbors) ordered by descending support count —
the table the paper's simulator kept with "the host from which one or more
queries were received, a node that returned a reply message ... and the
number of times that that node sent reply messages".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

__all__ = ["Rule", "RuleSet"]


@dataclass(frozen=True, slots=True)
class Rule:
    """One routing rule {antecedent} -> {consequent} with its support count."""

    antecedent: int
    consequent: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("a rule's support count must be >= 1")

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return f"{{{self.antecedent}}} -> {{{self.consequent}}} (n={self.count})"


class RuleSet:
    """An immutable set of routing rules indexed by antecedent."""

    def __init__(self, rules: Iterable[Rule]) -> None:
        by_ante: dict[int, list[Rule]] = {}
        for rule in rules:
            by_ante.setdefault(rule.antecedent, []).append(rule)
        for ante, lst in by_ante.items():
            lst.sort(key=lambda r: (-r.count, r.consequent))
            seen = {r.consequent for r in lst}
            if len(seen) != len(lst):
                raise ValueError(
                    f"duplicate consequent for antecedent {ante} in rule set"
                )
        self._by_ante = by_ante
        self._n_rules = sum(len(lst) for lst in by_ante.values())
        # Flat arrays for the vectorized RULESET-TEST fast path.
        self._ante_array = np.fromiter(by_ante.keys(), dtype=np.int64, count=len(by_ante))
        keys = [
            (r.antecedent << 32) | r.consequent
            for lst in by_ante.values()
            for r in lst
        ]
        self._pair_keys = np.asarray(sorted(keys), dtype=np.int64)
        order = np.argsort(self._ante_array, kind="stable")
        self._ante_sorted = self._ante_array[order]
        counts = np.fromiter(
            (len(lst) for lst in by_ante.values()),
            dtype=np.int64,
            count=len(by_ante),
        )
        self._ante_counts_sorted = counts[order]

    # -- construction -------------------------------------------------------
    @classmethod
    def from_counts(cls, counts: Mapping[tuple[int, int], int]) -> "RuleSet":
        """Build from a {(antecedent, consequent): count} mapping."""
        return cls(Rule(a, c, n) for (a, c), n in counts.items())

    @classmethod
    def empty(cls) -> "RuleSet":
        return cls(())

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        """Number of rules (antecedent–consequent pairs)."""
        return self._n_rules

    def __iter__(self) -> Iterator[Rule]:
        for lst in self._by_ante.values():
            yield from lst

    @property
    def n_antecedents(self) -> int:
        return len(self._by_ante)

    def antecedents(self) -> frozenset[int]:
        return frozenset(self._by_ante)

    def covers(self, source: int) -> bool:
        """Whether any rule's antecedent matches ``source``."""
        return source in self._by_ante

    def consequents_for(self, source: int, k: int | None = None) -> list[int]:
        """The consequents for ``source``, highest support first.

        ``k`` limits to the top-k neighbors (the paper's "sent to the k
        neighbors with the highest support"); ``None`` returns all.
        """
        rules = self._by_ante.get(source, ())
        if k is not None:
            if k < 1:
                raise ValueError("k must be >= 1")
            rules = rules[:k]
        return [r.consequent for r in rules]

    def rules_for(self, source: int) -> list[Rule]:
        return list(self._by_ante.get(source, ()))

    def matches(self, source: int, replier: int) -> bool:
        """Whether {source} -> {replier} is a rule in this set."""
        return any(r.consequent == replier for r in self._by_ante.get(source, ()))

    # -- vectorized views (consumed by repro.core.evaluation) ---------------
    @property
    def antecedent_array(self) -> np.ndarray:
        """Sorted is not guaranteed; int64 array of antecedents."""
        return self._ante_array

    @property
    def pair_key_array(self) -> np.ndarray:
        """Sorted int64 array of (antecedent << 32) | consequent keys."""
        return self._pair_keys

    @property
    def sorted_antecedent_array(self) -> np.ndarray:
        """Sorted int64 array of antecedents (for searchsorted lookups)."""
        return self._ante_sorted

    @property
    def consequent_count_array(self) -> np.ndarray:
        """Consequents per antecedent, aligned with
        :attr:`sorted_antecedent_array`."""
        return self._ante_counts_sorted

    def __repr__(self) -> str:  # pragma: no cover
        return f"RuleSet(rules={len(self)}, antecedents={self.n_antecedents})"
