"""Tests for repro.workload.interests."""

import numpy as np
import pytest

from repro.workload.interests import InterestModel, InterestProfile


class TestInterestProfile:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            InterestProfile(categories=(1, 2), weights=(0.5, 0.2))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            InterestProfile(categories=(1,), weights=(0.5, 0.5))

    def test_needs_a_category(self):
        with pytest.raises(ValueError):
            InterestProfile(categories=(), weights=())

    def test_sample_respects_support(self, rng):
        profile = InterestProfile(categories=(3, 7), weights=(0.9, 0.1))
        for _ in range(50):
            assert profile.sample_category(rng) in (3, 7)

    def test_sample_distribution(self, rng):
        profile = InterestProfile(categories=(0, 1), weights=(0.8, 0.2))
        draws = [profile.sample_category(rng) for _ in range(5000)]
        share = draws.count(0) / len(draws)
        assert 0.75 < share < 0.85


class TestInterestModel:
    def test_profile_width(self, rng):
        model = InterestModel(50)
        profile = model.sample_profile(rng, width=4)
        assert len(profile.categories) == 4
        assert len(set(profile.categories)) == 4

    def test_width_capped_at_universe(self, rng):
        model = InterestModel(3)
        profile = model.sample_profile(rng, width=10)
        assert len(profile.categories) == 3

    def test_categories_in_range(self, rng):
        model = InterestModel(20)
        profile = model.sample_profile(rng, width=5)
        assert all(0 <= c < 20 for c in profile.categories)

    def test_first_category_has_highest_weight(self, rng):
        model = InterestModel(30)
        profile = model.sample_profile(rng, width=3)
        assert profile.weights[0] == max(profile.weights)

    def test_rejects_bad_width(self, rng):
        with pytest.raises(ValueError):
            InterestModel(5).sample_profile(rng, width=0)

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            InterestModel(0)

    def test_category_popularity_sums_to_one(self):
        model = InterestModel(12, popularity_exponent=0.7)
        total = sum(model.category_popularity(c) for c in range(12))
        assert total == pytest.approx(1.0)

    def test_deterministic(self):
        a = InterestModel(40).sample_profile(np.random.default_rng(4), width=3)
        b = InterestModel(40).sample_profile(np.random.default_rng(4), width=3)
        assert a == b
