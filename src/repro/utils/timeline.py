"""Simulated-time helpers.

The trace generator and the online overlay simulator both work in a
continuous simulated time line measured in seconds.  :class:`SimClock` is a
tiny monotonic clock object shared by components that need to agree on "now"
without threading a float through every call.  Constants give readable names
to the durations used throughout the paper's methodology (a 7-day capture).
"""

from __future__ import annotations

__all__ = ["SimClock", "SECOND", "MINUTE", "HOUR", "DAY", "WEEK"]

SECOND = 1.0
MINUTE = 60.0 * SECOND
HOUR = 60.0 * MINUTE
DAY = 24.0 * HOUR
WEEK = 7.0 * DAY


class SimClock:
    """Monotonic simulated clock.

    Time may only move forward; attempting to rewind raises, which catches
    event-ordering bugs in the discrete-event simulator early.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock to absolute time ``t`` (must not be in the past)."""
        t = float(t)
        if t < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {t}")
        self._now = t
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds (must be >= 0)."""
        dt = float(dt)
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self._now += dt
        return self._now

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimClock(now={self._now:.3f})"
