"""Gnutella-style globally-unique query identifiers.

The paper's trace collection found that *some* Gnutella clients generated
GUIDs that were not actually unique: distinct queries occasionally carried
the same GUID, and the import pipeline kept only the first record for each
duplicated GUID.  :class:`GuidAllocator` reproduces both behaviours — it
hands out fresh 128-bit identifiers, but a configurable fraction of draws
deliberately reuses an earlier GUID, emulating the buggy clients so the
deduplication stage of the pipeline has real work to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["GuidAllocator"]


@dataclass
class GuidAllocator:
    """Allocate query GUIDs, optionally reusing a fraction of them.

    Parameters
    ----------
    duplicate_rate:
        Probability that a newly requested GUID is a *reuse* of a previously
        issued one (the paper's "clients that did not properly generate
        GUIDs").  ``0.0`` disables the behaviour.
    rng:
        Seed or generator used both for GUID material and for the reuse
        decisions.
    """

    duplicate_rate: float = 0.0
    rng: object = None
    _issued: list = field(default_factory=list, init=False, repr=False)
    _n_duplicates: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")
        self.rng = as_generator(self.rng)

    @property
    def issued_count(self) -> int:
        """Number of GUIDs handed out so far (including reuses)."""
        return len(self._issued) + self._n_duplicates

    @property
    def duplicate_count(self) -> int:
        """Number of GUIDs that were reuses of an earlier GUID."""
        return self._n_duplicates

    def next(self) -> int:
        """Return the next GUID as a 128-bit integer.

        With probability ``duplicate_rate`` (and at least one prior GUID),
        an already-issued GUID is returned instead of a fresh one.
        """
        if self._issued and self.duplicate_rate > 0.0:
            if self.rng.random() < self.duplicate_rate:
                self._n_duplicates += 1
                victim = int(self.rng.integers(0, len(self._issued)))
                return self._issued[victim]
        hi = int(self.rng.integers(0, 2**63, dtype=np.uint64))
        lo = int(self.rng.integers(0, 2**63, dtype=np.uint64))
        guid = (hi << 64) | lo
        self._issued.append(guid)
        return guid

    def fresh_batch(self, count: int) -> list[int]:
        """Return ``count`` GUIDs drawn through :meth:`next`."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.next() for _ in range(count)]
