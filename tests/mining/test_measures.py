"""Tests for repro.mining.measures."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mining.measures import compute_measures


class TestKnownValues:
    def test_diapers_beer(self):
        # 5 transactions; diapers in 4, beer in 3, both in 3.
        m = compute_measures(
            n_transactions=5, antecedent_count=4, consequent_count=3, union_count=3
        )
        assert m.support == pytest.approx(0.6)
        assert m.confidence == pytest.approx(0.75)
        assert m.lift == pytest.approx(0.75 / 0.6)
        assert m.leverage == pytest.approx(0.6 - 0.8 * 0.6)
        assert m.conviction == pytest.approx((1 - 0.6) / (1 - 0.75))

    def test_perfect_rule_has_infinite_conviction(self):
        m = compute_measures(
            n_transactions=10, antecedent_count=4, consequent_count=6, union_count=4
        )
        assert m.confidence == 1.0
        assert math.isinf(m.conviction)

    def test_independent_events_have_unit_lift(self):
        # A in half, B in half, A∧B in a quarter.
        m = compute_measures(
            n_transactions=100,
            antecedent_count=50,
            consequent_count=50,
            union_count=25,
        )
        assert m.lift == pytest.approx(1.0)
        assert m.leverage == pytest.approx(0.0)


class TestValidation:
    def test_rejects_zero_transactions(self):
        with pytest.raises(ValueError):
            compute_measures(
                n_transactions=0, antecedent_count=1, consequent_count=1, union_count=1
            )

    def test_rejects_zero_antecedent(self):
        with pytest.raises(ValueError):
            compute_measures(
                n_transactions=5, antecedent_count=0, consequent_count=1, union_count=0
            )

    def test_rejects_union_exceeding_sides(self):
        with pytest.raises(ValueError):
            compute_measures(
                n_transactions=5, antecedent_count=2, consequent_count=2, union_count=3
            )

    def test_rejects_count_above_total(self):
        with pytest.raises(ValueError):
            compute_measures(
                n_transactions=5, antecedent_count=6, consequent_count=2, union_count=2
            )


@given(
    st.integers(1, 200).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.integers(1, n),
            st.integers(0, n),
        ).flatmap(
            lambda nac: st.tuples(
                st.just(nac[0]),
                st.just(nac[1]),
                st.just(nac[2]),
                st.integers(
                    max(0, nac[1] + nac[2] - nac[0]),  # inclusion-exclusion floor
                    min(nac[1], nac[2]),
                ),
            )
        )
    )
)
def test_measure_bounds(params):
    """Property: all measures stay in their theoretical ranges."""
    n, ante, cons, union = params
    m = compute_measures(
        n_transactions=n,
        antecedent_count=ante,
        consequent_count=cons,
        union_count=union,
    )
    assert 0.0 <= m.support <= 1.0
    assert 0.0 <= m.confidence <= 1.0
    assert m.lift >= 0.0
    assert -0.25 <= m.leverage <= 0.25  # classic leverage bound
    assert m.conviction >= 0.0
