"""Tests for ruleset_test_random_subset (§III-B.1 random forwarding)."""

import numpy as np
import pytest

from repro.core.evaluation import ruleset_test, ruleset_test_random_subset
from repro.core.rules import Rule, RuleSet
from tests.conftest import make_block


def multi_consequent_ruleset():
    return RuleSet(
        [
            Rule(1, 10, 9),
            Rule(1, 11, 5),
            Rule(1, 12, 1),
        ]
    )


class TestRandomSubset:
    def test_k_at_least_all_equals_full_match(self):
        rs = multi_consequent_ruleset()
        block = make_block([(1, 10), (1, 11), (1, 12), (1, 99)])
        full = ruleset_test(rs, block)
        rand = ruleset_test_random_subset(rs, block, k=3, rng=0)
        assert (rand.n_covered, rand.n_successful) == (
            full.n_covered,
            full.n_successful,
        )

    def test_k1_success_rate_is_one_third_on_average(self):
        rs = multi_consequent_ruleset()
        block = make_block([(1, 10)] * 300)
        result = ruleset_test_random_subset(rs, block, k=1, rng=np.random.default_rng(5))
        # One of three consequents drawn uniformly: success ~ 1/3.
        assert 0.25 < result.success < 0.42

    def test_uncovered_source(self):
        rs = multi_consequent_ruleset()
        block = make_block([(7, 10)])
        result = ruleset_test_random_subset(rs, block, k=1, rng=1)
        assert result.n_covered == 0

    def test_deterministic_given_seed(self):
        rs = multi_consequent_ruleset()
        block = make_block([(1, 10), (1, 11)] * 20)
        a = ruleset_test_random_subset(rs, block, k=1, rng=42)
        b = ruleset_test_random_subset(rs, block, k=1, rng=42)
        assert a.n_successful == b.n_successful

    def test_validation(self):
        rs = multi_consequent_ruleset()
        with pytest.raises(ValueError):
            ruleset_test_random_subset(rs, make_block([]), k=0)

    def test_random_below_topk_on_skewed_traffic(self):
        """With traffic matching the support ordering, top-k wins."""
        rs = multi_consequent_ruleset()
        # 9:5:1 traffic mirrors the rule support counts.
        pairs = [(1, 10)] * 9 + [(1, 11)] * 5 + [(1, 12)] * 1
        block = make_block(pairs * 30)
        from repro.core.generation import generate_ruleset

        topk_rs = generate_ruleset(block, min_support_count=1, top_k=1)
        topk = ruleset_test(topk_rs, block)
        rand = ruleset_test_random_subset(rs, block, k=1, rng=7)
        assert topk.success > rand.success
