"""Association analysis (the data-mining technique the paper borrows).

The paper applies *association analysis* — mining rules ``{A} -> {B}`` with
support/confidence measures, introduced by Agrawal et al. [15][16] — to P2P
query routing.  This subpackage implements the technique in its general form
so the routing application in :mod:`repro.core` sits on a real mining
substrate rather than an ad-hoc counter:

* :class:`~repro.mining.transactions.TransactionDataset` — a collection of
  transactions (sets of items) with an item-id encoding;
* :func:`~repro.mining.apriori.apriori` — level-wise frequent-itemset
  mining with candidate pruning;
* :func:`~repro.mining.fpgrowth.fpgrowth` — FP-tree based mining (no
  candidate generation), cross-checked against Apriori in the test suite;
* :mod:`~repro.mining.measures` — support, confidence, lift, leverage and
  conviction interestingness measures;
* :func:`~repro.mining.rules.generate_rules` — association-rule extraction
  from frequent itemsets with support/confidence pruning;
* :mod:`~repro.mining.streaming` — Manku–Motwani lossy counting over
  streams, the substrate for the paper's future-work streaming rule engine
  (their reference [18] motivates mining from streams).
"""

from repro.mining.apriori import apriori
from repro.mining.fpgrowth import fpgrowth
from repro.mining.measures import RuleMeasures, compute_measures
from repro.mining.rules import AssociationRule, generate_rules
from repro.mining.streaming import LossyCounter, StreamingPairCounter
from repro.mining.transactions import TransactionDataset

__all__ = [
    "AssociationRule",
    "LossyCounter",
    "RuleMeasures",
    "StreamingPairCounter",
    "TransactionDataset",
    "apriori",
    "compute_measures",
    "fpgrowth",
    "generate_rules",
]
