"""Tests for repro.trace.cache."""

import numpy as np
import pytest

from repro.trace.cache import cached_pairs, load_pairs, save_pairs
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

CFG = MonitorTraceConfig(block_size=300, n_neighbors=15, n_categories=12)


def generate(n=600, seed=1):
    return MonitorTraceGenerator(CFG, seed=seed).generate_pair_arrays(n)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.npz"
        arrays = generate()
        save_pairs(path, arrays)
        back = load_pairs(path)
        for name in ("time", "source", "replier", "category", "host"):
            np.testing.assert_array_equal(getattr(back, name), getattr(arrays, name))

    def test_reject_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError):
            load_pairs(path)


class TestCachedPairs:
    def test_generates_and_caches(self, tmp_path):
        path = tmp_path / "cache.npz"
        first = cached_pairs(path, 400, config=CFG, seed=2)
        assert path.exists()
        second = cached_pairs(path, 400, config=CFG, seed=2)
        np.testing.assert_array_equal(first.source, second.source)

    def test_prefix_slicing(self, tmp_path):
        path = tmp_path / "cache.npz"
        full = cached_pairs(path, 500, config=CFG, seed=3)
        short = cached_pairs(path, 200, config=CFG, seed=3)
        assert len(short) == 200
        np.testing.assert_array_equal(short.source, full.source[:200])

    def test_regenerates_when_too_short(self, tmp_path):
        path = tmp_path / "cache.npz"
        cached_pairs(path, 200, config=CFG, seed=4)
        longer = cached_pairs(path, 500, config=CFG, seed=4)
        assert len(longer) == 500
        # And the cache now holds the longer trace.
        assert len(load_pairs(path)) == 500

    def test_negative_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            cached_pairs(tmp_path / "x.npz", -1, config=CFG)


class TestProvenanceFingerprint:
    def test_seed_mismatch_regenerates(self, tmp_path):
        # Regression: the cache used to return whatever file sat at the
        # path as long as it was long enough — a different seed's trace.
        path = tmp_path / "cache.npz"
        first = cached_pairs(path, 400, config=CFG, seed=1)
        other = cached_pairs(path, 400, config=CFG, seed=2)
        assert not np.array_equal(first.source, other.source)
        # And the file now belongs to seed 2: seed 1 regenerates again.
        again = cached_pairs(path, 400, config=CFG, seed=1)
        np.testing.assert_array_equal(again.source, first.source)

    def test_config_mismatch_regenerates(self, tmp_path):
        path = tmp_path / "cache.npz"
        first = cached_pairs(path, 400, config=CFG, seed=1)
        narrow = MonitorTraceConfig(block_size=300, n_neighbors=5, n_categories=12)
        other = cached_pairs(path, 400, config=narrow, seed=1)
        assert not np.array_equal(first.source, other.source)

    def test_equal_config_objects_hit(self, tmp_path):
        path = tmp_path / "cache.npz"
        first = cached_pairs(path, 400, config=CFG, seed=1)
        clone = MonitorTraceConfig(block_size=300, n_neighbors=15, n_categories=12)
        mtime = path.stat().st_mtime_ns
        second = cached_pairs(path, 400, config=clone, seed=1)
        np.testing.assert_array_equal(first.source, second.source)
        assert path.stat().st_mtime_ns == mtime  # true hit, no rewrite

    def test_legacy_file_without_stamp_warns_and_regenerates(self, tmp_path):
        import warnings

        path = tmp_path / "cache.npz"
        arrays = generate(400, seed=1)
        # Simulate a pre-stamping cache file: plain columns, no stamp.
        np.savez_compressed(
            path,
            **{
                name: getattr(arrays, name)
                for name in ("time", "source", "replier", "category", "host")
            },
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cached_pairs(path, 400, config=CFG, seed=1)
        assert any("fingerprint" in str(w.message) for w in caught)
        # The regenerated file is stamped: second call is a silent hit.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cached_pairs(path, 400, config=CFG, seed=1)
        assert not caught

    def test_fingerprint_deterministic(self):
        from repro.trace.cache import trace_fingerprint

        assert trace_fingerprint(CFG, 7) == trace_fingerprint(CFG, 7)
        assert trace_fingerprint(CFG, 7) != trace_fingerprint(CFG, 8)
        assert trace_fingerprint(CFG, 7) != trace_fingerprint(None, 7)


class TestCachedTraceStore:
    def test_generates_then_hits(self, tmp_path):
        from repro.trace.cache import cached_trace_store

        path = tmp_path / "trace.rptrace"
        with cached_trace_store(path, 900, config=CFG, seed=1) as first:
            blocks = [b.fingerprint() for b in first.iter_blocks()]
            assert first.n_pairs == 900
        mtime = path.stat().st_mtime_ns
        with cached_trace_store(path, 900, config=CFG, seed=1) as second:
            assert [b.fingerprint() for b in second.iter_blocks()] == blocks
        assert path.stat().st_mtime_ns == mtime  # hit: not rewritten

    def test_seed_mismatch_rebuilds(self, tmp_path):
        from repro.trace.cache import cached_trace_store

        path = tmp_path / "trace.rptrace"
        with cached_trace_store(path, 600, config=CFG, seed=1) as first:
            fp1 = first.meta_fingerprint
        with cached_trace_store(path, 600, config=CFG, seed=2) as second:
            assert second.meta_fingerprint != fp1

    def test_matches_cached_pairs_columns(self, tmp_path):
        from repro.trace.cache import cached_trace_store

        arrays = cached_pairs(tmp_path / "a.npz", 600, config=CFG, seed=3)
        with cached_trace_store(
            tmp_path / "a.rptrace", 600, config=CFG, seed=3
        ) as reader:
            sources = np.concatenate([b.sources for b in reader.iter_blocks()])
            repliers = np.concatenate([b.repliers for b in reader.iter_blocks()])
        np.testing.assert_array_equal(sources, arrays.source)
        np.testing.assert_array_equal(repliers, arrays.replier)

    def test_compressed_store_cache(self, tmp_path):
        from repro.trace.cache import cached_trace_store

        path = tmp_path / "z.rptrace"
        with cached_trace_store(path, 600, config=CFG, seed=4, codec="zlib") as r:
            assert r.version == 2
            assert r.n_pairs == 600
