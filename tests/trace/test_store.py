"""Tests for the on-disk columnar trace store (repro.trace.store)."""

import struct

import numpy as np
import pytest

from repro.trace.blocks import PairBlock, blocks_from_arrays, blocks_from_store
from repro.trace.store import (
    TraceStoreCorruption,
    TraceStoreError,
    TraceStoreReader,
    TraceStoreWriter,
    iter_store_blocks,
    write_trace_store,
)


def columns(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 50, size=n).astype(np.int64),
        rng.integers(100, 150, size=n).astype(np.int64),
    )


def make_store(path, n=250, block_size=100, seed=0, **kwargs):
    sources, repliers = columns(n, seed)
    reader = write_trace_store(path, sources, repliers, block_size=block_size, **kwargs)
    return reader, sources, repliers


class TestRoundTrip:
    def test_blocks_match_in_memory_partition(self, tmp_path):
        path = tmp_path / "t.rptrace"
        reader, sources, repliers = make_store(
            path, n=250, block_size=100, drop_partial=False
        )
        expected = blocks_from_arrays(
            sources, repliers, block_size=100, drop_partial=False
        )
        got = list(reader.iter_blocks())
        assert len(got) == len(expected) == 3
        for mem, disk in zip(expected, got):
            assert disk.index == mem.index
            np.testing.assert_array_equal(disk.sources, mem.sources)
            np.testing.assert_array_equal(disk.repliers, mem.repliers)
            assert disk.fingerprint() == mem.fingerprint()
            np.testing.assert_array_equal(disk.packed_keys(), mem.packed_keys())

    def test_drop_partial_tail(self, tmp_path):
        reader, _, _ = make_store(tmp_path / "t.rptrace", n=250, block_size=100)
        assert reader.n_blocks == 2
        assert reader.n_pairs == 200

    def test_chunked_appends_equal_single_append(self, tmp_path):
        sources, repliers = columns(500)
        with TraceStoreWriter(tmp_path / "a.rptrace", block_size=64) as w:
            for lo in range(0, 500, 7):  # ragged chunks crossing block edges
                w.append(sources[lo : lo + 7], repliers[lo : lo + 7])
        with TraceStoreWriter(tmp_path / "b.rptrace", block_size=64) as w:
            w.append(sources, repliers)
        a = TraceStoreReader(tmp_path / "a.rptrace")
        b = TraceStoreReader(tmp_path / "b.rptrace")
        assert a.n_blocks == b.n_blocks
        for i in range(a.n_blocks):
            np.testing.assert_array_equal(a.block(i).sources, b.block(i).sources)
            assert a.block(i).fingerprint() == b.block(i).fingerprint()

    def test_append_block_direct(self, tmp_path):
        sources, repliers = columns(80)
        block = PairBlock(sources=sources, repliers=repliers, index=0)
        with TraceStoreWriter(tmp_path / "t.rptrace", block_size=80) as w:
            w.append_block(block)
        reader = TraceStoreReader(tmp_path / "t.rptrace")
        assert reader.n_blocks == 1
        assert reader.block(0).fingerprint() == block.fingerprint()

    def test_append_block_rejects_buffered_pairs(self, tmp_path):
        sources, repliers = columns(80)
        with TraceStoreWriter(tmp_path / "t.rptrace", block_size=100) as w:
            w.append(sources[:10], repliers[:10])
            assert w.pending_pairs == 10
            with pytest.raises(TraceStoreError):
                w.append_block(PairBlock(sources=sources, repliers=repliers))
            w.append(sources[10:], repliers[10:])  # still usable

    def test_without_packed_segment(self, tmp_path):
        reader, sources, _ = make_store(
            tmp_path / "t.rptrace", n=200, block_size=100, include_packed=False
        )
        assert not reader.has_packed
        block = reader.block(0)
        expected = blocks_from_arrays(sources[:100], reader.block(0).repliers, block_size=100)
        np.testing.assert_array_equal(
            block.packed_keys(), expected[0].packed_keys()
        )

    def test_iter_store_blocks_and_blocks_from_store(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=200, block_size=100)
        assert sum(len(b) for b in iter_store_blocks(path)) == 200
        reader = TraceStoreReader(path)
        assert [b.index for b in blocks_from_store(reader)] == [0, 1]
        assert [b.index for b in blocks_from_store(path)] == [0, 1]


class TestPreseededMemoization:
    def test_fingerprint_and_packed_preseeded(self, tmp_path, monkeypatch):
        """Store-resident blocks must not re-hash or re-pack columns."""
        path = tmp_path / "t.rptrace"
        make_store(path, n=200, block_size=100)
        block = TraceStoreReader(path).block(0)

        import repro.core.generation as generation

        def boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("pack_pair_keys called on a preseeded block")

        monkeypatch.setattr(generation, "pack_pair_keys", boom)
        block.packed_keys()  # served from the store's packed segment
        assert len(block.fingerprint()) == 32

    def test_writer_packs_each_block_exactly_once(self, tmp_path, monkeypatch):
        """The writer reuses PairBlock.packed_keys memoization: one
        pack_pair_keys call per block even though fingerprinting,
        writing, and validation all touch the keys."""
        import repro.core.generation as generation

        calls = {"n": 0}
        real = generation.pack_pair_keys

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(generation, "pack_pair_keys", counting)
        sources, repliers = columns(300)
        with TraceStoreWriter(tmp_path / "t.rptrace", block_size=100) as w:
            w.append(sources, repliers)
        assert calls["n"] == 3  # exactly one pack per written block


class TestCorruption:
    def test_truncated_footer_recovers_all_blocks(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=300, block_size=100)
        data = path.read_bytes()
        path.write_bytes(data[:-25])  # tear the trailer
        reader = TraceStoreReader(path)
        assert reader.recovered
        assert reader.n_blocks == 3
        assert reader.n_pairs == 300

    def test_mid_write_crash_leaves_complete_blocks_readable(self, tmp_path):
        path = tmp_path / "t.rptrace"
        sources, repliers = columns(250)
        writer = TraceStoreWriter(path, block_size=100)
        writer.append(sources, repliers)  # 2 complete blocks + 50 pending
        writer.abandon()  # simulated crash: no footer, no tail flush
        reader = TraceStoreReader(path)
        assert reader.recovered
        assert reader.n_blocks == 2
        np.testing.assert_array_equal(reader.block(1).sources, sources[100:200])

    def test_exception_in_writer_context_abandons(self, tmp_path):
        path = tmp_path / "t.rptrace"
        sources, repliers = columns(150)
        with pytest.raises(RuntimeError):
            with TraceStoreWriter(path, block_size=100) as w:
                w.append(sources, repliers)
                raise RuntimeError("crash")
        reader = TraceStoreReader(path)
        assert reader.recovered
        assert reader.n_blocks == 1

    def test_bad_fingerprint_detected_by_verify(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=300, block_size=100)
        clean = TraceStoreReader(path)
        offset = clean._entries[1].offset  # corrupt a byte inside block 1
        expected_first = np.array(clean.block(0).sources)
        data = bytearray(path.read_bytes())
        data[offset + 40] ^= 0xFF
        path.write_bytes(bytes(data))
        # Footer fast path still lists 3 blocks; verify=True truncates at
        # the first bad fingerprint.
        verified = TraceStoreReader(path, verify=True)
        assert verified.n_blocks == 1
        np.testing.assert_array_equal(verified.block(0).sources, expected_first)
        assert TraceStoreReader(path).verify_blocks() == 1
        with pytest.raises(TraceStoreCorruption):
            TraceStoreReader(path).verify_blocks(strict=True)

    def test_bad_fingerprint_stops_footerless_scan(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=300, block_size=100)
        offset = TraceStoreReader(path)._entries[1].offset
        data = bytearray(path.read_bytes())
        data[offset + 40] ^= 0xFF
        path.write_bytes(bytes(data[:-25]))  # bad block AND torn footer
        reader = TraceStoreReader(path)
        assert reader.recovered
        assert reader.n_blocks == 1

    def test_not_a_store_file(self, tmp_path):
        path = tmp_path / "bogus.rptrace"
        path.write_bytes(b"definitely not a trace store")
        with pytest.raises(TraceStoreError):
            TraceStoreReader(path)

    def test_bad_trailer_crc_falls_back_to_scan(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=200, block_size=100)
        data = bytearray(path.read_bytes())
        # Flip a byte inside the footer index (covered by the trailer CRC).
        trailer = data[-40:]
        index_offset = struct.unpack("<8sQQQII", bytes(trailer))[1]
        data[index_offset + 3] ^= 0xFF
        path.write_bytes(bytes(data))
        reader = TraceStoreReader(path)
        assert reader.recovered  # footer rejected, block scan succeeded
        assert reader.n_blocks == 2


class TestValidation:
    def test_rejects_mismatched_columns(self, tmp_path):
        sources, repliers = columns(50)
        with TraceStoreWriter(tmp_path / "t.rptrace") as w:
            with pytest.raises(ValueError):
                w.append(sources, repliers[:-1])

    def test_empty_store_round_trips(self, tmp_path):
        path = tmp_path / "t.rptrace"
        with TraceStoreWriter(path):
            pass
        reader = TraceStoreReader(path)
        assert reader.n_blocks == 0
        assert list(reader.iter_blocks()) == []

    def test_writer_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.rptrace"
        w = TraceStoreWriter(path, block_size=10)
        sources, repliers = columns(10)
        w.append(sources, repliers)
        w.close()
        w.close()
        assert TraceStoreReader(path).n_blocks == 1


class TestCompression:
    def test_zlib_round_trip_matches_raw(self, tmp_path):
        raw, sources, repliers = make_store(
            tmp_path / "raw.rptrace", n=500, block_size=100
        )
        zl, _, _ = make_store(
            tmp_path / "z.rptrace", n=500, block_size=100, codec="zlib"
        )
        assert raw.version == 1
        assert zl.version == 2
        assert zl.n_blocks == raw.n_blocks
        for i in range(raw.n_blocks):
            a, b = raw.block(i), zl.block(i)
            np.testing.assert_array_equal(a.sources, b.sources)
            np.testing.assert_array_equal(a.repliers, b.repliers)
            assert a.fingerprint() == b.fingerprint()
            np.testing.assert_array_equal(a.packed_keys(), b.packed_keys())
        raw.close()
        zl.close()

    def test_zlib_shrinks_compressible_trace(self, tmp_path):
        # Low-cardinality columns compress well below the raw encoding.
        n = 2000
        sources = np.repeat(np.arange(4, dtype=np.int64), n // 4)
        repliers = np.full(n, 7, dtype=np.int64)
        write_trace_store(
            tmp_path / "raw.rptrace", sources, repliers, block_size=500
        ).close()
        write_trace_store(
            tmp_path / "z.rptrace", sources, repliers, block_size=500, codec="zlib"
        ).close()
        raw_bytes = (tmp_path / "raw.rptrace").stat().st_size
        zl_bytes = (tmp_path / "z.rptrace").stat().st_size
        assert zl_bytes < raw_bytes / 2

    def test_incompressible_segments_stay_raw(self, tmp_path):
        # High-entropy ids barely deflate; blocks where zlib does not
        # win must keep their segments raw (codec 0) and still read back.
        rng = np.random.default_rng(5)
        sources = rng.integers(0, 2**31 - 1, size=300).astype(np.int64)
        repliers = rng.integers(0, 2**31 - 1, size=300).astype(np.int64)
        reader = write_trace_store(
            tmp_path / "z.rptrace", sources, repliers, block_size=100, codec="zlib"
        )
        for i in range(reader.n_blocks):
            block = reader.block(i)
            np.testing.assert_array_equal(block.sources, sources[i * 100 : (i + 1) * 100])
        reader.close()

    def test_no_codec_is_byte_stable_v1(self, tmp_path):
        # codec=None must keep writing version-1 files (old readers and
        # fingerprint-based tooling rely on the stable layout).
        _, sources, repliers = make_store(tmp_path / "a.rptrace", n=200, seed=3)
        write_trace_store(tmp_path / "b.rptrace", sources, repliers, block_size=100).close()
        assert (tmp_path / "a.rptrace").read_bytes() == (tmp_path / "b.rptrace").read_bytes()

    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="codec"):
            TraceStoreWriter(tmp_path / "t.rptrace", codec="lz9")

    def test_compressed_torn_tail_recovers(self, tmp_path):
        sources, repliers = columns(500, seed=9)
        path = tmp_path / "z.rptrace"
        w = TraceStoreWriter(path, block_size=100, codec="zlib")
        w.append(sources, repliers)
        w.abandon()  # crash: no footer
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 11)  # tear into the last block's payload
        reader = TraceStoreReader(path)
        assert reader.recovered
        assert reader.n_blocks == 4  # last block torn away
        for i, block in enumerate(reader.iter_blocks()):
            np.testing.assert_array_equal(
                block.sources, sources[i * 100 : (i + 1) * 100]
            )
        reader.close()

    def test_compressed_footer_store_with_corrupt_segment(self, tmp_path):
        # Flipping bytes inside a compressed payload of a footered store:
        # verify=True truncates at the corrupt block instead of serving
        # garbage.
        zl, _, _ = make_store(
            tmp_path / "z.rptrace", n=500, block_size=100, codec="zlib"
        )
        n_blocks = zl.n_blocks
        entry = zl._entries[-1]
        zl.close()
        path = tmp_path / "z.rptrace"
        data = bytearray(path.read_bytes())
        payload = entry.offset + 32 + 3 * 8
        data[payload + 5] ^= 0xFF
        data[payload + 6] ^= 0xFF
        path.write_bytes(bytes(data))
        reader = TraceStoreReader(path, verify=True)
        assert reader.n_blocks == n_blocks - 1
        reader.close()


class TestReaderLifetime:
    def test_close_is_idempotent(self, tmp_path):
        reader, _, _ = make_store(tmp_path / "t.rptrace")
        reader.close()
        reader.close()  # double close: no-op
        assert reader.closed

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path)[0].close()
        with TraceStoreReader(path) as reader:
            assert not reader.closed
            reader.block(0)
        assert reader.closed

    def test_closed_reader_refuses_reads(self, tmp_path):
        reader, _, _ = make_store(tmp_path / "t.rptrace")
        reader.close()
        with pytest.raises(TraceStoreError, match="closed"):
            reader.block(0)
        with pytest.raises(TraceStoreError, match="closed"):
            reader.columns(0)
        with pytest.raises(TraceStoreError, match="closed"):
            reader.verify_blocks()

    def test_close_releases_block_mappings(self, tmp_path):
        reader, _, _ = make_store(tmp_path / "t.rptrace")
        block = reader.block(0)
        mappings = list(reader._live_maps)
        assert mappings  # block() created tracked memmaps
        del block
        reader.close()
        assert all(m.closed for m in mappings)

    def test_blocks_from_store_path_closes_reader(self, tmp_path):
        # Streaming by path must not leave an open reader behind once the
        # generator is exhausted (fd hygiene over long partitioned runs).
        path = tmp_path / "t.rptrace"
        make_store(path)[0].close()
        blocks = list(blocks_from_store(str(path)))
        assert len(blocks) == 2

    def test_blocks_from_store_reader_ownership_kept(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path)[0].close()
        with TraceStoreReader(path) as reader:
            list(blocks_from_store(reader))
            assert not reader.closed  # caller-owned reader stays open

    def test_meta_fingerprint_round_trips(self, tmp_path):
        path = tmp_path / "t.rptrace"
        sources, repliers = columns(100)
        write_trace_store(
            path, sources, repliers, block_size=100, meta_fingerprint=0xDEADBEEF
        ).close()
        with TraceStoreReader(path) as reader:
            assert reader.meta_fingerprint == 0xDEADBEEF
