"""Tests for the content-addressed ruleset cache (repro.parallel.cache)."""

import pickle

import pytest

from repro.core.generation import generate_ruleset
from repro.parallel.cache import (
    RulesetCache,
    cached_generate_ruleset,
    configure_ruleset_cache,
    disable_ruleset_cache,
    get_ruleset_cache,
    ruleset_cache,
)
from tests.conftest import make_block


def block_a(index=0):
    return make_block([(1, 10)] * 15 + [(2, 20)] * 12 + [(3, 30)] * 11, index=index)


def block_b():
    return make_block([(4, 40)] * 15 + [(5, 50)] * 12, index=0)


def block_c():
    return make_block([(6, 60)] * 20, index=0)


class TestAccounting:
    def test_miss_then_hit(self):
        cache = RulesetCache()
        block = block_a()
        first = cache.get_or_generate(block)
        assert (cache.hits, cache.misses) == (0, 1)
        second = cache.get_or_generate(block)
        assert (cache.hits, cache.misses) == (1, 1)
        assert second is first  # a hit returns the cached object itself
        assert cache.hit_rate == 0.5
        assert len(cache) == 1

    def test_identical_content_distinct_objects_hit(self):
        """The key is a content hash, not object identity or block index."""
        cache = RulesetCache()
        cache.get_or_generate(block_a(index=0))
        cache.get_or_generate(block_a(index=7))
        assert (cache.hits, cache.misses) == (1, 1)

    def test_content_change_misses(self):
        cache = RulesetCache()
        cache.get_or_generate(block_a())
        changed = make_block([(1, 10)] * 15 + [(2, 20)] * 12 + [(3, 31)] * 11)
        cache.get_or_generate(changed)
        assert (cache.hits, cache.misses) == (0, 2)

    @pytest.mark.parametrize(
        "params",
        [
            {"min_support_count": 5},
            {"top_k": 1},
            {"min_confidence": 0.5},
        ],
    )
    def test_param_change_misses(self, params):
        cache = RulesetCache()
        block = block_a()
        cache.get_or_generate(block)
        cache.get_or_generate(block, **params)
        assert (cache.hits, cache.misses) == (0, 2)

    def test_cached_result_equals_plain_generation(self):
        cache = RulesetCache()
        block = block_a()
        cached = cache.get_or_generate(block, min_support_count=5, top_k=2)
        plain = generate_ruleset(block, min_support_count=5, top_k=2)
        assert [(r.antecedent, r.consequent) for r in cached] == [
            (r.antecedent, r.consequent) for r in plain
        ]

    def test_stats_snapshot_is_picklable(self):
        cache = RulesetCache()
        cache.get_or_generate(block_a())
        cache.get_or_generate(block_a())
        stats = pickle.loads(pickle.dumps(cache.stats()))
        assert stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "size": 1,
            "hit_rate": 0.5,
        }

    def test_empty_cache_hit_rate(self):
        assert RulesetCache().hit_rate == 0.0


class TestLRU:
    def test_eviction_at_capacity(self):
        cache = RulesetCache(maxsize=2)
        cache.get_or_generate(block_a())
        cache.get_or_generate(block_b())
        cache.get_or_generate(block_c())
        assert cache.evictions == 1
        assert len(cache) == 2
        # Oldest entry (block_a) was dropped; block_c is still cached.
        cache.get_or_generate(block_c())
        assert cache.hits == 1
        cache.get_or_generate(block_a())
        assert cache.misses == 4

    def test_hit_refreshes_recency(self):
        cache = RulesetCache(maxsize=2)
        cache.get_or_generate(block_a())
        cache.get_or_generate(block_b())
        cache.get_or_generate(block_a())  # hit: block_a becomes most recent
        cache.get_or_generate(block_c())  # evicts block_b, not block_a
        cache.get_or_generate(block_a())
        assert cache.hits == 2

    def test_clear(self):
        cache = RulesetCache()
        cache.get_or_generate(block_a())
        cache.clear()
        assert len(cache) == 0
        cache.get_or_generate(block_a())
        assert cache.misses == 2

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            RulesetCache(maxsize=0)


class TestProcessWideInstallation:
    def test_disabled_by_default(self):
        assert get_ruleset_cache() is None
        # Falls through to plain generation with no counters anywhere.
        rs = cached_generate_ruleset(block_a())
        assert len(rs) > 0

    def test_configure_and_disable(self):
        cache = configure_ruleset_cache(maxsize=8)
        assert get_ruleset_cache() is cache
        cached_generate_ruleset(block_a())
        cached_generate_ruleset(block_a())
        assert (cache.hits, cache.misses) == (1, 1)
        disable_ruleset_cache()
        assert get_ruleset_cache() is None

    def test_context_manager_restores_previous(self):
        outer = configure_ruleset_cache()
        with ruleset_cache() as inner:
            assert get_ruleset_cache() is inner
            assert inner is not outer
        assert get_ruleset_cache() is outer

    def test_context_manager_restores_none(self):
        disable_ruleset_cache()
        with ruleset_cache():
            assert get_ruleset_cache() is not None
        assert get_ruleset_cache() is None
