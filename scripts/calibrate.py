"""Grid-search the trace-generator knobs against the paper's bands.

Not part of the library: a development tool used to pick the calibrated
defaults recorded in MonitorTraceConfig (see DESIGN.md §7).
"""

import itertools
import sys
import time

from repro.core.strategies import (
    AdaptiveSlidingWindow,
    LazySlidingWindow,
    SlidingWindow,
    StaticRuleset,
)
from repro.trace.blocks import blocks_from_arrays
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

N_BLOCKS = 40
SEED = 7


def evaluate(cfg, seed=SEED, n_blocks=N_BLOCKS):
    gen = MonitorTraceGenerator(cfg, seed=seed)
    arrays = gen.generate_pair_arrays(n_blocks * cfg.block_size)
    blocks = blocks_from_arrays(arrays.source, arrays.replier, block_size=cfg.block_size)
    out = {}
    out["sliding"] = SlidingWindow().run(blocks)
    out["lazy"] = LazySlidingWindow().run(blocks)
    out["static"] = StaticRuleset().run(blocks)
    out["adaptive"] = AdaptiveSlidingWindow().run(blocks)
    return out


def score(runs):
    sl, lz, st, ad = runs["sliding"], runs["lazy"], runs["static"], runs["adaptive"]
    st_succ16 = st.success_series[14] if len(st.success_series) > 14 else 1.0
    targets = [
        (sl.average_coverage, 0.80, 1.0),
        (sl.average_success, 0.79, 1.0),
        (lz.average_coverage, 0.59, 1.0),
        (lz.average_success, 0.59, 1.0),
        (st.average_coverage, 0.22, 0.7),  # 40-block proxy for the 365-block 0.18
        (st_succ16, 0.03, 0.7),
        (ad.average_coverage, 0.78, 0.5),
        (ad.average_success, 0.77, 0.5),
        (ad.blocks_per_generation, 1.7, 0.3),
    ]
    return sum(w * abs(v - t) for v, t, w in targets)


def describe(runs):
    sl, lz, st, ad = runs["sliding"], runs["lazy"], runs["static"], runs["adaptive"]
    st16 = st.success_series[14] if len(st.success_series) > 14 else float("nan")
    return (
        f"sl={sl.average_coverage:.2f}/{sl.average_success:.2f} "
        f"lz={lz.average_coverage:.2f}/{lz.average_success:.2f} "
        f"st={st.average_coverage:.2f}/{st.average_success:.2f}@16={st16:.2f} "
        f"ad={ad.average_coverage:.2f}/{ad.average_success:.2f} b/g={ad.blocks_per_generation:.2f}"
    )


def main():
    grid = {
        "n_neighbors": [80, 120],
        "activity_sigma": [1.2, 1.6],
        "mean_session_blocks": [10.0, 15.0, 20.0],
        "session_alpha": [1.3],
        "path_lifetime_blocks": [14.0, 17.0],
    }
    keys = list(grid)
    best = None
    for values in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, values))
        cfg = MonitorTraceConfig(**params)
        t0 = time.time()
        runs = evaluate(cfg)
        s = score(runs)
        line = " ".join(f"{k}={v}" for k, v in params.items())
        print(f"[{s:6.3f}] {line}  {describe(runs)}  ({time.time()-t0:.1f}s)")
        sys.stdout.flush()
        if best is None or s < best[0]:
            best = (s, params)
    print("BEST:", best)


if __name__ == "__main__":
    main()
