"""FaultPlan semantics: validation, ordering, determinism, round-trips."""

import pytest

from repro.faults.plan import (
    CORRUPT,
    CRASH,
    HEAL,
    LATENCY,
    PARTITION,
    RESTART,
    STALL,
    FaultEvent,
    FaultPlan,
    chaos_plan,
    crash_restart_plan,
    partition_heal_plan,
)


class TestFaultEvent:
    def test_node_kinds_need_a_node(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=CRASH)

    def test_link_kinds_need_an_ordered_link(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=CORRUPT)
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=CORRUPT, link=(3, 1))

    def test_partition_needs_two_nonempty_groups(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=PARTITION, groups=((0, 1), ()))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="meteor", node=1)

    def test_dict_roundtrip(self):
        event = FaultEvent(time=1.5, kind=STALL, link=(0, 2), seconds=0.25)
        assert FaultEvent.from_dict(event.as_dict()) == event


class TestFaultPlan:
    def test_events_are_time_sorted(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=2.0, kind=RESTART, node=1),
                FaultEvent(time=1.0, kind=CRASH, node=1),
            ),
            duration=3.0,
        )
        assert [e.kind for e in plan.events] == [CRASH, RESTART]

    def test_duration_must_cover_last_event(self):
        with pytest.raises(ValueError):
            FaultPlan(
                events=(FaultEvent(time=5.0, kind=CRASH, node=0),),
                duration=1.0,
            )

    def test_double_crash_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(
                events=(
                    FaultEvent(time=0.1, kind=CRASH, node=0),
                    FaultEvent(time=0.2, kind=CRASH, node=0),
                ),
                duration=1.0,
            )

    def test_restart_of_live_node_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(
                events=(FaultEvent(time=0.1, kind=RESTART, node=0),),
                duration=1.0,
            )

    def test_nested_partitions_rejected(self):
        cut = FaultEvent(time=0.1, kind=PARTITION, groups=((0,), (1,)))
        again = FaultEvent(time=0.2, kind=PARTITION, groups=((0,), (1,)))
        with pytest.raises(ValueError):
            FaultPlan(events=(cut, again), duration=1.0)

    def test_heal_without_partition_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(events=(FaultEvent(time=0.1, kind=HEAL),), duration=1.0)

    def test_json_roundtrip(self):
        plan = chaos_plan(6, [(0, 1), (1, 2), (2, 3), (4, 5)], seed=3)
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestGenerators:
    def test_same_seed_is_bit_identical(self):
        a = chaos_plan(8, [(0, 1), (2, 3), (4, 5)], seed=11)
        b = chaos_plan(8, [(0, 1), (2, 3), (4, 5)], seed=11)
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        edges = [(0, 1), (2, 3), (4, 5)]
        assert chaos_plan(8, edges, seed=1).to_json() != chaos_plan(
            8, edges, seed=2
        ).to_json()

    def test_crash_restart_pairs_and_survivor(self):
        plan = crash_restart_plan(4, seed=0, crashes=5)
        counts = plan.kind_counts()
        # one node always stays up, so at most n-1 crash cycles
        assert counts[CRASH] == counts[RESTART] == 3
        crashed = {e.node for e in plan.events if e.kind == CRASH}
        assert len(crashed) == 3

    def test_partition_heal_bisects_all_nodes(self):
        plan = partition_heal_plan(7, seed=2)
        cut = next(e for e in plan.events if e.kind == PARTITION)
        assert sorted(cut.groups[0] + cut.groups[1]) == list(range(7))
        assert plan.kind_counts()[HEAL] == 1

    def test_chaos_plan_link_faults_land_on_known_edges(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        plan = chaos_plan(
            6, edges, seed=7, resets=1, truncations=1
        )
        edge_set = set(edges)
        for event in plan.events:
            if event.link is not None:
                assert event.link in edge_set

    def test_chaos_latency_spikes_clear_themselves(self):
        plan = chaos_plan(
            6,
            [(0, 1), (2, 3), (4, 5)],
            seed=1,
            crashes=0,
            partitions=0,
            corruptions=0,
            stalls=0,
            latency_spikes=1,
        )
        spikes = [e for e in plan.events if e.kind == LATENCY]
        assert len(spikes) == 2
        assert spikes[0].seconds > 0.0 and spikes[1].seconds == 0.0
        assert spikes[0].link == spikes[1].link
