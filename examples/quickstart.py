#!/usr/bin/env python
"""Quickstart: mine routing rules from a synthetic Gnutella trace.

Generates a calibrated monitor-node trace (the stand-in for the paper's
7-day capture), runs all four rule-set maintenance strategies from the
paper plus the streaming extension, and prints their coverage/success —
reproducing the paper's headline comparison in under a minute.

Run:  python examples/quickstart.py [n_blocks]
"""

import sys
import time

from repro import (
    AdaptiveSlidingWindow,
    LazySlidingWindow,
    MonitorTraceConfig,
    MonitorTraceGenerator,
    SlidingWindow,
    StaticRuleset,
    StreamingRules,
    blocks_from_arrays,
)


def main() -> None:
    n_blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    config = MonitorTraceConfig()  # calibrated defaults (DESIGN.md §7)

    print(f"Generating {n_blocks} blocks x {config.block_size} query-reply pairs ...")
    t0 = time.time()
    generator = MonitorTraceGenerator(config, seed=20060814)
    arrays = generator.generate_pair_arrays(n_blocks * config.block_size)
    blocks = blocks_from_arrays(
        arrays.source, arrays.replier, block_size=config.block_size
    )
    print(f"  {len(arrays):,} pairs in {time.time() - t0:.1f}s\n")

    strategies = [
        StaticRuleset(),
        LazySlidingWindow(laziness=10),
        AdaptiveSlidingWindow(history=10, initial_threshold=0.7),
        SlidingWindow(),
        StreamingRules(min_support_count=5),
    ]

    print(f"{'strategy':<12} {'coverage':>9} {'success':>9} {'generations':>12} {'blocks/gen':>11}")
    print("-" * 58)
    for strategy in strategies:
        run = strategy.run(blocks)
        bpg = run.blocks_per_generation
        bpg_text = f"{bpg:.2f}" if bpg != float("inf") else "continuous"
        print(
            f"{run.strategy_name:<12} {run.average_coverage:>9.3f} "
            f"{run.average_success:>9.3f} {run.n_generations:>12d} {bpg_text:>11}"
        )

    print(
        "\nPaper reference points: Sliding 0.80/0.79 | Lazy 0.59/0.59 | "
        "Adaptive 0.78/~0.77 @ ~1.7 blocks/gen | Static decays to ~0 success."
    )


if __name__ == "__main__":
    main()
