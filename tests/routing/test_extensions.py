"""Tests for the §VI extension policies (hybrid, topology adaptation)."""

import pytest

from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.hybrid import HybridShortcutAssociationPolicy
from repro.routing.topology_adaptation import TopologyAdaptingPolicy

SMALL = OverlayConfig(
    n_nodes=80, degree=4, n_categories=6, files_per_category=40, library_size=25
)
SMALL_DYNAMIC = OverlayConfig(
    n_nodes=80,
    degree=4,
    n_categories=6,
    files_per_category=40,
    library_size=25,
    dynamic_topology=True,
    max_degree=7,
)


class TestHybridPolicy:
    def test_learns_both_structures(self):
        overlay = Overlay(SMALL, seed=1)
        overlay.install_policies(
            lambda nid, ov: HybridShortcutAssociationPolicy(nid, ov)
        )
        overlay.run_workload(150)
        learned_shortcuts = sum(
            1 for n in range(overlay.n_nodes) if overlay.node(n).policy.shortcut_list
        )
        learned_rules = sum(
            1
            for n in range(overlay.n_nodes)
            if overlay.node(n).policy.rules.n_rules() > 0
        )
        assert learned_shortcuts > 0
        assert learned_rules > 0

    def test_success_rate_maintained(self):
        overlay = Overlay(SMALL, seed=2)
        overlay.install_policies(
            lambda nid, ov: HybridShortcutAssociationPolicy(nid, ov)
        )
        stats = overlay.run_workload(100, warmup=200)
        assert stats.success_rate > 0.7

    def test_reset_clears_both(self):
        from repro.network.messages import Query

        overlay = Overlay(SMALL, seed=3)
        policy = HybridShortcutAssociationPolicy(0, overlay)
        query = Query(guid=1, origin=0, file_id=1, category=0, ttl=3)
        policy.on_reply(node_id=0, upstream=1, downstream=2, query=query, provider=3)
        policy._shortcuts._touch(9)
        policy.reset()
        assert policy.rules.n_rules() == 0
        assert policy.shortcut_list == []


class TestTopologyAdaptingPolicy:
    def test_noop_on_immutable_topology(self):
        overlay = Overlay(SMALL, seed=4)
        overlay.install_policies(
            lambda nid, ov: TopologyAdaptingPolicy(nid, ov, adapt_every=1)
        )
        overlay.run_workload(100)
        total_links = sum(
            overlay.node(n).policy.links_added for n in range(overlay.n_nodes)
        )
        assert total_links == 0  # immutable topology: adaptation no-ops

    def test_adds_links_on_dynamic_topology(self):
        overlay = Overlay(SMALL_DYNAMIC, seed=5)
        overlay.install_policies(
            lambda nid, ov: TopologyAdaptingPolicy(
                nid, ov, adapt_every=5, max_new_links=2, min_support_count=1
            )
        )
        edges_before = overlay.topology.n_edges
        overlay.run_workload(300)
        total_links = sum(
            overlay.node(n).policy.links_added for n in range(overlay.n_nodes)
        )
        assert total_links > 0
        assert overlay.topology.n_edges == edges_before + total_links

    def test_degree_cap_respected(self):
        overlay = Overlay(SMALL_DYNAMIC, seed=6)
        overlay.install_policies(
            lambda nid, ov: TopologyAdaptingPolicy(
                nid, ov, adapt_every=3, max_new_links=10, min_support_count=1
            )
        )
        overlay.run_workload(300)
        assert max(overlay.topology.degrees()) <= 7

    def test_max_new_links_bounds_per_node(self):
        overlay = Overlay(SMALL_DYNAMIC, seed=7)
        overlay.install_policies(
            lambda nid, ov: TopologyAdaptingPolicy(
                nid, ov, adapt_every=3, max_new_links=1, min_support_count=1
            )
        )
        overlay.run_workload(300)
        assert all(
            overlay.node(n).policy.links_added <= 1 for n in range(overlay.n_nodes)
        )

    def test_validation(self):
        overlay = Overlay(SMALL, seed=8)
        with pytest.raises(ValueError):
            TopologyAdaptingPolicy(0, overlay, adapt_every=0)
        with pytest.raises(ValueError):
            TopologyAdaptingPolicy(0, overlay, max_new_links=-1)
