"""Tests for the on-disk columnar trace store (repro.trace.store)."""

import struct

import numpy as np
import pytest

from repro.trace.blocks import PairBlock, blocks_from_arrays, blocks_from_store
from repro.trace.store import (
    TraceStoreCorruption,
    TraceStoreError,
    TraceStoreReader,
    TraceStoreWriter,
    iter_store_blocks,
    write_trace_store,
)


def columns(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 50, size=n).astype(np.int64),
        rng.integers(100, 150, size=n).astype(np.int64),
    )


def make_store(path, n=250, block_size=100, seed=0, **kwargs):
    sources, repliers = columns(n, seed)
    reader = write_trace_store(path, sources, repliers, block_size=block_size, **kwargs)
    return reader, sources, repliers


class TestRoundTrip:
    def test_blocks_match_in_memory_partition(self, tmp_path):
        path = tmp_path / "t.rptrace"
        reader, sources, repliers = make_store(
            path, n=250, block_size=100, drop_partial=False
        )
        expected = blocks_from_arrays(
            sources, repliers, block_size=100, drop_partial=False
        )
        got = list(reader.iter_blocks())
        assert len(got) == len(expected) == 3
        for mem, disk in zip(expected, got):
            assert disk.index == mem.index
            np.testing.assert_array_equal(disk.sources, mem.sources)
            np.testing.assert_array_equal(disk.repliers, mem.repliers)
            assert disk.fingerprint() == mem.fingerprint()
            np.testing.assert_array_equal(disk.packed_keys(), mem.packed_keys())

    def test_drop_partial_tail(self, tmp_path):
        reader, _, _ = make_store(tmp_path / "t.rptrace", n=250, block_size=100)
        assert reader.n_blocks == 2
        assert reader.n_pairs == 200

    def test_chunked_appends_equal_single_append(self, tmp_path):
        sources, repliers = columns(500)
        with TraceStoreWriter(tmp_path / "a.rptrace", block_size=64) as w:
            for lo in range(0, 500, 7):  # ragged chunks crossing block edges
                w.append(sources[lo : lo + 7], repliers[lo : lo + 7])
        with TraceStoreWriter(tmp_path / "b.rptrace", block_size=64) as w:
            w.append(sources, repliers)
        a = TraceStoreReader(tmp_path / "a.rptrace")
        b = TraceStoreReader(tmp_path / "b.rptrace")
        assert a.n_blocks == b.n_blocks
        for i in range(a.n_blocks):
            np.testing.assert_array_equal(a.block(i).sources, b.block(i).sources)
            assert a.block(i).fingerprint() == b.block(i).fingerprint()

    def test_append_block_direct(self, tmp_path):
        sources, repliers = columns(80)
        block = PairBlock(sources=sources, repliers=repliers, index=0)
        with TraceStoreWriter(tmp_path / "t.rptrace", block_size=80) as w:
            w.append_block(block)
        reader = TraceStoreReader(tmp_path / "t.rptrace")
        assert reader.n_blocks == 1
        assert reader.block(0).fingerprint() == block.fingerprint()

    def test_append_block_rejects_buffered_pairs(self, tmp_path):
        sources, repliers = columns(80)
        with TraceStoreWriter(tmp_path / "t.rptrace", block_size=100) as w:
            w.append(sources[:10], repliers[:10])
            assert w.pending_pairs == 10
            with pytest.raises(TraceStoreError):
                w.append_block(PairBlock(sources=sources, repliers=repliers))
            w.append(sources[10:], repliers[10:])  # still usable

    def test_without_packed_segment(self, tmp_path):
        reader, sources, _ = make_store(
            tmp_path / "t.rptrace", n=200, block_size=100, include_packed=False
        )
        assert not reader.has_packed
        block = reader.block(0)
        expected = blocks_from_arrays(sources[:100], reader.block(0).repliers, block_size=100)
        np.testing.assert_array_equal(
            block.packed_keys(), expected[0].packed_keys()
        )

    def test_iter_store_blocks_and_blocks_from_store(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=200, block_size=100)
        assert sum(len(b) for b in iter_store_blocks(path)) == 200
        reader = TraceStoreReader(path)
        assert [b.index for b in blocks_from_store(reader)] == [0, 1]
        assert [b.index for b in blocks_from_store(path)] == [0, 1]


class TestPreseededMemoization:
    def test_fingerprint_and_packed_preseeded(self, tmp_path, monkeypatch):
        """Store-resident blocks must not re-hash or re-pack columns."""
        path = tmp_path / "t.rptrace"
        make_store(path, n=200, block_size=100)
        block = TraceStoreReader(path).block(0)

        import repro.core.generation as generation

        def boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("pack_pair_keys called on a preseeded block")

        monkeypatch.setattr(generation, "pack_pair_keys", boom)
        block.packed_keys()  # served from the store's packed segment
        assert len(block.fingerprint()) == 32

    def test_writer_packs_each_block_exactly_once(self, tmp_path, monkeypatch):
        """The writer reuses PairBlock.packed_keys memoization: one
        pack_pair_keys call per block even though fingerprinting,
        writing, and validation all touch the keys."""
        import repro.core.generation as generation

        calls = {"n": 0}
        real = generation.pack_pair_keys

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(generation, "pack_pair_keys", counting)
        sources, repliers = columns(300)
        with TraceStoreWriter(tmp_path / "t.rptrace", block_size=100) as w:
            w.append(sources, repliers)
        assert calls["n"] == 3  # exactly one pack per written block


class TestCorruption:
    def test_truncated_footer_recovers_all_blocks(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=300, block_size=100)
        data = path.read_bytes()
        path.write_bytes(data[:-25])  # tear the trailer
        reader = TraceStoreReader(path)
        assert reader.recovered
        assert reader.n_blocks == 3
        assert reader.n_pairs == 300

    def test_mid_write_crash_leaves_complete_blocks_readable(self, tmp_path):
        path = tmp_path / "t.rptrace"
        sources, repliers = columns(250)
        writer = TraceStoreWriter(path, block_size=100)
        writer.append(sources, repliers)  # 2 complete blocks + 50 pending
        writer.abandon()  # simulated crash: no footer, no tail flush
        reader = TraceStoreReader(path)
        assert reader.recovered
        assert reader.n_blocks == 2
        np.testing.assert_array_equal(reader.block(1).sources, sources[100:200])

    def test_exception_in_writer_context_abandons(self, tmp_path):
        path = tmp_path / "t.rptrace"
        sources, repliers = columns(150)
        with pytest.raises(RuntimeError):
            with TraceStoreWriter(path, block_size=100) as w:
                w.append(sources, repliers)
                raise RuntimeError("crash")
        reader = TraceStoreReader(path)
        assert reader.recovered
        assert reader.n_blocks == 1

    def test_bad_fingerprint_detected_by_verify(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=300, block_size=100)
        clean = TraceStoreReader(path)
        offset = clean._entries[1].offset  # corrupt a byte inside block 1
        expected_first = np.array(clean.block(0).sources)
        data = bytearray(path.read_bytes())
        data[offset + 40] ^= 0xFF
        path.write_bytes(bytes(data))
        # Footer fast path still lists 3 blocks; verify=True truncates at
        # the first bad fingerprint.
        verified = TraceStoreReader(path, verify=True)
        assert verified.n_blocks == 1
        np.testing.assert_array_equal(verified.block(0).sources, expected_first)
        assert TraceStoreReader(path).verify_blocks() == 1
        with pytest.raises(TraceStoreCorruption):
            TraceStoreReader(path).verify_blocks(strict=True)

    def test_bad_fingerprint_stops_footerless_scan(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=300, block_size=100)
        offset = TraceStoreReader(path)._entries[1].offset
        data = bytearray(path.read_bytes())
        data[offset + 40] ^= 0xFF
        path.write_bytes(bytes(data[:-25]))  # bad block AND torn footer
        reader = TraceStoreReader(path)
        assert reader.recovered
        assert reader.n_blocks == 1

    def test_not_a_store_file(self, tmp_path):
        path = tmp_path / "bogus.rptrace"
        path.write_bytes(b"definitely not a trace store")
        with pytest.raises(TraceStoreError):
            TraceStoreReader(path)

    def test_bad_trailer_crc_falls_back_to_scan(self, tmp_path):
        path = tmp_path / "t.rptrace"
        make_store(path, n=200, block_size=100)
        data = bytearray(path.read_bytes())
        # Flip a byte inside the footer index (covered by the trailer CRC).
        trailer = data[-40:]
        index_offset = struct.unpack("<8sQQQII", bytes(trailer))[1]
        data[index_offset + 3] ^= 0xFF
        path.write_bytes(bytes(data))
        reader = TraceStoreReader(path)
        assert reader.recovered  # footer rejected, block scan succeeded
        assert reader.n_blocks == 2


class TestValidation:
    def test_rejects_mismatched_columns(self, tmp_path):
        sources, repliers = columns(50)
        with TraceStoreWriter(tmp_path / "t.rptrace") as w:
            with pytest.raises(ValueError):
                w.append(sources, repliers[:-1])

    def test_empty_store_round_trips(self, tmp_path):
        path = tmp_path / "t.rptrace"
        with TraceStoreWriter(path):
            pass
        reader = TraceStoreReader(path)
        assert reader.n_blocks == 0
        assert list(reader.iter_blocks()) == []

    def test_writer_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.rptrace"
        w = TraceStoreWriter(path, block_size=10)
        sources, repliers = columns(10)
        w.append(sources, repliers)
        w.close()
        w.close()
        assert TraceStoreReader(path).n_blocks == 1
