"""Two-tier association-routing simulator.

:class:`HierNetwork` keeps the seed baseline's substrate — leaves
attach to super-peers holding exact community indices, super-peers
form a random-regular overlay — and replaces "flood tier 2 on a local
miss" with a ladder of cheaper attempts:

1. **leaf library / home index** — free / one message, as the baseline;
2. **rule routing** — the home super-peer consults mined
   ``{category} -> {super-peer}`` rules (its own
   :class:`~repro.routing.superpeer_rules.SuperPeerRules` table plus
   the :class:`~repro.network.hier.digest.MergedRuleTable` of its
   neighbors' digests) and contacts the top-k candidate communities
   directly, one message each;
3. **keyspace directory** (``hybrid`` mode) — a Kademlia-style greedy
   walk over k-buckets to the steward of the category's key, which
   returns the super-peers registered as owning content in that
   category;
4. **tier-2 flood** — the baseline's TTL-limited BFS, charged *on top
   of* the failed attempts (the paper's honest per-query fallback
   accounting), so success never drops below the flooding baseline.

Four modes share one workload generator and identical rng consumption
with :class:`~repro.network.superpeer.SuperPeerNetwork`, so at equal
seeds every arm sees the same (leaf, file) query sequence pair for
pair — the property the comparison experiment leans on:

* ``flood`` — the ladder stops at step 1 (bit-identical to the seed
  baseline while no super-peer has been killed);
* ``leaf-rules`` — step 2 uses a per-leaf table (one node's evidence,
  the paper's flat design transplanted onto the tier);
* ``superpeer-rules`` — step 2 uses the community table (~20–50
  leaves' evidence) plus merged neighbor digests;
* ``hybrid`` — ``superpeer-rules`` plus step 3.

Failure handling: :meth:`kill_superpeer` drops the dead node from the
overlay, every k-bucket table, and every merged digest table (digest
invalidation), then deterministically re-attaches its leaves
(:class:`~repro.network.hier.community.CommunityIndex`) and republishes
the category directory.  Digest and directory traffic is tracked in
:attr:`HierNetwork.control_messages` so benchmarks can amortize it
into an honest messages-per-query figure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.metrics.traffic import QueryOutcome, TrafficStats
from repro.network.hier.community import CommunityIndex
from repro.network.hier.digest import MergedRuleTable, decode_digest
from repro.network.hier.keyspace import (
    KBucketTable,
    category_key,
    node_key,
    xor_distance,
)
from repro.network.superpeer import SuperPeerConfig
from repro.network.topology import random_regular
from repro.routing.superpeer_rules import SuperPeerRules
from repro.utils.rng import as_generator, spawn_child
from repro.workload.content import ContentCatalog
from repro.workload.interests import InterestModel
from repro.workload.zipf import ZipfSampler

__all__ = ["HIER_MODES", "HierConfig", "HierNetwork"]

HIER_MODES = ("flood", "leaf-rules", "superpeer-rules", "hybrid")


@dataclass(frozen=True)
class HierConfig(SuperPeerConfig):
    """Baseline substrate parameters plus the rule/keyspace tier knobs."""

    #: one of :data:`HIER_MODES`.
    mode: str = "superpeer-rules"
    #: communities contacted per rule-routed attempt.
    rule_top_k: int = 3
    #: support floor below which a mined pair is not a rule.
    min_support_count: int = 2
    #: lossy-counting error bound of the per-super-peer sketch.
    epsilon: float = 0.005
    #: a super-peer publishes a digest every this many tier-2 queries it
    #: handles as home.  Tier-2 traffic per super-peer is sparse (most
    #: queries resolve at the leaf or the home index), so the cadence is
    #: dense; digests are tiny next to one avoided flood.
    digest_every: int = 5
    #: rules per category carried in a published digest.
    digest_top_k: int = 3
    #: k-bucket capacity of the keyspace router (hybrid mode).
    kbucket_k: int = 20
    #: directory owners contacted per keyspace lookup (hybrid mode).
    lookup_contacts: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in HIER_MODES:
            raise ValueError(f"mode must be one of {HIER_MODES}, got {self.mode!r}")
        if self.rule_top_k < 1:
            raise ValueError("rule_top_k must be >= 1")
        if self.digest_every < 1:
            raise ValueError("digest_every must be >= 1")
        if self.digest_top_k < 1:
            raise ValueError("digest_top_k must be >= 1")
        if self.lookup_contacts < 1:
            raise ValueError("lookup_contacts must be >= 1")


class HierNetwork:
    """Two-tier overlay with mined-rule and keyspace routing tiers."""

    def __init__(self, config: HierConfig | None = None, *, seed=None) -> None:
        self.config = cfg = config or HierConfig()
        # Substrate construction consumes the rng in exactly the order
        # SuperPeerNetwork does (topology child, then per-leaf profile +
        # library draws), so equal seeds give every mode — and the seed
        # baseline itself — the same world.
        self._rng = as_generator(seed)
        self.topology = random_regular(
            cfg.n_superpeers, cfg.superpeer_degree, rng=spawn_child(self._rng)
        )
        self.catalog = ContentCatalog(cfg.n_categories, cfg.files_per_category)
        interests = InterestModel(cfg.n_categories)
        self.community = CommunityIndex(cfg.n_superpeers)
        self._leaf_profile = []
        self._leaf_library: list[frozenset[int]] = []
        for leaf in range(cfg.n_leaves):
            superpeer = leaf // cfg.leaves_per_superpeer
            profile = interests.sample_profile(
                self._rng, width=cfg.interests_per_peer
            )
            library = self.catalog.sample_library(
                self._rng, profile, size=cfg.library_size
            )
            self._leaf_profile.append(profile)
            self._leaf_library.append(library)
            self.community.attach(leaf, superpeer, library)

        #: digest/directory/re-attachment messages, tracked separately so
        #: benchmarks can amortize them into messages-per-query honestly.
        self.control_messages = 0
        self._next_guid = 0
        self._sp_query_count = [0] * cfg.n_superpeers

        self.sp_rules: list[SuperPeerRules] = []
        self.leaf_rules: list[SuperPeerRules] = []
        self.merged: list[MergedRuleTable] = []
        if cfg.mode in ("superpeer-rules", "hybrid"):
            self.sp_rules = [
                self._make_rules(sp) for sp in range(cfg.n_superpeers)
            ]
            self.merged = [MergedRuleTable() for _ in range(cfg.n_superpeers)]
        elif cfg.mode == "leaf-rules":
            self.leaf_rules = [self._make_rules(leaf) for leaf in range(cfg.n_leaves)]

        self._node_key = [node_key(sp) for sp in range(cfg.n_superpeers)]
        self._cat_key = [category_key(c) for c in range(cfg.n_categories)]
        self.kbuckets: list[KBucketTable] = []
        # steward super-peer -> category -> owner super-peers (ascending).
        self.directory: dict[int, dict[int, list[int]]] = {}
        if cfg.mode == "hybrid":
            self.kbuckets = [
                KBucketTable(sp, k=cfg.kbucket_k) for sp in range(cfg.n_superpeers)
            ]
            for table in self.kbuckets:
                for peer in range(cfg.n_superpeers):
                    table.insert(peer)
            self._build_directory()

    def _make_rules(self, owner: int) -> SuperPeerRules:
        cfg = self.config
        return SuperPeerRules(
            owner,
            epsilon=cfg.epsilon,
            top_k=cfg.rule_top_k,
            min_support_count=cfg.min_support_count,
        )

    # -- keyspace tier ------------------------------------------------------
    def _kademlia_walk(self, start: int, key: int) -> tuple[int, int]:
        """Greedy XOR walk from ``start`` toward ``key``: (steward, hops)."""
        current = start
        hops = 0
        distance = xor_distance(self._node_key[current], key)
        while True:
            nxt = self.kbuckets[current].closer_than(key, distance)
            if nxt is None:
                return current, hops
            current = nxt
            distance = xor_distance(self._node_key[current], key)
            hops += 1

    def _build_directory(self) -> None:
        """(Re)publish every live community's categories to their stewards."""
        self.directory = {}
        messages = 0
        for sp in self.community.live_superpeers():
            categories = sorted(
                {
                    file_id // self.config.files_per_category
                    for leaf in self.community.members(sp)
                    for file_id in self._leaf_library[leaf]
                }
            )
            for category in categories:
                steward, hops = self._kademlia_walk(sp, self._cat_key[category])
                messages += hops
                self.directory.setdefault(steward, {}).setdefault(
                    category, []
                ).append(sp)
        self.control_messages += messages

    # -- rule tier -----------------------------------------------------------
    def _rule_targets(self, leaf: int, home: int, category: int) -> list[int]:
        cfg = self.config
        if cfg.mode == "leaf-rules":
            ranked = self.leaf_rules[leaf].consequents(category)
        else:
            ranked = self.sp_rules[home].consequents(category)
            for extra in self.merged[home].consequents(category, cfg.rule_top_k):
                if extra not in ranked:
                    ranked.append(extra)
        live = [
            sp for sp in ranked if sp != home and self.community.is_live(sp)
        ]
        return live[: cfg.rule_top_k]

    def _learn(self, leaf: int, home: int, category: int, replier: int) -> None:
        if replier == home:
            return
        mode = self.config.mode
        if mode == "leaf-rules":
            self.leaf_rules[leaf].observe(category, replier)
        elif mode in ("superpeer-rules", "hybrid"):
            self.sp_rules[home].observe(category, replier)

    def _publish_digest(self, home: int) -> None:
        """Push ``home``'s fresh digest to its live overlay neighbors.

        Goes over the wire codec (encode/decode round-trip) so the
        exchange path exercises exactly what a deployment would ship.
        """
        wire = self.sp_rules[home].publish(self.config.digest_top_k).encode()
        for neighbor in self.topology.neighbors(home):
            if not self.community.is_live(neighbor):
                continue
            self.control_messages += 1
            self.merged[neighbor].merge(decode_digest(wire))

    # -- query path ---------------------------------------------------------
    def query(self, leaf: int, file_id: int) -> QueryOutcome:
        """One leaf query through the attempt ladder."""
        cfg = self.config
        self._next_guid += 1
        guid = self._next_guid
        if file_id in self._leaf_library[leaf]:
            return QueryOutcome(guid, 0, 1, 0, 0)
        home = self.community.superpeer_of(leaf)
        messages = 1  # leaf -> home super-peer
        local = self.community.lookup(home, file_id)
        if local:
            return QueryOutcome(guid, messages, len(local), 1, 0)
        category = file_id // cfg.files_per_category
        rule_covered = False
        contacted: set[int] = set()

        if cfg.mode != "flood":
            targets = self._rule_targets(leaf, home, category)
            if targets:
                rule_covered = True
                hits = 0
                for target in targets:
                    messages += 1
                    contacted.add(target)
                    matches = self.community.lookup(target, file_id)
                    if matches:
                        hits += len(matches)
                        self._learn(leaf, home, category, target)
                if hits:
                    self._after_query(home)
                    return QueryOutcome(
                        guid, messages, hits, 2, 0,
                        rule_covered=True, rule_succeeded=True,
                    )

        if cfg.mode == "hybrid":
            steward, hops = self._kademlia_walk(home, self._cat_key[category])
            messages += hops
            owners = [
                sp
                for sp in self.directory.get(steward, {}).get(category, [])
                if sp != home and sp not in contacted
            ]
            hits = 0
            first_hit_hops = None
            for owner in owners[: cfg.lookup_contacts]:
                messages += 1
                contacted.add(owner)
                matches = self.community.lookup(owner, file_id)
                if matches:
                    hits += len(matches)
                    if first_hit_hops is None:
                        first_hit_hops = hops + 2  # leaf->home, walk, contact
                    self._learn(leaf, home, category, owner)
            if hits:
                self._after_query(home)
                return QueryOutcome(
                    guid, messages, hits, first_hit_hops, 0,
                    rule_covered=rule_covered,
                )

        flood_messages, hits, first_hit_hops, duplicates = self._flood(
            leaf, home, file_id, category
        )
        self._after_query(home)
        return QueryOutcome(
            guid,
            messages + flood_messages,
            hits,
            first_hit_hops,
            duplicates,
            rule_covered=rule_covered,
        )

    def _flood(
        self, leaf: int, home: int, file_id: int, category: int
    ) -> tuple[int, int, int | None, int]:
        """Tier-2 BFS among live super-peers (the baseline's fallback)."""
        cfg = self.config
        parent: dict[int, int | None] = {home: None}
        depth = {home: 0}
        messages = 0
        hits = 0
        first_hit_hops = None
        duplicates = 0
        learn = cfg.mode != "flood"
        frontier = deque([home])
        while frontier:
            sp = frontier.popleft()
            if depth[sp] >= cfg.superpeer_ttl:
                continue
            for neighbor in self.topology.neighbors(sp):
                if neighbor == parent[sp] or not self.community.is_live(neighbor):
                    continue
                messages += 1
                if neighbor in parent:
                    duplicates += 1
                    continue
                parent[neighbor] = sp
                depth[neighbor] = depth[sp] + 1
                matches = self.community.lookup(neighbor, file_id)
                if matches:
                    hits += len(matches)
                    if first_hit_hops is None:
                        # +1 for the original leaf -> super-peer hop.
                        first_hit_hops = depth[neighbor] + 1
                    if learn:
                        self._learn(leaf, home, category, neighbor)
                frontier.append(neighbor)
        return messages, hits, first_hit_hops, duplicates

    def _after_query(self, home: int) -> None:
        if not self.sp_rules:
            return
        self._sp_query_count[home] += 1
        if self._sp_query_count[home] % self.config.digest_every == 0:
            self._publish_digest(home)

    # -- workload -------------------------------------------------------------
    def run_workload(self, n_queries: int, *, warmup: int = 0) -> TrafficStats:
        """Issue interest-driven queries; the first ``warmup`` are unrecorded.

        Draw-for-draw identical to ``SuperPeerNetwork.run_workload`` at
        equal seeds (leaf uniform, category from the leaf's profile,
        Zipf file rank), so arms differ only in routing.
        """
        if n_queries < 0:
            raise ValueError("n_queries must be non-negative")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        cfg = self.config
        stats = TrafficStats()
        rank_sampler = ZipfSampler(cfg.files_per_category, 1.0)
        for i in range(warmup + n_queries):
            leaf = int(self._rng.integers(0, cfg.n_leaves))
            category = self._leaf_profile[leaf].sample_category(self._rng)
            rank = rank_sampler.sample(self._rng)
            file_id = category * cfg.files_per_category + rank
            outcome = self.query(leaf, file_id)
            if i >= warmup:
                stats.record(outcome)
        return stats

    # -- churn ---------------------------------------------------------------
    def kill_superpeer(self, superpeer: int) -> dict[int, int]:
        """Fail one super-peer; returns the orphan re-attachment map.

        The dead node leaves the overlay, every k-bucket table, and —
        digest invalidation — every merged rule table; its leaves
        re-home deterministically and their libraries are re-indexed,
        then the category directory is republished.
        """
        if not self.community.is_live(superpeer):
            return {}
        orphans = self.community.kill(superpeer)
        for other in self.community.live_superpeers():
            if self.merged:
                self.merged[other].invalidate(superpeer)
            if self.kbuckets:
                self.kbuckets[other].remove(superpeer)
        placement = self.community.reattach(orphans)
        self.control_messages += len(orphans)  # re-attachment handshakes
        if self.config.mode == "hybrid":
            self._build_directory()
        return placement

    # -- introspection (tests) -------------------------------------------
    def superpeer_of(self, leaf: int) -> int:
        return self.community.superpeer_of(leaf)

    def index_size(self, superpeer: int) -> int:
        return self.community.index_size(superpeer)
