"""Cluster-wide trace collection and live routing-quality rollups.

The process-per-node cluster (:mod:`repro.scale`) scatters one query's
story across many tracers: each worker's :class:`~repro.obs.tracing.
QueryTracer` only sees the hops its own servent took.  This module is
the read side that puts the story back together, in the idiom of
:mod:`repro.obs.scrape`: poll every node's ``/trace`` (JSON-lines spans)
and ``/metrics`` (Prometheus text) endpoints over plain HTTP, merge
spans by GUID — the GUID *is* the trace id, so concatenating per-node
span streams and sorting by wall-clock timestamp reconstructs the
cluster-wide query tree — and fold the counters into the paper's
quality measures, read live:

* **α (coverage)** — rule-routed decisions over all routing decisions;
* **ρ (success)**  — queries answered over queries issued;
* **traffic per query** — outbound frames per issued query.

:class:`ClusterTraceCollector` keeps both the cumulative measures (the
servents' own counters, aggregated) and *rolling windows*: each poll's
counter deltas become one window, mirroring the paper's per-block
measurement on live traffic.  :func:`format_trace_tree` renders one
merged trace as a hop tree with per-edge routing explanations (matched
rule, confidence, support, or the flood fallback reason) and
:func:`format_cluster_rollup` renders the per-node / cluster / rolling
quality table the ``trace-view`` CLI prints.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Iterable, Sequence

from repro.obs.scrape import (
    histogram_quantile,
    merge_histograms,
    parse_histograms,
    parse_samples,
    scrape_text,
)
from repro.obs.tracing import QueryTrace, TraceEvent

__all__ = [
    "ClusterTraceCollector",
    "format_cluster_rollup",
    "format_trace_tree",
    "merge_spans",
    "parse_spans",
    "quality_measures",
]

# Metric names the quality measures are derived from (see
# repro.obs.instruments.NodeInstruments for the write side).
_DECISIONS = "repro_routing_decisions_total"
_ISSUED = "repro_queries_issued_total"
_HITS = "repro_hits_received_total"
_FRAMES = "repro_frames_total"

_ZERO = {"rule": 0.0, "flood": 0.0, "issued": 0.0, "hits": 0.0, "frames_out": 0.0}


def parse_spans(text: str) -> list[dict]:
    """Parse one ``/trace`` JSON-lines payload into event dicts."""
    docs = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            docs.append(json.loads(line))
    return docs


def merge_spans(event_docs: Iterable[dict]) -> dict[int, QueryTrace]:
    """Merge span dicts from many nodes into per-GUID query traces.

    Events are grouped by GUID and ordered by wall-clock timestamp (the
    tracers' shared ``time.time`` base is what makes cross-process
    ordering meaningful); the sort is stable, so events a single node
    recorded in the same clock tick keep their recorded order.
    """
    by_guid: dict[int, list[TraceEvent]] = {}
    for doc in event_docs:
        by_guid.setdefault(int(doc["guid"]), []).append(
            TraceEvent.from_dict(doc)
        )
    traces: dict[int, QueryTrace] = {}
    for guid, events in by_guid.items():
        events.sort(key=lambda e: e.ts)
        traces[guid] = QueryTrace(guid, events)
    return traces


def _quality_counters(
    samples: Sequence[tuple[str, dict, float]],
) -> dict[str, float]:
    """Fold one node's samples into the counters the measures need."""
    counters = dict(_ZERO)
    for name, labels, value in samples:
        if name == _DECISIONS:
            decision = labels.get("decision")
            if decision in counters:
                counters[decision] += value
        elif name == _ISSUED:
            counters["issued"] += value
        elif name == _HITS:
            counters["hits"] += value
        elif name == _FRAMES and labels.get("direction") == "out":
            counters["frames_out"] += value
    return counters


def quality_measures(counters: dict[str, float]) -> dict[str, float]:
    """The paper's α/ρ plus traffic-per-query, from raw counters."""
    decisions = counters["rule"] + counters["flood"]
    issued = counters["issued"]
    return {
        "alpha": counters["rule"] / decisions if decisions else 0.0,
        "rho": counters["hits"] / issued if issued else 0.0,
        "traffic_per_query": counters["frames_out"] / issued if issued else 0.0,
    }


class ClusterTraceCollector:
    """Poll every node's ``/trace`` + ``/metrics``; merge spans and measures.

    ``endpoints`` is a sequence of ``(label, base_url)`` pairs (label is
    typically the node id).  Each :meth:`poll` re-fetches every node,
    folds new spans into :attr:`traces`, refreshes the per-node and
    cluster counters, merges latency histograms across nodes, and —
    from the second poll on — appends one rolling window of counter
    deltas.  A node that cannot be reached is skipped for that poll
    (dead workers must not hang a sweep), tallied in ``errors``.
    """

    def __init__(
        self,
        endpoints: Sequence[tuple[object, str]],
        *,
        timeout: float = 5.0,
        max_windows: int = 64,
        fetch: Callable[[str], str] | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.endpoints = [(label, base.rstrip("/")) for label, base in endpoints]
        self._fetch = fetch or (lambda url: scrape_text(url, timeout=timeout))
        self._clock = clock
        self.traces: dict[int, QueryTrace] = {}
        self.per_node: dict[object, dict[str, float]] = {}
        self.cluster: dict[str, float] = dict(_ZERO)
        self.histograms: dict[str, dict] = {}
        self.windows: deque[dict] = deque(maxlen=max_windows)
        self.errors = 0
        self._last: tuple[float, dict[str, float]] | None = None

    def poll(self) -> dict:
        """One collection sweep; returns a small summary dict."""
        spans: list[dict] = []
        per_node: dict[object, dict[str, float]] = {}
        histograms: list[dict[str, dict]] = []
        for label, base in self.endpoints:
            try:
                spans.extend(parse_spans(self._fetch(base + "/trace")))
            except (OSError, ValueError):
                self.errors += 1
            try:
                metrics_text = self._fetch(base + "/metrics")
            except (OSError, ValueError):
                self.errors += 1
                continue
            per_node[label] = _quality_counters(parse_samples(metrics_text))
            histograms.append(parse_histograms(metrics_text))
        self.traces.update(merge_spans(spans))
        self.per_node = per_node
        self.histograms = merge_histograms(*histograms)
        cluster = dict(_ZERO)
        for counters in per_node.values():
            for key, value in counters.items():
                cluster[key] += value
        now = self._clock()
        window = None
        if self._last is not None:
            prev_ts, prev = self._last
            deltas = {key: cluster[key] - prev[key] for key in cluster}
            window = {"seconds": now - prev_ts, **deltas}
            window.update(quality_measures(deltas))
            self.windows.append(window)
        self._last = (now, cluster)
        self.cluster = cluster
        return {
            "nodes": len(per_node),
            "traces": len(self.traces),
            "window": window,
        }

    # -- reads -------------------------------------------------------------
    def live_quality(self) -> dict[str, float]:
        """Cumulative α/ρ/traffic-per-query from the latest poll."""
        return quality_measures(self.cluster)

    def answered_guids(self) -> list[int]:
        return [guid for guid, t in self.traces.items() if t.answered]

    def best_guid(self) -> int | None:
        """The most interesting trace: latest answered, else latest seen."""
        answered = self.answered_guids()
        pool = answered or list(self.traces)
        if not pool:
            return None
        return max(pool, key=lambda guid: self.traces[guid].last_event)


def _edge_label(event: TraceEvent) -> str:
    if event.kind == "rule_routed":
        label = f"rule {event.antecedent}=>{event.consequent}"
        if event.confidence is not None:
            label += f" conf={event.confidence:.2f} sup={event.support}"
        return label
    label = "flood"
    if event.reason:
        label += f" {event.reason}"
    return label


def _node_summary(events: list[TraceEvent], t0: float) -> str:
    parts = []
    for event in events:
        if event.kind in ("rule_routed", "flooded"):
            continue
        desc = event.kind
        if event.kind == "issued" and event.info:
            desc = f"issued[{event.info}]"
        if event.kind == "hit" and event.info:
            desc = f"hit[{event.info}]"
        if event.ttl is not None and event.kind in ("issued", "received"):
            desc += f" ttl={event.ttl}"
        desc += f" +{(event.ts - t0) * 1000:.1f}ms"
        parts.append(desc)
    return ", ".join(parts)


def format_trace_tree(trace: QueryTrace) -> str:
    """Render one merged cross-node trace as a forwarding tree.

    Nodes are tree entries; each branch is one forwarding decision,
    labelled with its explanation (the matched rule with live
    confidence/support, or the flood fallback reason).  Edge targets
    with no events of their own — typically load-generator clients the
    query was flooded at — render as bare leaves.  Repeat arrivals over
    a second path are marked ``(dup)`` instead of being expanded twice.
    """
    if not trace.events:
        return f"query {trace.guid:#x}: no events"
    t0 = trace.started
    by_node: dict[int, list[TraceEvent]] = {}
    forwards: dict[int, list[TraceEvent]] = {}
    for event in trace.events:
        by_node.setdefault(event.node, []).append(event)
        if event.kind in ("rule_routed", "flooded") and event.peer is not None:
            forwards.setdefault(event.node, []).append(event)
    origin = trace.events[0].node
    outcome = "answered" if trace.answered else "unanswered"
    duration = (trace.last_event - t0) * 1000
    lines = [
        f"query {trace.guid:#x} — {outcome}, {trace.hops} nodes, "
        f"{len(trace.events)} events, {duration:.1f}ms"
    ]
    visited: set[int] = set()

    def walk(node: int, prefix: str, is_last: bool, edge: TraceEvent | None):
        connector = "" if edge is None else ("└─" if is_last else "├─")
        label = "" if edge is None else f"[{_edge_label(edge)}]→ "
        expanded = node not in visited
        visited.add(node)
        summary = _node_summary(by_node.get(node, []), t0)
        if node not in by_node:
            summary = "(no events)"
        elif not expanded:
            summary = "(dup)"
        lines.append(f"{prefix}{connector}{label}node {node} — {summary}")
        if not expanded:
            return
        children = sorted(forwards.get(node, []), key=lambda e: (e.ts, e.peer))
        extend = "" if edge is None else ("   " if is_last else "│  ")
        for i, child_edge in enumerate(children):
            walk(
                child_edge.peer,
                prefix + extend,
                i == len(children) - 1,
                child_edge,
            )

    walk(origin, "", True, None)
    return "\n".join(lines)


def format_cluster_rollup(collector: ClusterTraceCollector) -> str:
    """The per-node / cluster / rolling-window quality table (markdown)."""
    header = (
        "| node | alpha | rho | issued | hits | rule | flood |"
        " frames_out | traffic/query |"
    )
    rule = "|---|---|---|---|---|---|---|---|---|"

    def row(label, counters) -> str:
        m = quality_measures(counters)
        return (
            f"| {label} | {m['alpha']:.3f} | {m['rho']:.3f} |"
            f" {counters['issued']:.0f} | {counters['hits']:.0f} |"
            f" {counters['rule']:.0f} | {counters['flood']:.0f} |"
            f" {counters['frames_out']:.0f} | {m['traffic_per_query']:.2f} |"
        )

    lines = ["## Cluster routing quality", "", header, rule]
    for label in sorted(collector.per_node, key=str):
        lines.append(row(label, collector.per_node[label]))
    lines.append(row("**cluster**", collector.cluster))
    if collector.windows:
        lines += [
            "",
            "### Rolling windows (per-poll deltas)",
            "",
            "| window | seconds | alpha | rho | d_issued | d_hits |"
            " traffic/query |",
            "|---|---|---|---|---|---|---|",
        ]
        for i, w in enumerate(collector.windows):
            lines.append(
                f"| {i} | {w['seconds']:.1f} | {w['alpha']:.3f} |"
                f" {w['rho']:.3f} | {w['issued']:.0f} | {w['hits']:.0f} |"
                f" {w['traffic_per_query']:.2f} |"
            )
    if collector.histograms:
        lines += ["", "### Merged latency distributions", ""]
        for name in sorted(collector.histograms):
            hist = collector.histograms[name]
            if hist["count"] <= 0:
                continue
            p50 = histogram_quantile(hist, 0.50)
            p99 = histogram_quantile(hist, 0.99)
            lines.append(
                f"- `{name}`: count={hist['count']:.0f}"
                f" p50<={p50:g} p99<={p99:g}"
            )
    return "\n".join(lines) + "\n"
