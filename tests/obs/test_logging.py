"""Tests for structured logging, ambient identity and rate limiting."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    RateLimiter,
    bind_node,
    bind_peer,
    configure_logging,
    get_logger,
    node_id_var,
)


@pytest.fixture(autouse=True)
def _restore_logging():
    yield
    configure_logging(level="warning")


def _capture(level="info", json_lines=False):
    stream = io.StringIO()
    configure_logging(level=level, json_lines=json_lines, stream=stream)
    return stream


class TestConfigureLogging:
    def test_level_filters(self):
        stream = _capture(level="warning")
        log = get_logger("t")
        log.info("quiet")
        log.warning("loud")
        out = stream.getvalue()
        assert "quiet" not in out
        assert "loud" in out

    def test_repeated_calls_do_not_stack_handlers(self):
        stream = _capture()
        configure_logging(level="info", stream=stream)
        configure_logging(level="info", stream=stream)
        get_logger("t").info("once")
        assert stream.getvalue().count("once") == 1

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_does_not_propagate_to_root(self):
        root_stream = io.StringIO()
        root_handler = logging.StreamHandler(root_stream)
        logging.getLogger().addHandler(root_handler)
        try:
            _capture()
            get_logger("t").warning("contained")
            assert "contained" not in root_stream.getvalue()
        finally:
            logging.getLogger().removeHandler(root_handler)


class TestGetLogger:
    def test_namespaced_under_repro(self):
        assert get_logger("live.node").name == "repro.live.node"
        assert get_logger("repro.cli").name == "repro.cli"


class TestJsonFormatter:
    def _record(self, log, stream):
        line = stream.getvalue().strip().splitlines()[-1]
        return json.loads(line)

    def test_renders_core_fields_and_extras(self):
        stream = _capture(json_lines=True)
        get_logger("t").warning("boom", extra={"peer": 3, "reason": "x"})
        doc = self._record(None, stream)
        assert doc["level"] == "warning"
        assert doc["logger"] == "repro.t"
        assert doc["msg"] == "boom"
        assert doc["peer"] == 3
        assert doc["reason"] == "x"
        assert isinstance(doc["ts"], float)

    def test_ambient_node_and_peer_ids(self):
        stream = _capture(json_lines=True)
        with bind_node(7), bind_peer(2):
            get_logger("t").warning("hello")
        doc = self._record(None, stream)
        assert doc["node"] == 7
        assert doc["peer"] == 2

    def test_no_identity_outside_binding(self):
        stream = _capture(json_lines=True)
        get_logger("t").warning("bare")
        doc = self._record(None, stream)
        assert "node" not in doc
        assert "peer" not in doc

    def test_exception_included(self):
        stream = _capture(json_lines=True)
        try:
            raise RuntimeError("nope")
        except RuntimeError:
            get_logger("t").exception("failed")
        doc = self._record(None, stream)
        assert "RuntimeError: nope" in doc["exc"]

    def test_unserialisable_extra_falls_back_to_repr(self):
        stream = _capture(json_lines=True)
        get_logger("t").warning("obj", extra={"thing": object()})
        doc = self._record(None, stream)
        assert "object object" in doc["thing"]


class TestPlainFormatter:
    def test_identity_and_fields_inline(self):
        stream = _capture()
        with bind_node(4):
            get_logger("t").warning("dial failed", extra={"target": "x:1"})
        line = stream.getvalue()
        assert "node=4" in line
        assert "dial failed" in line
        assert "target=x:1" in line


class TestBindNode:
    def test_nesting_restores_previous_value(self):
        assert node_id_var.get() is None
        with bind_node(1):
            with bind_node(2):
                assert node_id_var.get() == 2
            assert node_id_var.get() == 1
        assert node_id_var.get() is None


class TestRateLimiter:
    def test_first_call_allowed_with_zero_suppressed(self):
        limiter = RateLimiter(5.0, clock=lambda: 0.0)
        assert limiter.allow("k") == 0

    def test_within_interval_suppressed_then_counted(self):
        now = [0.0]
        limiter = RateLimiter(5.0, clock=lambda: now[0])
        assert limiter.allow("k") == 0
        assert limiter.allow("k") is None
        assert limiter.allow("k") is None
        now[0] = 6.0
        assert limiter.allow("k") == 2

    def test_keys_are_independent(self):
        limiter = RateLimiter(5.0, clock=lambda: 0.0)
        assert limiter.allow("a") == 0
        assert limiter.allow("b") == 0

    def test_eviction_bounds_key_table(self):
        now = [0.0]
        limiter = RateLimiter(5.0, max_keys=2, clock=lambda: now[0])
        limiter.allow("a")
        now[0] = 1.0
        limiter.allow("b")
        now[0] = 2.0
        limiter.allow("c")  # evicts "a", the oldest
        assert len(limiter._last) == 2
        assert "a" not in limiter._last

    def test_zero_interval_always_allows(self):
        limiter = RateLimiter(0.0, clock=lambda: 0.0)
        assert limiter.allow("k") == 0
        assert limiter.allow("k") == 0

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            RateLimiter(-1.0)
