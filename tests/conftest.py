"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.blocks import PairBlock


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_block():
    """A hand-checkable block: sources 1/2, repliers 10/11/12.

    Pair counts: (1,10) x4, (1,11) x2, (2,12) x3, (2,10) x1.
    """
    sources = np.array([1, 1, 1, 1, 1, 1, 2, 2, 2, 2], dtype=np.int64)
    repliers = np.array([10, 10, 10, 10, 11, 11, 12, 12, 12, 10], dtype=np.int64)
    return PairBlock(sources=sources, repliers=repliers, index=0)


def make_block(pairs, index=0) -> PairBlock:
    """Build a PairBlock from a list of (source, replier) tuples."""
    if pairs:
        sources, repliers = zip(*pairs)
    else:
        sources, repliers = (), ()
    return PairBlock(
        sources=np.asarray(sources, dtype=np.int64),
        repliers=np.asarray(repliers, dtype=np.int64),
        index=index,
    )


@pytest.fixture
def block_factory():
    return make_block
