"""Kademlia-style XOR keyspace over super-peers and category keys.

The hybrid lookup tier needs a way to locate *which community* likely
owns content for a query category without flooding the super-peer
overlay.  Kademlia's trick (Maymounkov & Mazières) is to give every
node and every lookup key an identifier in the same space, define
distance as XOR, and have each node keep a routing table of peers
bucketed by distance prefix — greedy forwarding then converges in
O(log n) hops because every hop at least halves the distance.

We reuse exactly that machinery at the super-peer tier:

* :func:`node_key` / :func:`category_key` — 64-bit blake2b identifiers
  for super-peers and query categories (deterministic: no coordination
  or seeding required, every node derives the same keys);
* :func:`xor_distance` — the metric;
* :class:`KBucketTable` — one super-peer's routing table: up to ``k``
  entries per distance bucket (bucket ``i`` holds peers whose distance
  has bit length ``i + 1``), insertion-ordered, with the lookup
  primitives greedy routing needs.

The tier is simulated, so there is no UDP RPC layer — but the routing
*state* (what each node knows) and the hop-by-hop lookup procedure
mirror the real protocol, and every hop is charged one message by the
caller.
"""

from __future__ import annotations

import hashlib

__all__ = ["KEY_BITS", "KBucketTable", "category_key", "node_key", "xor_distance"]

#: width of the keyspace; 64 bits is plenty for simulated populations
#: (collision probability over 10^4 nodes is ~1e-12) and keeps keys as
#: cheap Python ints.
KEY_BITS = 64


def _key(kind: bytes, value: int) -> int:
    digest = hashlib.blake2b(
        kind + int(value).to_bytes(8, "little"), digest_size=KEY_BITS // 8
    ).digest()
    return int.from_bytes(digest, "little")


def node_key(superpeer_id: int) -> int:
    """Keyspace identifier of one super-peer."""
    return _key(b"node:", superpeer_id)


def category_key(category: int) -> int:
    """Keyspace identifier of one query category (the lookup target)."""
    return _key(b"cat:", category)


def xor_distance(a: int, b: int) -> int:
    """Kademlia's XOR metric (symmetric, unidirectional)."""
    return a ^ b


class KBucketTable:
    """One super-peer's k-bucket routing table.

    Bucket ``i`` holds peers whose XOR distance from the owner has bit
    length ``i + 1`` — i.e. peers sharing exactly ``KEY_BITS - i - 1``
    leading bits with the owner.  Each bucket keeps at most ``k``
    entries in insertion order (the classic least-recently-joined
    policy, minus the liveness pings a simulation does not need).

    Nearby buckets are almost always *complete* (few nodes share a long
    prefix), which is what makes greedy lookups converge on the same
    terminal node from any starting point — the property the category
    directory relies on (publishers and readers must agree on a key's
    steward).
    """

    def __init__(self, owner_id: int, *, k: int = 20) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.owner_id = int(owner_id)
        self.owner_key = node_key(owner_id)
        self.k = int(k)
        # bucket index -> list of (peer_id, peer_key), insertion order.
        self._buckets: dict[int, list[tuple[int, int]]] = {}
        self._known: dict[int, int] = {}  # peer_id -> key

    # -- maintenance --------------------------------------------------------
    def _bucket_index(self, key: int) -> int:
        distance = xor_distance(self.owner_key, key)
        if distance == 0:
            raise ValueError("cannot bucket the owner's own key")
        return distance.bit_length() - 1

    def insert(self, peer_id: int) -> bool:
        """Learn one peer; returns False when its bucket is full."""
        peer_id = int(peer_id)
        if peer_id == self.owner_id or peer_id in self._known:
            return peer_id in self._known
        key = node_key(peer_id)
        bucket = self._buckets.setdefault(self._bucket_index(key), [])
        if len(bucket) >= self.k:
            return False
        bucket.append((peer_id, key))
        self._known[peer_id] = key
        return True

    def remove(self, peer_id: int) -> None:
        """Evict a peer (it crashed or was partitioned away)."""
        key = self._known.pop(peer_id, None)
        if key is None:
            return
        index = self._bucket_index(key)
        bucket = self._buckets.get(index, [])
        self._buckets[index] = [entry for entry in bucket if entry[0] != peer_id]

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._known

    def __len__(self) -> int:
        return len(self._known)

    # -- lookup primitives ----------------------------------------------------
    def closest(self, target_key: int, n: int = 1) -> list[int]:
        """The ``n`` known peers nearest ``target_key`` (deterministic).

        Ties are impossible (XOR distance is injective in the peer key),
        so the ordering is fully determined by the table contents.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        ranked = sorted(
            self._known.items(), key=lambda pk: xor_distance(pk[1], target_key)
        )
        return [peer_id for peer_id, _key in ranked[:n]]

    def closer_than(self, target_key: int, distance: int) -> int | None:
        """Best known peer strictly closer to ``target_key``, or None.

        This is the greedy-forwarding step: a lookup hops to the
        returned peer and asks *its* table the same question, until no
        strictly-closer peer exists — the terminal node is the key's
        steward.
        """
        best_id = None
        best_distance = distance
        for peer_id, key in self._known.items():
            d = xor_distance(key, target_key)
            if d < best_distance:
                best_distance = d
                best_id = peer_id
        return best_id
