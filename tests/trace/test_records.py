"""Tests for repro.trace.records."""

import pytest

from repro.trace.records import (
    QueryRecord,
    QueryReplyPair,
    ReplyRecord,
    render_ip,
)


class TestRecords:
    def test_query_as_row(self):
        rec = QueryRecord(time=1.0, guid=42, source=7, query_string="topic001 item00002")
        assert rec.as_row() == (1.0, 42, 7, "topic001 item00002")

    def test_reply_as_row(self):
        rec = ReplyRecord(time=2.0, guid=42, replier=9, host=1000, file_name="f.dat")
        assert rec.as_row() == (2.0, 42, 9, 1000, "f.dat")

    def test_pair_as_row(self):
        pair = QueryReplyPair(
            guid=1,
            query_time=1.0,
            source=2,
            query_string="q",
            reply_time=3.0,
            replier=4,
            host=5,
        )
        assert pair.as_row() == (1, 1.0, 2, "q", 3.0, 4, 5)


class TestRenderIp:
    def test_format(self):
        ip = render_ip(0)
        parts = ip.split(".")
        assert len(parts) == 4
        assert parts[0] == "10"
        assert all(0 <= int(p) <= 255 for p in parts)

    def test_stable(self):
        assert render_ip(123) == render_ip(123)

    def test_distinct_for_small_ids(self):
        ips = {render_ip(i) for i in range(1000)}
        assert len(ips) == 1000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            render_ip(-1)
