"""Bounded Zipf sampling.

P2P query popularity is famously Zipf-like; both the interest model and the
content catalog draw ranks from a bounded Zipf distribution.  numpy's
``Generator.zipf`` is unbounded, so we precompute the normalized CDF over a
finite rank range and sample by inverse transform — vectorized, per the
HPC guides' "vectorize the hot loop" idiom.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_non_negative

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Sample ranks ``0..n-1`` with P(rank k) ∝ 1 / (k+1)**exponent."""

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = int(n)
        self.exponent = check_non_negative("exponent", exponent)
        weights = 1.0 / np.power(np.arange(1, self.n + 1, dtype=float), self.exponent)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        # Guard against floating-point drift at the top end.
        self._cdf[-1] = 1.0

    @property
    def pmf(self) -> np.ndarray:
        """Probability mass function over ranks (read-only view)."""
        out = self._pmf.view()
        out.flags.writeable = False
        return out

    def sample(self, rng, size: int | None = None):
        """Draw one rank (``size=None``) or an array of ranks."""
        rng = as_generator(rng)
        u = rng.random(size)
        idx = np.searchsorted(self._cdf, u, side="right")
        if size is None:
            return int(idx)
        return idx.astype(np.int64)

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range [0, {self.n})")
        return float(self._pmf[rank])
