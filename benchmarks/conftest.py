"""Benchmark-harness plumbing.

Every bench regenerates one paper artifact through
:mod:`repro.experiments` inside a pytest-benchmark measurement, asserts
its acceptance bands, and registers its paper-vs-measured table here; the
tables are printed in the terminal summary (so they land in
``bench_output.txt`` even under output capture).
"""

from __future__ import annotations

import os

_REPORTS: list[str] = []


def register_report(text: str) -> None:
    _REPORTS.append(text)


def run_and_report(benchmark, experiment_id: str, **kwargs):
    """Run a registered experiment once under the benchmark timer."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, **kwargs), rounds=1, iterations=1
    )
    register_report(result.report())
    for key, value in result.extras.items():
        benchmark.extra_info[key] = str(value)
    assert result.all_within_band, f"out-of-band rows:\n{result.report()}"
    return result


def _bench_record(bench) -> dict:
    """One benchmark's timings as a JSON-ready row."""
    stats = bench.stats
    record = {
        "test": bench.name,
        "mean_seconds": stats.mean,
        "min_seconds": stats.min,
        "stddev_seconds": stats.stddev,
        "rounds": stats.rounds,
        "extra_info": {k: str(v) for k, v in bench.extra_info.items()},
    }
    # Benches that declare their input size get a throughput figure.
    pairs = bench.extra_info.get("pairs")
    if pairs is not None and stats.mean > 0:
        record["pairs_per_second"] = float(pairs) / stats.mean
    return record


def _emit_module_jsons(config) -> list[str]:
    """Group the session's benchmarks by module and write one
    BENCH_<module>.json apiece (bench_mining.py -> BENCH_mining.json)."""
    session = getattr(config, "_benchmarksession", None)
    if session is None or not session.benchmarks:
        return []
    from benchmarks._emit import emit_bench_json

    by_module: dict[str, list] = {}
    for bench in session.benchmarks:
        module = os.path.basename(bench.fullname.split("::")[0])
        stem = module.removesuffix(".py").removeprefix("bench_")
        by_module.setdefault(stem, []).append(bench)
    paths = []
    for stem, benches in sorted(by_module.items()):
        paths.append(
            emit_bench_json(
                stem, {"benchmarks": [_bench_record(b) for b in benches]}
            )
        )
    return paths


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for path in _emit_module_jsons(config):
        terminalreporter.write_line(f"bench json written: {path}")
    if not _REPORTS:
        return
    terminalreporter.section("paper-vs-measured reproduction tables")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
