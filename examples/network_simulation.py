#!/usr/bin/env python
"""Online overlay simulation: association routing vs every baseline.

The paper's motivation is live traffic reduction; its related-work
section surveys flooding, expanding-ring search [5], k-random walks [6],
interest-based shortcuts [7] and routing indices [10].  This script runs
the same query workload through each of them — plus association-rule
routing — on identical overlays and prints the message/quality trade-off.

Run:  python examples/network_simulation.py [n_nodes]
"""

import sys
import time

from repro.experiments.traffic import run_strategy_traffic


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    strategies = [
        "flooding",
        "expanding-ring",
        "k-random-walk",
        "shortcuts",
        "routing-indices",
        "association",
    ]

    print(f"overlay: {n_nodes} peers, random-regular degree 6, TTL 7, light churn\n")
    print(
        f"{'strategy':<16} {'msgs/query':>11} {'hit rate':>9} "
        f"{'hops':>6} {'vs flooding':>12} {'time':>7}"
    )
    print("-" * 68)
    flooding_messages = None
    for name in strategies:
        t0 = time.time()
        stats = run_strategy_traffic(name, seed=11, n_nodes=n_nodes)
        if name == "flooding":
            flooding_messages = stats.messages_per_query
        ratio = (
            f"{flooding_messages / stats.messages_per_query:>10.1f}x"
            if flooding_messages and stats.messages_per_query
            else "        1.0x"
        )
        hops = stats.mean_first_hit_hops
        print(
            f"{name:<16} {stats.messages_per_query:>11.1f} "
            f"{stats.success_rate:>9.3f} {hops:>6.2f} {ratio:>12} "
            f"{time.time() - t0:>6.1f}s"
        )

    print(
        "\nReading guide: association routing should cut flooding traffic by"
        " >1.5x at an equal hit rate (the paper's central claim); walks and"
        " routing indices are cheaper still but miss more or take longer."
    )


if __name__ == "__main__":
    main()
