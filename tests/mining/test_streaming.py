"""Tests for repro.mining.streaming (lossy counting)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.streaming import LossyCounter, StreamingPairCounter


class TestLossyCounter:
    def test_exact_for_short_streams(self):
        lc = LossyCounter(epsilon=0.01)  # bucket width 100
        lc.extend(["a", "b", "a"])
        assert lc.estimate("a") == 2
        assert lc.estimate("b") == 1
        assert lc.estimate("c") == 0

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            LossyCounter(epsilon=0.0)
        with pytest.raises(ValueError):
            LossyCounter(epsilon=1.0)

    def test_memory_stays_bounded_on_uniform_stream(self):
        lc = LossyCounter(epsilon=0.01)
        rng = np.random.default_rng(0)
        for value in rng.integers(0, 100_000, size=20_000):
            lc.push(int(value))
        # Lossy counting guarantees O(log(eps N)/eps) entries; in practice
        # far fewer for uniform data.  Assert well under the stream length.
        assert len(lc) < 5_000

    def test_heavy_hitter_survives(self):
        lc = LossyCounter(epsilon=0.01)
        rng = np.random.default_rng(1)
        for value in rng.integers(0, 1000, size=10_000):
            lc.push(int(value))
            lc.push("heavy")  # 50% of the stream
        assert "heavy" in lc.items_over(0.4)

    def test_items_over_validates_threshold(self):
        with pytest.raises(ValueError):
            LossyCounter(epsilon=0.1).items_over(1.5)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=2000),
        st.sampled_from([0.02, 0.05, 0.1]),
    )
    def test_error_bound_property(self, stream, epsilon):
        """estimate <= true count <= estimate + eps * N for tracked items,
        and any item with true count > eps * N is still tracked."""
        lc = LossyCounter(epsilon=epsilon)
        lc.extend(stream)
        true = Counter(stream)
        n = len(stream)
        for item, true_count in true.items():
            est = lc.estimate(item)
            assert est <= true_count
            if true_count > epsilon * n:
                assert est > 0, f"frequent item {item} evicted"
            if est > 0:
                assert true_count <= est + epsilon * n

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 10), min_size=10, max_size=1000))
    def test_items_over_has_no_false_negatives(self, stream):
        lc = LossyCounter(epsilon=0.05)
        lc.extend(stream)
        true = Counter(stream)
        n = len(stream)
        threshold = 0.3
        reported = lc.items_over(threshold)
        for item, count in true.items():
            if count >= threshold * n:
                assert item in reported


class TestStreamingPairCounter:
    def test_top_repliers_ordering(self):
        spc = StreamingPairCounter(epsilon=0.001)
        for _ in range(5):
            spc.push("u", "v1")
        for _ in range(3):
            spc.push("u", "v2")
        spc.push("u", "v3")
        assert [r for r, _ in spc.top_repliers("u", k=2)] == ["v1", "v2"]

    def test_top_repliers_respects_k_validation(self):
        with pytest.raises(ValueError):
            StreamingPairCounter().top_repliers("u", k=0)

    def test_pairs_over_count(self):
        spc = StreamingPairCounter(epsilon=0.001)
        for _ in range(4):
            spc.push(1, 2)
        spc.push(1, 3)
        over = spc.pairs_over_count(2)
        assert (1, 2) in over and (1, 3) not in over

    def test_estimate(self):
        spc = StreamingPairCounter(epsilon=0.001)
        spc.push("a", "b")
        assert spc.estimate("a", "b") == 1
        assert spc.estimate("a", "c") == 0

    def test_n_seen(self):
        spc = StreamingPairCounter()
        spc.push(1, 2)
        spc.push(3, 4)
        assert spc.n_seen == 2
