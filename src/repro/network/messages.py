"""Query descriptors for the overlay simulator.

The simulator is hop-synchronous, so a query is a descriptor passed
around by the engine rather than a serialized wire message; the fields
mirror a Gnutella Query: GUID, the file searched for, a TTL, and the
issuing node (used only for bookkeeping — forwarding nodes do not learn
the origin, preserving the anonymity property the paper highlights).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Query"]


@dataclass(frozen=True, slots=True)
class Query:
    """One query issued into the overlay."""

    guid: int
    origin: int
    file_id: int
    category: int
    ttl: int

    def __post_init__(self) -> None:
        if self.ttl < 1:
            raise ValueError("ttl must be >= 1")
        if self.file_id < 0 or self.category < 0:
            raise ValueError("file_id and category must be non-negative")
