"""Connection-layer behaviour: handshake, backoff, backpressure."""

import asyncio

import pytest

from repro.live.connection import (
    ConnectionConfig,
    HandshakeError,
    PeerConnection,
    accept_handshake,
    backoff_delays,
    dial_peer,
    offer_handshake,
)
from repro.live.node import LiveServent
from repro.live.stats import NodeStats


def run(coro, timeout=20.0):
    """Run an async test body under a hard timeout so a bug hangs the
    test, not the suite."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def free_port() -> int:
    """A port that was just free (and is free again once we return)."""
    server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    server.close()
    await server.wait_closed()
    return port


class TestBackoffDelays:
    def test_exponential_growth_capped(self):
        config = ConnectionConfig(
            retry_initial_delay=0.5, retry_backoff=2.0, retry_max_delay=3.0
        )
        gen = backoff_delays(config)
        delays = [next(gen) for _ in range(6)]
        assert delays == [0.5, 1.0, 2.0, 3.0, 3.0, 3.0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ConnectionConfig(send_queue_limit=0)
        with pytest.raises(ValueError):
            ConnectionConfig(retry_backoff=0.5)


class TestHandshake:
    def test_roundtrip_exchanges_node_ids(self):
        async def body():
            seen = {}

            async def on_accept(reader, writer):
                seen["peer"] = await accept_handshake(reader, writer, 7)
                writer.close()

            server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            peer = await offer_handshake(reader, writer, 3)
            writer.close()
            server.close()
            await server.wait_closed()
            assert peer == 7
            assert seen["peer"] == 3

        run(body())

    def test_garbage_greeting_rejected(self):
        async def body():
            async def on_accept(reader, writer):
                writer.write(b"HTTP/1.1 200 OK\n\n")
                await writer.drain()

            server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            with pytest.raises(HandshakeError):
                await offer_handshake(reader, writer, 3)
            writer.close()
            server.close()
            await server.wait_closed()

        run(body())

    def test_dial_peer_to_dead_port_raises(self):
        async def body():
            port = await free_port()
            config = ConnectionConfig(connect_timeout=1.0)
            with pytest.raises(OSError):
                await dial_peer("127.0.0.1", port, 0, config)

        run(body())


class TestReconnectBackoff:
    def test_supervisor_counts_failures_then_gives_up(self):
        async def body():
            port = await free_port()
            node = LiveServent(
                0,
                config=ConnectionConfig(
                    connect_timeout=0.5,
                    retry_initial_delay=0.02,
                    retry_backoff=2.0,
                    retry_max_delay=0.1,
                    max_retries=3,
                ),
            )
            await node.start()
            node.add_peer("127.0.0.1", port, peer_id=1)
            # 3 failures at ~0.02 + 0.04 backoff between them.
            for _ in range(200):
                if node.stats.dial_failures >= 3:
                    break
                await asyncio.sleep(0.01)
            assert node.stats.dial_failures == 3
            await asyncio.sleep(0.15)  # past where a 4th retry would land
            assert node.stats.dial_failures == 3  # gave up after max_retries
            assert node.stats.connects == 0
            await node.close()

        run(body())


class TestBackpressure:
    def test_bounded_send_queue_drops_excess(self):
        async def body():
            # A server that accepts but never reads: the writer task can
            # enqueue, so fill the queue before starting the tasks.
            async def on_accept(reader, writer):
                await asyncio.sleep(10)

            server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            stats = NodeStats()
            conn = PeerConnection(
                1,
                reader,
                writer,
                config=ConnectionConfig(send_queue_limit=2),
                stats=stats,
                on_message=lambda *a: None,
            )
            assert conn.send(b"one")
            assert conn.send(b"two")
            assert not conn.send(b"three")  # valve shut: queue full
            assert conn.pending_frames == 2
            conn.close()
            server.close()
            await server.wait_closed()

        run(body())

    def test_send_after_close_is_refused(self):
        async def body():
            async def on_accept(reader, writer):
                pass

            server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            conn = PeerConnection(
                1,
                reader,
                writer,
                config=ConnectionConfig(),
                stats=NodeStats(),
                on_message=lambda *a: None,
            )
            conn.close()
            assert not conn.send(b"frame")
            server.close()
            await server.wait_closed()

        run(body())


class TestMalformedPeer:
    def test_garbage_frames_drop_the_peer(self):
        async def body():
            node = LiveServent(0, config=ConnectionConfig(handshake_timeout=1.0))
            await node.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", node.port)
            await offer_handshake(reader, writer, 1)
            for _ in range(100):
                if node.connected_peers:
                    break
                await asyncio.sleep(0.01)
            assert node.connected_peers == {1}
            writer.write(b"\xde\xad\xbe\xef" * 8)  # not a descriptor
            await writer.drain()
            for _ in range(200):
                if not node.connected_peers:
                    break
                await asyncio.sleep(0.01)
            assert node.connected_peers == set()
            assert node.stats.protocol_errors == 1
            writer.close()
            await node.close()

        run(body())

    def test_handshake_timeout_drops_silent_dialer(self):
        async def body():
            node = LiveServent(0, config=ConnectionConfig(handshake_timeout=0.05))
            await node.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", node.port)
            # Say nothing; the acceptor must give up quickly.
            await asyncio.sleep(0.2)
            assert node.connected_peers == set()
            assert node.stats.protocol_errors == 1
            writer.close()
            await node.close()

        run(body())


def test_keepalive_pings_flow():
    async def body():
        config = ConnectionConfig(keepalive_interval=0.05, idle_timeout=0.0)
        a = LiveServent(0, config=config)
        b = LiveServent(1, config=config)
        await a.start()
        await b.start()
        a.add_peer("127.0.0.1", b.port, peer_id=1)
        for _ in range(300):
            if a.stats.pings_sent >= 2 and b.stats.pings_sent >= 2:
                break
            await asyncio.sleep(0.01)
        assert a.stats.pings_sent >= 2
        assert b.stats.pings_sent >= 2
        # keepalives are TTL-1 probes answered with Pongs, so frames flow
        # both ways and neither side sees a protocol error.
        assert a.stats.frames_in >= 2
        assert a.stats.protocol_errors == 0
        await a.close()
        await b.close()

    run(body())
