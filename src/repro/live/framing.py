"""Incremental Gnutella frame reassembly for TCP streams.

TCP delivers byte runs with arbitrary boundaries: a read may return half
a descriptor header, three whole descriptors and the first byte of a
fourth.  :class:`StreamDecoder` buffers whatever arrives and yields
complete decoded descriptors as soon as their bytes are in, using the
exact codec from :mod:`repro.network.protocol` — so the live daemon and
the in-process simulators cannot disagree about the wire format.

Malformed input raises :class:`~repro.network.protocol.ProtocolError`
(never ``struct.error``): the connection layer responds by dropping the
peer.  A header announcing a payload larger than ``max_payload_length``
is rejected *before* waiting for the payload, so a hostile or broken
peer cannot make the node buffer unbounded memory.
"""

from __future__ import annotations

from repro.network.protocol import (
    DescriptorHeader,
    ProtocolError,
    decode_message,
)

__all__ = ["DEFAULT_MAX_PAYLOAD", "StreamDecoder"]

#: Generous for this codec (the largest legal payload is a QueryHit with
#: a file name; real Gnutella clients capped descriptors near 64 KiB).
DEFAULT_MAX_PAYLOAD = 64 * 1024

_HEADER_SIZE = 23


class StreamDecoder:
    """Reassemble descriptors from arbitrary TCP chunk boundaries."""

    def __init__(self, *, max_payload_length: int = DEFAULT_MAX_PAYLOAD) -> None:
        if max_payload_length < 0:
            raise ValueError("max_payload_length must be >= 0")
        self.max_payload_length = max_payload_length
        self._buffer = bytearray()
        self._header: DescriptorHeader | None = None
        self.frames_decoded = 0
        self.bytes_consumed = 0

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet part of a complete descriptor."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[tuple[DescriptorHeader, object]]:
        """Consume one chunk; return every descriptor it completed.

        Raises :class:`ProtocolError` on malformed input, after which the
        decoder must be discarded (the stream position is ambiguous).
        """
        self._buffer.extend(data)
        out: list[tuple[DescriptorHeader, object]] = []
        while True:
            if self._header is None:
                if len(self._buffer) < _HEADER_SIZE:
                    break
                header = DescriptorHeader.decode(bytes(self._buffer[:_HEADER_SIZE]))
                if header.payload_length > self.max_payload_length:
                    raise ProtocolError(
                        f"payload length {header.payload_length} exceeds "
                        f"limit {self.max_payload_length}"
                    )
                self._header = header
            frame_size = _HEADER_SIZE + self._header.payload_length
            if len(self._buffer) < frame_size:
                break
            frame = bytes(self._buffer[:frame_size])
            del self._buffer[:frame_size]
            self._header = None
            out.append(decode_message(frame))
            self.frames_decoded += 1
            self.bytes_consumed += frame_size
        return out
