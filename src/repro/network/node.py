"""Per-peer state in the overlay simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.interests import InterestProfile

__all__ = ["PeerNode"]


@dataclass
class PeerNode:
    """A peer: its shared files, interests, and routing policy.

    ``library`` holds file ids the peer shares (drawn from its interest
    categories — interest-based locality).  ``policy`` is this node's
    routing-policy instance; policies that learn (association routing,
    shortcuts, routing indices) keep their tables on the instance.
    """

    node_id: int
    profile: InterestProfile
    library: frozenset[int] = frozenset()
    policy: object | None = None
    generation: int = 0  # bumped when churn replaces this peer's identity

    def shares(self, file_id: int) -> bool:
        return file_id in self.library
