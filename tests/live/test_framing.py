"""Codec robustness: the incremental stream decoder under hostile input.

TCP gives no framing guarantees, so every test here feeds bytes at
adversarial boundaries — one byte at a time, random chunkings, truncated
prefixes — and malformed-input cases assert :class:`ProtocolError`
(which live connections translate into "drop this peer")."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.live.framing import StreamDecoder
from repro.network.protocol import (
    PAYLOAD_QUERY,
    PingMessage,
    PongMessage,
    ProtocolError,
    QueryHitMessage,
    QueryMessage,
    encode_message,
)

MESSAGES = [
    (1, 7, 0, PingMessage()),
    (2, 5, 1, PongMessage(port=6346, ip="10.0.0.1", n_files=3, n_kilobytes=999)),
    (3, 7, 0, QueryMessage(min_speed=0, search="kw0001 kw0002")),
    (
        4,
        4,
        3,
        QueryHitMessage(
            port=6346,
            ip="10.0.0.2",
            speed=1000,
            file_index=0,
            file_size=1 << 20,
            file_name="kw0001 track0.mp3",
            servent_guid=100_001,
        ),
    ),
]


def encode_all(messages):
    return b"".join(encode_message(*m) for m in messages)


class TestReassembly:
    def test_single_message_one_byte_at_a_time(self):
        decoder = StreamDecoder()
        data = encode_message(9, 7, 0, QueryMessage(min_speed=0, search="abc"))
        decoded = []
        for i in range(len(data)):
            out = decoder.feed(data[i : i + 1])
            decoded.extend(out)
            if i < len(data) - 1:
                assert out == []  # nothing complete until the last byte
        assert len(decoded) == 1
        header, payload = decoded[0]
        assert header.guid == 9
        assert payload == QueryMessage(min_speed=0, search="abc")
        assert decoder.pending == 0

    def test_stream_of_all_payload_types_one_byte_at_a_time(self):
        decoder = StreamDecoder()
        decoded = []
        for i, byte in enumerate(encode_all(MESSAGES)):
            decoded.extend(decoder.feed(bytes([byte])))
        assert [h.guid for h, _p in decoded] == [1, 2, 3, 4]
        assert [type(p) for _h, p in decoded] == [
            PingMessage,
            PongMessage,
            QueryMessage,
            QueryHitMessage,
        ]
        assert decoder.frames_decoded == 4

    def test_whole_stream_in_one_chunk(self):
        decoder = StreamDecoder()
        decoded = decoder.feed(encode_all(MESSAGES))
        assert len(decoded) == 4
        assert decoder.pending == 0

    @settings(max_examples=60, deadline=None)
    @given(
        searches=st.lists(
            st.text(
                alphabet=st.characters(
                    min_codepoint=1,
                    max_codepoint=0x2FF,
                ),
                max_size=20,
            ),
            min_size=1,
            max_size=6,
        ),
        data=st.data(),
    )
    def test_roundtrip_under_random_chunking(self, searches, data):
        messages = [
            (i + 1, 7, 0, QueryMessage(min_speed=i, search=s))
            for i, s in enumerate(searches)
        ]
        stream = encode_all(messages)
        n_cuts = data.draw(st.integers(0, min(len(stream), 8)))
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(0, len(stream)),
                    min_size=n_cuts,
                    max_size=n_cuts,
                )
            )
        )
        decoder = StreamDecoder()
        decoded = []
        prev = 0
        for cut in cuts + [len(stream)]:
            decoded.extend(decoder.feed(stream[prev:cut]))
            prev = cut
        assert [p.search for _h, p in decoded] == searches
        assert [h.guid for h, _p in decoded] == [m[0] for m in messages]
        assert decoder.pending == 0


class TestTruncation:
    def test_truncated_header_stays_pending(self):
        decoder = StreamDecoder()
        data = encode_message(5, 7, 0, PingMessage())
        assert decoder.feed(data[:10]) == []
        assert decoder.pending == 10
        assert len(decoder.feed(data[10:])) == 1

    def test_truncated_payload_stays_pending(self):
        decoder = StreamDecoder()
        data = encode_message(5, 7, 0, QueryMessage(min_speed=0, search="abcdef"))
        assert decoder.feed(data[:-2]) == []  # header + partial payload
        assert decoder.pending == len(data) - 2
        assert len(decoder.feed(data[-2:])) == 1


class TestMalformedInput:
    def test_protocol_error_is_value_error(self):
        assert issubclass(ProtocolError, ValueError)

    def test_nul_inside_search_string_rejected(self):
        # The encoder refuses embedded NULs, so craft the frame by hand:
        # a Query payload whose criteria contain one mid-string.
        payload = b"\x00\x00" + b"ab\x00cd" + b"\x00"
        header = bytes(16) + bytes([PAYLOAD_QUERY, 7, 0]) + len(payload).to_bytes(
            4, "little"
        )
        with pytest.raises(ProtocolError):
            StreamDecoder().feed(header + payload)

    def test_oversized_payload_length_rejected_before_payload_arrives(self):
        decoder = StreamDecoder(max_payload_length=64)
        header = bytes(16) + bytes([PAYLOAD_QUERY, 7, 0]) + (1 << 20).to_bytes(
            4, "little"
        )
        # Only the header has arrived — the decoder must refuse to wait
        # for a megabyte rather than buffer it.
        with pytest.raises(ProtocolError):
            decoder.feed(header)

    def test_unknown_payload_type_rejected(self):
        frame = bytes(16) + bytes([0x42, 7, 0]) + (0).to_bytes(4, "little")
        with pytest.raises(ProtocolError):
            StreamDecoder().feed(frame)

    def test_bad_pong_length_is_protocol_error_not_struct_error(self):
        from repro.network.protocol import PAYLOAD_PONG

        payload = b"\x01\x02\x03"  # pong payload must be 14 bytes
        frame = (
            bytes(16)
            + bytes([PAYLOAD_PONG, 7, 0])
            + len(payload).to_bytes(4, "little")
            + payload
        )
        with pytest.raises(ProtocolError):
            StreamDecoder().feed(frame)

    def test_non_utf8_search_rejected(self):
        payload = b"\x00\x00" + b"\xff\xfe" + b"\x00"
        frame = (
            bytes(16)
            + bytes([PAYLOAD_QUERY, 7, 0])
            + len(payload).to_bytes(4, "little")
            + payload
        )
        with pytest.raises(ProtocolError):
            StreamDecoder().feed(frame)
