#!/usr/bin/env python
"""Render the paper's four figures as terminal charts.

Regenerates Figures 1-4 from the calibrated synthetic trace and draws
each as an ASCII time-series chart (coverage `*`, success `o`) with the
paper's reported averages printed alongside — the closest a terminal gets
to the original plots.

Run:  python examples/paper_figures.py
"""

import time

from repro.experiments import run_experiment
from repro.metrics.ascii_chart import line_chart

FIGURES = [
    (
        "fig1",
        "Fig. 1 — Coverage and Success of Sliding Window over time",
        "paper averages: coverage > 0.80, success ~0.79",
    ),
    (
        "fig3",
        "Fig. 3 — Lazy Sliding Window over time (rule set reused for 10 blocks)",
        "paper averages: coverage = success = 0.59 (sawtooth decay)",
    ),
    (
        "fig4",
        "Fig. 4 — Adaptive Sliding Window over time (threshold history N=10)",
        "paper: coverage 0.78, success ~0.77, regen every ~1.7 blocks",
    ),
    (
        "static",
        "§V-A — Static Ruleset over time (the figure the text describes)",
        "paper: success ~0 by trial 16; coverage plateaus ~0.4 then decays",
    ),
]


def main() -> None:
    for experiment_id, title, paper_note in FIGURES:
        t0 = time.time()
        result = run_experiment(experiment_id)
        series = {
            "coverage": result.series["coverage"],
            "success": result.series["success"],
        }
        print(title)
        print(paper_note)
        print()
        print(line_chart(series, height=12))
        avg_cov = sum(series["coverage"]) / len(series["coverage"])
        avg_succ = sum(series["success"]) / len(series["success"])
        print(
            f"\nmeasured averages: coverage={avg_cov:.3f} success={avg_succ:.3f} "
            f"({time.time() - t0:.1f}s)\n"
        )
        print("=" * 78)


if __name__ == "__main__":
    main()
