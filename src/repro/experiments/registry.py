"""Experiment registry and lookup."""

from __future__ import annotations

from typing import Callable

from repro.experiments.figures import (
    run_adaptive_history,
    run_confidence_ablation,
    run_fig1_sliding,
    run_fig2_block_sizes,
    run_fig3_lazy,
    run_fig4_adaptive,
    run_prune_ablation,
    run_static,
    run_streaming,
)
from repro.experiments.ablations import run_churn_sensitivity, run_topk_ablation
from repro.experiments.adoption import run_adoption_sweep
from repro.experiments.latency import run_latency_under_load
from repro.experiments.extensions import (
    run_category_rules,
    run_hybrid,
    run_superpeer,
    run_topology_adaptation,
)
from repro.experiments.hier import run_hier
from repro.experiments.results import ExperimentResult
from repro.experiments.traffic import run_traffic_comparison

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

#: experiment id -> (title, runner)
EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {
    "static": ("Static Ruleset over time (§V-A)", run_static),
    "fig1": ("Sliding Window over time (Fig. 1)", run_fig1_sliding),
    "fig2": ("Sliding Window block-size sweep (Fig. 2)", run_fig2_block_sizes),
    "fig3": ("Lazy Sliding Window over time (Fig. 3)", run_fig3_lazy),
    "fig4": ("Adaptive Sliding Window over time (Fig. 4)", run_fig4_adaptive),
    "adaptive-history": ("Adaptive history N=10 vs N=50 (§V-D)", run_adaptive_history),
    "streaming": ("Streaming rule maintenance (§VI)", run_streaming),
    "traffic": ("Online traffic reduction (§I/§VI claim)", run_traffic_comparison),
    "prune-ablation": ("Support-prune threshold ablation (§III-B.1)", run_prune_ablation),
    "confidence-ablation": ("Confidence pruning extension (§VI)", run_confidence_ablation),
    "category-rules": ("Query-string dimension in antecedents (§VI)", run_category_rules),
    "topology-adaptation": ("Rule-driven overlay rewiring (§VI)", run_topology_adaptation),
    "hybrid": ("Shortcuts + rules hybrid (§VI)", run_hybrid),
    "superpeer": ("Super-peer two-tier baseline (§II)", run_superpeer),
    "hier": ("Two-tier super-peer rule routing (ISSUE 10)", run_hier),
    "topk-ablation": ("Top-k consequent forwarding ablation (§III-B.1)", run_topk_ablation),
    "churn-sensitivity": ("Association routing under churn (robustness)", run_churn_sensitivity),
    "adoption": ("Incremental deployment sweep (§III-B)", run_adoption_sweep),
    "latency": ("Latency under load (§VI claim)", run_latency_under_load),
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a runner by id (raises KeyError with the known ids)."""
    try:
        return EXPERIMENTS[experiment_id][1]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id."""
    return get_experiment(experiment_id)(**kwargs)
