"""Tests for the trace providers (repro.parallel.provider)."""

import dataclasses

import numpy as np

from repro.parallel.provider import (
    CachingTraceProvider,
    SharedMemoryTraceProvider,
    clear_trace_provider,
    current_trace_provider,
    install_trace_provider,
    provide_pair_columns,
    trace_key,
)
from repro.parallel.shm import AttachedTraceStore, SharedTraceStore
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

CFG = MonitorTraceConfig()


class TestTraceKey:
    def test_same_spec_same_key(self):
        assert trace_key(CFG, 1, 1000) == trace_key(MonitorTraceConfig(), 1, 1000)

    def test_differs_by_each_component(self):
        base = trace_key(CFG, 1, 1000)
        assert trace_key(CFG, 2, 1000) != base
        assert trace_key(CFG, 1, 2000) != base
        other_cfg = dataclasses.replace(CFG, block_size=CFG.block_size + 1)
        assert trace_key(other_cfg, 1, 1000) != base

    def test_longer_trace_is_not_a_superset(self):
        """The reason n_pairs is part of the key: the generator pre-draws
        its gap sequence, so a longer trace diverges from a shorter one
        rather than extending it."""
        short = MonitorTraceGenerator(CFG, seed=1).generate_pair_arrays(1000)
        long = MonitorTraceGenerator(CFG, seed=1).generate_pair_arrays(2000)
        assert not np.array_equal(long.source[:1000], short.source)


class TestCachingTraceProvider:
    def test_memoizes_by_spec(self):
        provider = CachingTraceProvider()
        first = provider.pair_columns(CFG, 1, 1000)
        second = provider.pair_columns(CFG, 1, 1000)
        assert (provider.hits, provider.misses) == (1, 1)
        assert second[0] is first[0]  # served the same arrays, no regen
        provider.pair_columns(CFG, 2, 1000)
        assert provider.misses == 2

    def test_columns_match_direct_generation(self):
        provider = CachingTraceProvider()
        sources, repliers = provider.pair_columns(CFG, 3, 1500)
        arrays = MonitorTraceGenerator(CFG, seed=3).generate_pair_arrays(1500)
        np.testing.assert_array_equal(sources, arrays.source)
        np.testing.assert_array_equal(repliers, arrays.replier)

    def test_warm_prefills(self):
        provider = CachingTraceProvider()
        provider.warm(CFG, 1, 1000)
        provider.pair_columns(CFG, 1, 1000)
        assert (provider.hits, provider.misses) == (1, 1)


class TestSharedMemoryTraceProvider:
    def test_serves_shared_then_falls_back(self):
        arrays = MonitorTraceGenerator(CFG, seed=1).generate_pair_arrays(1000)
        key = trace_key(CFG, 1, 1000)
        with SharedTraceStore() as store:
            store.put(key, arrays.source, arrays.replier)
            attached = AttachedTraceStore(store.handles())
            try:
                provider = SharedMemoryTraceProvider(attached)
                sources, _ = provider.pair_columns(CFG, 1, 1000)
                np.testing.assert_array_equal(sources, arrays.source)
                assert provider.shared_hits == 1
                # Spec the parent did not pre-generate: local fallback.
                provider.pair_columns(CFG, 9, 500)
                assert provider.shared_hits == 1
                assert provider._local.misses == 1
            finally:
                attached.close()


class TestProcessWideProvider:
    def test_none_by_default(self):
        assert current_trace_provider() is None

    def test_provided_columns_bit_identical_to_direct(self):
        direct = provide_pair_columns(CFG, 5, 1200)
        provider = CachingTraceProvider()
        install_trace_provider(provider)
        try:
            served = provide_pair_columns(CFG, 5, 1200)
        finally:
            clear_trace_provider()
        np.testing.assert_array_equal(served[0], direct[0])
        np.testing.assert_array_equal(served[1], direct[1])
        assert provider.misses == 1
        assert current_trace_provider() is None
