"""Tests for the asyncio /metrics + /healthz endpoint."""

import asyncio
import json

from repro.obs.http import ObsHttpServer


def run(coro, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _request(port: int, raw: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    response = await reader.read()
    writer.close()
    return response


def _split(response: bytes) -> tuple[str, str]:
    head, _, body = response.partition(b"\r\n\r\n")
    return head.decode("latin-1"), body.decode("utf-8")


class TestEndpoints:
    def test_metrics_calls_render_hook(self):
        async def body():
            calls = []

            def render():
                calls.append(1)
                return "repro_up 1\n"

            server = ObsHttpServer(render=render)
            await server.start()
            try:
                response = await _request(
                    server.port, b"GET /metrics HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()
            head, payload = _split(response)
            assert "200 OK" in head
            assert "text/plain; version=0.0.4" in head
            assert payload == "repro_up 1\n"
            assert calls == [1]

        run(body())

    def test_healthz_ok_and_degraded(self):
        async def body():
            doc = {"status": "ok", "node": 3}
            server = ObsHttpServer(render=lambda: "", health=lambda: doc)
            await server.start()
            try:
                ok = await _request(
                    server.port, b"GET /healthz HTTP/1.1\r\n\r\n"
                )
                doc["status"] = "closing"
                degraded = await _request(
                    server.port, b"GET /healthz HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()
            head, payload = _split(ok)
            assert "200 OK" in head
            assert "application/json" in head
            assert json.loads(payload)["node"] == 3
            head, _payload = _split(degraded)
            assert "503" in head

        run(body())

    def test_head_omits_body_but_keeps_length(self):
        async def body():
            server = ObsHttpServer(render=lambda: "abc\n")
            await server.start()
            try:
                response = await _request(
                    server.port, b"HEAD /metrics HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()
            head, payload = _split(response)
            assert "Content-Length: 4" in head
            assert payload == ""

        run(body())

    def test_query_string_ignored(self):
        async def body():
            server = ObsHttpServer(render=lambda: "x\n")
            await server.start()
            try:
                response = await _request(
                    server.port, b"GET /metrics?debug=1 HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()
            assert b"200 OK" in response

        run(body())


class TestTraceEndpoint:
    def test_trace_serves_jsonl_when_hooked(self):
        async def body():
            server = ObsHttpServer(
                render=lambda: "",
                trace=lambda: '{"guid": 1, "kind": "issued"}\n',
            )
            await server.start()
            try:
                response = await _request(
                    server.port, b"GET /trace HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()
            head, payload = _split(response)
            assert "200 OK" in head
            assert "application/x-ndjson" in head
            assert json.loads(payload)["guid"] == 1

        run(body())

    def test_trace_404_without_hook(self):
        async def body():
            server = ObsHttpServer(render=lambda: "")
            await server.start()
            try:
                response = await _request(
                    server.port, b"GET /trace HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()
            assert b"404" in response

        run(body())


class TestErrors:
    def test_unknown_path_404(self):
        async def body():
            server = ObsHttpServer(render=lambda: "")
            await server.start()
            try:
                response = await _request(
                    server.port, b"GET /nope HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()
            assert b"404" in response

        run(body())

    def test_post_405(self):
        async def body():
            server = ObsHttpServer(render=lambda: "")
            await server.start()
            try:
                response = await _request(
                    server.port, b"POST /metrics HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()
            assert b"405" in response

        run(body())

    def test_malformed_request_line_400(self):
        async def body():
            server = ObsHttpServer(render=lambda: "")
            await server.start()
            try:
                response = await _request(server.port, b"GARBAGE\r\n\r\n")
            finally:
                await server.close()
            assert b"400" in response

        run(body())

    def test_oversized_request_head_431(self):
        # Between the server's 8 KiB head cap and the stream reader's
        # 64 KiB buffer limit, so the size check (not the transport)
        # rejects it.
        async def body():
            server = ObsHttpServer(render=lambda: "")
            await server.start()
            try:
                huge = b"GET /" + b"a" * 16384 + b" HTTP/1.1\r\n\r\n"
                response = await _request(server.port, huge)
            finally:
                await server.close()
            assert b"431" in response

        run(body())

    def test_client_disconnect_mid_request_keeps_serving(self):
        async def body():
            server = ObsHttpServer(render=lambda: "ok\n")
            await server.start()
            try:
                # Half a request head, then an abrupt close: the handler
                # sees IncompleteReadError and must not take the server
                # down with it.
                _reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /metr")
                await writer.drain()
                writer.close()
                await asyncio.sleep(0.05)
                assert server.running
                response = await _request(
                    server.port, b"GET /metrics HTTP/1.1\r\n\r\n"
                )
            finally:
                await server.close()
            head, payload = _split(response)
            assert "200 OK" in head
            assert payload == "ok\n"

        run(body())


class TestLifecycle:
    def test_ephemeral_port_resolved_and_close_idempotent(self):
        async def body():
            server = ObsHttpServer(render=lambda: "")
            assert not server.running
            await server.start()
            assert server.running
            assert server.port > 0
            await server.close()
            assert not server.running
            await server.close()  # second close is a no-op

        run(body())
