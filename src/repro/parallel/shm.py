"""Shared-memory transport for trace pair columns.

The experiment engine fans tasks out to ``ProcessPoolExecutor`` workers.
A full-scale trace is tens of megabytes of int64 columns; pickling it
into every task would dominate the task cost, so the parent writes each
generated trace's ``(source, replier)`` columns into one
``multiprocessing.shared_memory`` segment and ships workers a tiny
picklable :class:`TraceHandle` instead.  Workers map the segment and
build zero-copy numpy views — and the :class:`~repro.trace.blocks.PairBlock`
slices the experiments consume are views of those views.

Lifecycle: the parent (:class:`SharedTraceStore`) owns every segment and
unlinks them in :meth:`close`; workers only attach.  Worker-side
attachments are deliberately unregistered from the multiprocessing
resource tracker — the parent's unlink is authoritative, and without the
unregister every worker exit would log spurious leak warnings.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["TraceHandle", "SharedTraceStore", "AttachedTraceStore"]

_ITEMSIZE = np.dtype(np.int64).itemsize


@dataclass(frozen=True)
class TraceHandle:
    """Picklable reference to one trace's columns in shared memory.

    The segment holds ``n_pairs`` int64 sources followed by ``n_pairs``
    int64 repliers.
    """

    shm_name: str
    n_pairs: int


def _views(buf, n_pairs: int) -> tuple[np.ndarray, np.ndarray]:
    sources = np.ndarray((n_pairs,), dtype=np.int64, buffer=buf, offset=0)
    repliers = np.ndarray(
        (n_pairs,), dtype=np.int64, buffer=buf, offset=n_pairs * _ITEMSIZE
    )
    return sources, repliers


class SharedTraceStore:
    """Parent-side owner of shared trace segments, keyed by trace spec."""

    def __init__(self) -> None:
        self._segments: dict[object, shared_memory.SharedMemory] = {}
        self._handles: dict[object, TraceHandle] = {}

    def put(self, key: object, sources: np.ndarray, repliers: np.ndarray) -> TraceHandle:
        """Copy one trace's columns into a fresh shared segment."""
        if key in self._handles:
            return self._handles[key]
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        repliers = np.ascontiguousarray(repliers, dtype=np.int64)
        if sources.shape != repliers.shape or sources.ndim != 1:
            raise ValueError("trace columns must be matching 1-D arrays")
        n_pairs = len(sources)
        shm = shared_memory.SharedMemory(
            create=True, size=max(2 * n_pairs * _ITEMSIZE, 1)
        )
        src_view, rep_view = _views(shm.buf, n_pairs)
        src_view[:] = sources
        rep_view[:] = repliers
        self._segments[key] = shm
        handle = TraceHandle(shm_name=shm.name, n_pairs=n_pairs)
        self._handles[key] = handle
        return handle

    def arrays(self, key: object) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy views of a stored trace (parent-side reuse)."""
        shm = self._segments[key]
        return _views(shm.buf, self._handles[key].n_pairs)

    def handles(self) -> dict[object, TraceHandle]:
        """Picklable {trace key: handle} map for worker initializers."""
        return dict(self._handles)

    def __len__(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Release and unlink every owned segment."""
        for shm in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # already unlinked (double close)
                pass
        self._segments.clear()
        self._handles.clear()

    def __enter__(self) -> "SharedTraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AttachedTraceStore:
    """Worker-side view of the parent's shared trace segments."""

    def __init__(self, handles: dict[object, TraceHandle]) -> None:
        self._handles = dict(handles)
        self._attached: dict[object, shared_memory.SharedMemory] = {}

    def keys(self):
        return self._handles.keys()

    def __contains__(self, key: object) -> bool:
        return key in self._handles

    def arrays(self, key: object) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy (sources, repliers) views for one trace key."""
        handle = self._handles[key]
        shm = self._attached.get(key)
        if shm is None:
            shm = shared_memory.SharedMemory(name=handle.shm_name)
            # The parent owns the segment.  Under spawn/forkserver each
            # worker runs its own resource tracker, which would unlink the
            # segment when the worker exits — out from under the parent —
            # so the attachment must be unregistered.  Under fork the
            # tracker process is shared with the parent and unregistering
            # here would instead drop the parent's own registration.
            if multiprocessing.get_start_method(allow_none=True) != "fork":
                try:
                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:  # pragma: no cover - tracker internals
                    pass
            self._attached[key] = shm
        return _views(shm.buf, handle.n_pairs)

    def close(self) -> None:
        for shm in self._attached.values():
            shm.close()
        self._attached.clear()
