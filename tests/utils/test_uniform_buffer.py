"""Tests for repro.utils.rng.UniformBuffer."""

import numpy as np
import pytest

from repro.utils.rng import UniformBuffer


class TestUniformBuffer:
    def test_values_in_unit_interval(self):
        buf = UniformBuffer(np.random.default_rng(1), chunk=16)
        for _ in range(100):
            assert 0.0 <= buf.next() < 1.0

    def test_deterministic_per_seed(self):
        a = UniformBuffer(np.random.default_rng(2), chunk=8)
        b = UniformBuffer(np.random.default_rng(2), chunk=8)
        assert [a.next() for _ in range(40)] == [b.next() for _ in range(40)]

    def test_chunk_size_invisible(self):
        """The draw sequence must not depend on the buffering granularity."""
        small = UniformBuffer(np.random.default_rng(3), chunk=4)
        large = UniformBuffer(np.random.default_rng(3), chunk=1024)
        assert [small.next() for _ in range(50)] == [large.next() for _ in range(50)]

    def test_refill_seamless(self):
        buf = UniformBuffer(np.random.default_rng(4), chunk=5)
        values = [buf.next() for _ in range(20)]
        assert len(set(values)) == 20  # no repeats across refills

    def test_next_index_range(self):
        buf = UniformBuffer(np.random.default_rng(5), chunk=64)
        draws = [buf.next_index(7) for _ in range(500)]
        assert min(draws) == 0
        assert max(draws) == 6

    def test_next_index_roughly_uniform(self):
        buf = UniformBuffer(np.random.default_rng(6), chunk=4096)
        counts = np.bincount([buf.next_index(4) for _ in range(8000)], minlength=4)
        assert counts.min() > 1700

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformBuffer(np.random.default_rng(7), chunk=0)
        buf = UniformBuffer(np.random.default_rng(8))
        with pytest.raises(ValueError):
            buf.next_index(0)
