"""Execute a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The injector walks the plan's events at their absolute activation times
(scaled by ``time_scale``), dispatching node-level events (crash /
restart) to the :class:`~repro.live.cluster.LiveCluster` and everything
else to the :class:`~repro.faults.transport.FaultController`.  It keeps
a replay log whose entries carry the *planned* times, never wall-clock
readings, so two runs of the same plan produce byte-identical logs.

After the last event the injector sleeps out the plan's remaining
``duration`` (reconnects and rule relearning need scheduled room), then
restores a sane end state — any node still down is restarted and any
partition still active is healed, logged as ``final-restart`` /
``final-heal`` — so invariant checks always look at a cluster the plan
intended to leave whole.
"""

from __future__ import annotations

import asyncio

from repro.faults.plan import CRASH, RESTART, FaultEvent, FaultPlan
from repro.faults.transport import FaultController
from repro.obs.logging import get_logger

__all__ = ["FaultInjector"]

_log = get_logger("faults.injector")


class FaultInjector:
    """Drives one plan, once, against one cluster."""

    def __init__(self, plan: FaultPlan, controller: FaultController) -> None:
        self.plan = plan
        self.controller = controller
        #: the deterministic replay log: one dict per applied event.
        self.log: list[dict] = []

    def _record(self, event: FaultEvent, applied: bool) -> None:
        entry = event.as_dict()
        entry["applied"] = bool(applied)
        self.log.append(entry)
        _log.debug("fault", extra=dict(entry))

    async def run(self, cluster, *, time_scale: float = 1.0) -> list[dict]:
        """Apply every event at its activation time; returns the log."""
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        down: set[int] = set()
        for event in self.plan.events:
            delay = t0 + event.time * time_scale - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            applied = await self._apply(event, cluster, down)
            self._record(event, applied)
        tail = t0 + self.plan.duration * time_scale - loop.time()
        if tail > 0:
            await asyncio.sleep(tail)
        # restore a sane end state so invariants can be checked.
        for node in sorted(down):
            await cluster.restart(node)
            self.log.append(
                {"time": self.plan.duration, "kind": "final-restart", "node": node}
            )
        if self.controller.partition is not None:
            self.controller.heal_partition()
            self.log.append({"time": self.plan.duration, "kind": "final-heal"})
        return self.log

    async def _apply(self, event: FaultEvent, cluster, down: set[int]) -> bool:
        if event.kind == CRASH:
            node = cluster.nodes[event.node]
            if node.closed:
                return False
            # hard: a crash must not take the graceful final checkpoint,
            # or warm restarts would never exercise the WAL-tail replay.
            await cluster.kill(event.node, hard=True)
            down.add(event.node)
            return True
        if event.kind == RESTART:
            if event.node not in down:
                return False
            await cluster.restart(event.node)
            down.discard(event.node)
            return True
        return self.controller.apply(event)  # partition/heal + link faults
