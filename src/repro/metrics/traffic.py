"""Traffic accounting for the online overlay simulator.

The motivation of the paper is reducing the number of query messages
flooded through the network while still finding content.  These counters
capture exactly that trade-off per routing strategy: messages sent,
duplicate deliveries, hit rate, and hop counts of first hits.

They also carry the paper's two rule-quality measures, generalized to
online routing so every network variant (flat association routing, the
seed super-peer flooding baseline, the two-tier rule tier) reports them
identically:

* coverage ``alpha`` — fraction of queries whose antecedent was covered
  by a rule at routing time (a flooding baseline covers nothing, so its
  alpha is 0 by construction — which is what makes it comparable);
* success ``rho`` — fraction of *covered* queries that the rule-routed
  attempt actually resolved (before any flooding fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.stats import RunningStats

__all__ = ["QueryOutcome", "TrafficStats"]


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one query issued in the overlay simulator."""

    query_id: int
    messages: int  # query messages transmitted on behalf of this query
    hits: int  # number of distinct providers found
    first_hit_hops: int | None  # hops to the first hit (None if no hit)
    duplicates: int  # deliveries suppressed as duplicates
    #: a rule covered this query's antecedent at routing time.
    rule_covered: bool = False
    #: the rule-routed attempt itself found a hit (no fallback needed).
    rule_succeeded: bool = False

    @property
    def succeeded(self) -> bool:
        return self.hits > 0


@dataclass
class TrafficStats:
    """Aggregate traffic statistics over many queries."""

    n_queries: int = 0
    n_succeeded: int = 0
    total_messages: int = 0
    total_duplicates: int = 0
    total_hits: int = 0
    n_rule_covered: int = 0
    n_rule_succeeded: int = 0
    hop_stats: RunningStats = field(default_factory=RunningStats)
    message_stats: RunningStats = field(default_factory=RunningStats)

    def record(self, outcome: QueryOutcome) -> None:
        self.n_queries += 1
        self.total_messages += outcome.messages
        self.total_duplicates += outcome.duplicates
        self.total_hits += outcome.hits
        self.message_stats.push(outcome.messages)
        if outcome.rule_covered:
            self.n_rule_covered += 1
            if outcome.rule_succeeded:
                self.n_rule_succeeded += 1
        if outcome.succeeded:
            self.n_succeeded += 1
            if outcome.first_hit_hops is not None:
                self.hop_stats.push(outcome.first_hit_hops)

    @property
    def success_rate(self) -> float:
        """Fraction of queries that found at least one provider."""
        return self.n_succeeded / self.n_queries if self.n_queries else 0.0

    @property
    def messages_per_query(self) -> float:
        return self.total_messages / self.n_queries if self.n_queries else 0.0

    @property
    def mean_first_hit_hops(self) -> float:
        return self.hop_stats.mean

    @property
    def coverage_alpha(self) -> float:
        """Paper's alpha: fraction of queries covered by a rule."""
        return self.n_rule_covered / self.n_queries if self.n_queries else 0.0

    @property
    def success_rho(self) -> float:
        """Paper's rho: fraction of covered queries the rules resolved."""
        return (
            self.n_rule_succeeded / self.n_rule_covered
            if self.n_rule_covered
            else 0.0
        )

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return (
            f"queries={self.n_queries} success={self.success_rate:.3f} "
            f"msgs/query={self.messages_per_query:.1f} "
            f"hops={self.mean_first_hit_hops:.2f}"
        )
