"""repro — reproduction of "Adaptively Routing P2P Queries Using
Association Analysis" (Connelly, Bowron, Xiao, Tan & Wang, ICPP 2006).

The package implements the paper's association-rule query routing for
unstructured P2P networks plus every substrate its evaluation depends on:

* :mod:`repro.core` — rule sets, GENERATE-RULESET / RULESET-TEST, the
  four maintenance strategies (Static, Sliding, Lazy, Adaptive) and the
  streaming extension;
* :mod:`repro.mining` — general association analysis (Apriori,
  FP-Growth, rule measures, lossy counting);
* :mod:`repro.workload` — the calibrated synthetic monitor-node trace
  standing in for the paper's proprietary 7-day Gnutella capture;
* :mod:`repro.trace` / :mod:`repro.store` — the paper's import pipeline
  (GUID dedup, query–reply join, blocks) on a minimal relational store;
* :mod:`repro.network` / :mod:`repro.routing` — an online overlay
  simulator with flooding, expanding ring, k-random walks, shortcuts,
  routing indices, and association routing;
* :mod:`repro.experiments` — one seeded runner per paper figure/result.

Quickstart::

    from repro.experiments import run_experiment
    print(run_experiment("fig1").report())
"""

from repro.core import (
    AdaptiveSlidingWindow,
    LazySlidingWindow,
    RuleSet,
    SlidingWindow,
    StaticRuleset,
    StreamingRules,
    generate_ruleset,
    ruleset_test,
)
from repro.experiments import run_experiment
from repro.trace import PairBlock, blocks_from_arrays
from repro.workload import MonitorTraceConfig, MonitorTraceGenerator

__version__ = "1.0.0"

__all__ = [
    "AdaptiveSlidingWindow",
    "LazySlidingWindow",
    "MonitorTraceConfig",
    "MonitorTraceGenerator",
    "PairBlock",
    "RuleSet",
    "SlidingWindow",
    "StaticRuleset",
    "StreamingRules",
    "__version__",
    "blocks_from_arrays",
    "generate_ruleset",
    "run_experiment",
    "ruleset_test",
]
