"""Routing-policy interface.

Every node holds its own policy *instance* (learning policies keep their
tables on it).  Two hooks matter:

* :meth:`RoutingPolicy.select` — called by the propagation engine at each
  node a query transits: given the node, the upstream neighbor it arrived
  from (``None`` at the origin) and the query, return the neighbors to
  forward to.
* :meth:`RoutingPolicy.route_query` — called once at the origin: drives
  the whole query (most policies just broadcast with per-node dispatch,
  but expanding ring retries with larger TTLs, shortcuts probe first,
  association routing may re-flood on a miss).

``dispatch_select`` builds the engine callback that routes each per-node
decision to *that node's own* policy — which is how a mixed deployment
(only some nodes running association routing, as the paper allows) works.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.metrics.traffic import QueryOutcome
from repro.network.engine import QueryEngine
from repro.network.messages import Query

__all__ = ["RoutingPolicy", "dispatch_select"]


def dispatch_select(overlay):
    """Engine callback delegating to each transit node's own policy."""

    def _select(node: int, upstream: int | None, query: Query) -> Sequence[int]:
        policy = overlay.node(node).policy
        if policy is None:
            # Nodes without a policy behave like vanilla Gnutella.
            return overlay.topology.neighbors(node)
        return policy.select(node, upstream, query)

    return _select


class RoutingPolicy(abc.ABC):
    """Base class for per-node routing policies."""

    name: str = "abstract"

    def __init__(self, node_id: int, overlay) -> None:
        self.node_id = node_id
        self.overlay = overlay

    # -- per-transit-node decision -------------------------------------
    @abc.abstractmethod
    def select(self, node: int, upstream: int | None, query: Query) -> Sequence[int]:
        """Neighbors of ``node`` to forward ``query`` to."""

    # -- per-query driver (origin only) ----------------------------------
    def route_query(self, engine: QueryEngine, query: Query) -> QueryOutcome:
        """Default driver: one broadcast with per-node dispatch."""
        return engine.broadcast(query, dispatch_select(self.overlay))

    # -- optional feedback / lifecycle -----------------------------------
    def on_reply(self, *, node_id, upstream, downstream, query, provider) -> None:
        """Reply passed back through this node (learning hook)."""

    def reset(self) -> None:
        """Forget learned state (called when the peer churns)."""
