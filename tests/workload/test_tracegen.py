"""Tests for repro.workload.tracegen (the synthetic monitor-node trace)."""

import numpy as np
import pytest

from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

# A small, fast config for unit tests (not the calibrated experiment one).
SMALL = MonitorTraceConfig(
    block_size=500,
    n_neighbors=20,
    median_session_blocks=8.0,
    n_categories=24,
)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_size": 0},
            {"n_neighbors": 1},
            {"session_model": "weibull"},
            {"session_alpha": 1.0},
            {"median_session_blocks": 0},
            {"path_lifetime_blocks": -1},
            {"path_noise": 1.5},
            {"ephemeral_rate": -0.1},
            {"reply_rate": 0.0},
            {"reply_rate": 1.0},
            {"duplicate_guid_rate": 2.0},
            {"interests_per_neighbor": 0},
            {"pair_rate": 0.0},
            {"category_popularity_exponent": -0.2},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            MonitorTraceConfig(**kwargs)

    def test_seconds_per_block(self):
        cfg = MonitorTraceConfig(block_size=600, pair_rate=6.0)
        assert cfg.seconds_per_block == pytest.approx(100.0)


class TestPairArrays:
    def test_shape_and_dtypes(self):
        gen = MonitorTraceGenerator(SMALL, seed=1)
        arrays = gen.generate_pair_arrays(1000)
        assert len(arrays) == 1000
        assert arrays.source.dtype == np.int64
        assert arrays.replier.dtype == np.int64
        assert (arrays.source >= 0).all()
        assert (arrays.replier >= 0).all()

    def test_times_strictly_increasing(self):
        gen = MonitorTraceGenerator(SMALL, seed=2)
        arrays = gen.generate_pair_arrays(500)
        assert (np.diff(arrays.time) > 0).all()

    def test_categories_in_range(self):
        gen = MonitorTraceGenerator(SMALL, seed=3)
        arrays = gen.generate_pair_arrays(500)
        assert arrays.category.min() >= 0
        assert arrays.category.max() < SMALL.n_categories

    def test_deterministic(self):
        a = MonitorTraceGenerator(SMALL, seed=7).generate_pair_arrays(400)
        b = MonitorTraceGenerator(SMALL, seed=7).generate_pair_arrays(400)
        np.testing.assert_array_equal(a.source, b.source)
        np.testing.assert_array_equal(a.replier, b.replier)
        np.testing.assert_array_equal(a.time, b.time)

    def test_seeds_differ(self):
        a = MonitorTraceGenerator(SMALL, seed=7).generate_pair_arrays(400)
        b = MonitorTraceGenerator(SMALL, seed=8).generate_pair_arrays(400)
        assert not np.array_equal(a.source, b.source)

    def test_repeated_calls_continue_the_trace(self):
        gen = MonitorTraceGenerator(SMALL, seed=9)
        first = gen.generate_pair_arrays(200)
        second = gen.generate_pair_arrays(200)
        assert second.time[0] > first.time[-1]

    def test_neighbor_count_constant(self):
        gen = MonitorTraceGenerator(SMALL, seed=10)
        gen.generate_pair_arrays(2000)
        assert len(gen.active_neighbor_ids) == SMALL.n_neighbors

    def test_repliers_are_active_neighbors_mostly(self):
        # Repliers always come from the neighbor set at reply time; sources
        # may be ephemeral.  Check repliers stay in the persistent id space
        # (ephemeral sources appear at most a handful of times each).
        gen = MonitorTraceGenerator(SMALL, seed=11)
        arrays = gen.generate_pair_arrays(2000)
        unique_sources, source_counts = np.unique(arrays.source, return_counts=True)
        singleton_share = (source_counts == 1).sum() / len(unique_sources)
        assert singleton_share > 0.5  # many ephemeral one-shot sources

    def test_interest_locality_concentrates_repliers(self):
        """A persistent source's replies should concentrate on few neighbors."""
        gen = MonitorTraceGenerator(SMALL, seed=12)
        arrays = gen.generate_pair_arrays(3000)
        unique_sources, counts = np.unique(arrays.source, return_counts=True)
        heavy = unique_sources[np.argmax(counts)]
        mask = arrays.source == heavy
        repliers = arrays.replier[mask]
        top_count = np.bincount(repliers).max()
        # With 3 interests + 10% path noise, the modal replier should carry
        # a large share of this source's replies.
        assert top_count / mask.sum() > 0.25

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MonitorTraceGenerator(SMALL, seed=1).generate_pair_arrays(-1)


class TestIterEvents:
    def test_reply_rate_approximate(self):
        gen = MonitorTraceGenerator(SMALL, seed=20)
        events = list(gen.iter_events(600))
        replies = sum(1 for _q, r in events if r is not None)
        assert replies == 600
        rate = replies / len(events)
        assert abs(rate - SMALL.reply_rate) < 0.05

    def test_reply_guid_matches_query(self):
        gen = MonitorTraceGenerator(SMALL, seed=21)
        for query, reply in gen.iter_events(100):
            if reply is not None:
                assert reply.guid == query.guid
                assert reply.time >= query.time

    def test_duplicate_guids_present(self):
        cfg = MonitorTraceConfig(
            block_size=500, n_neighbors=20, duplicate_guid_rate=0.05
        )
        gen = MonitorTraceGenerator(cfg, seed=22)
        guids = [q.guid for q, _r in gen.iter_events(300)]
        assert len(set(guids)) < len(guids)

    def test_query_strings_parseable(self):
        from repro.workload.querygen import QueryTextModel

        gen = MonitorTraceGenerator(SMALL, seed=23)
        for query, _reply in list(gen.iter_events(30)):
            category, _rank = QueryTextModel.parse(query.query_string)
            assert 0 <= category < SMALL.n_categories


class TestInterestDrift:
    def test_drift_changes_profiles(self):
        cfg = MonitorTraceConfig(
            block_size=500, n_neighbors=20, n_categories=24,
            interest_drift_blocks=2.0,
        )
        gen = MonitorTraceGenerator(cfg, seed=30)
        before = {nb: gen._by_id[nb].profile for nb in gen.active_neighbor_ids}
        gen.generate_pair_arrays(5000)  # 10 blocks >> drift lifetime
        survivors = [nb for nb in gen.active_neighbor_ids if nb in before]
        changed = sum(
            1 for nb in survivors if gen._by_id[nb].profile != before[nb]
        )
        assert survivors, "expected some long-lived neighbors"
        assert changed > 0

    def test_drift_disabled_by_default(self):
        cfg = MonitorTraceConfig(block_size=500, n_neighbors=20, n_categories=24)
        gen = MonitorTraceGenerator(cfg, seed=31)
        before = {nb: gen._by_id[nb].profile for nb in gen.active_neighbor_ids}
        gen.generate_pair_arrays(3000)
        survivors = [nb for nb in gen.active_neighbor_ids if nb in before]
        assert all(gen._by_id[nb].profile == before[nb] for nb in survivors)

    def test_content_drift_alone_degrades_static_success(self):
        """§III-B.3: 'If the types of content queried for ... change over
        time, the rules may not accurately match' — even with NO neighbor
        churn and NO path churn, interest drift ages static rules."""
        from repro.core.strategies import StaticRuleset
        from repro.trace.blocks import blocks_from_arrays

        frozen = dict(
            block_size=1000,
            n_neighbors=25,
            n_categories=24,
            median_session_blocks=1e6,  # no neighbor churn
            path_lifetime_blocks=1e6,  # no path churn
            path_noise=0.0,
            ephemeral_rate=0.0,
        )
        def run(drift):
            cfg = MonitorTraceConfig(interest_drift_blocks=drift, **frozen)
            gen = MonitorTraceGenerator(cfg, seed=32)
            arrays = gen.generate_pair_arrays(12_000)
            blocks = blocks_from_arrays(
                arrays.source, arrays.replier, block_size=1000
            )
            return StaticRuleset(min_support_count=5).run(blocks)

        stable = run(0.0)
        drifting = run(1.5)
        # Frozen world: rules never age (residual misses are sub-threshold
        # minority-interest pairs pruned at generation time).
        assert stable.average_success > 0.9
        assert drifting.average_success < stable.average_success - 0.1
