"""GUID-keyed hop-by-hop query tracing.

A Gnutella query is born with a GUID, fans out hop by hop, and its hits
retrace the GUID route backwards — so the GUID *is* the trace id.
:class:`QueryTracer` collects :class:`TraceEvent` records from every
servent that touches a descriptor (one shared tracer per cluster, or one
per node) and can reconstruct the full path of any query: where it was
issued, which nodes received it at which TTL, whether each hop
rule-routed or flooded it, where it matched a file, and how the hit
travelled back.

Event kinds used by the instrumented stack:

========== ==========================================================
``issued``       query originated at ``node``
``received``     query arrived at ``node`` from ``peer``
``duplicate``    query arrived again over another path and was dropped
``rule_routed``  forwarded along learned rules to ``targets``
``flooded``      forwarded to every other connection (no covering rule)
``ttl_expired``  not forwarded: TTL exhausted at ``node``
``hit``          matched ``info`` in the local library of ``node``
``hit_routed``   hit passed backwards through ``node`` towards ``peer``
``delivered``    hit reached the originating node
``timeout``      harness marker: the query quiesced with no hit
========== ==========================================================

Routing decisions carry *explainability* fields: a ``rule_routed`` event
records the matched rule's antecedent/consequent plus its live windowed
support and confidence; a ``flooded`` event records the fallback
``reason``; forward-path events record the descriptor ``ttl``.  Every
event also carries ``latency`` — seconds since this node first saw the
GUID — so hop latency survives export.

Timestamps come from ``time.time`` (wall clock) by default so spans
recorded in *different processes* merge onto one comparable timeline;
tests inject a fake clock instead of sleeping.

Retention is TTL-bounded on both axes: at most ``max_traces`` distinct
GUIDs are kept (oldest evicted first) and whole traces expire ``ttl``
seconds after their last event, so a long-running daemon's tracer is a
ring buffer, not a leak.  ``sample`` thins the stream by GUID —
``traced_guid(guid, n)`` keeps 1-in-``n`` — so the load generator and
every worker agree on which queries are traced without coordination.
:data:`NULL_TRACER` is the disabled twin whose ``record`` is a no-op;
hot paths guard with ``tracer is not None`` or call the null object
unconditionally.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "QueryTrace",
    "QueryTracer",
    "TraceEvent",
    "format_trace",
    "traced_guid",
]


def traced_guid(guid: int, sample: int) -> bool:
    """Is this GUID in the 1-in-``sample`` traced subset?

    ``sample <= 1`` traces everything.  Both the load generator and the
    worker servents mint GUIDs sequentially, so ``guid % sample == 0``
    picks an even 1-in-N slice with zero coordination between processes.
    """
    return sample <= 1 or guid % sample == 0


@dataclass(frozen=True)
class TraceEvent:
    """One step in a query's life, as seen by one node."""

    ts: float
    node: int
    kind: str
    peer: int | None = None
    info: str = ""
    # Routing explainability (populated where the decision is made).
    ttl: int | None = None
    antecedent: int | None = None
    consequent: int | None = None
    confidence: float | None = None
    support: int | None = None
    reason: str = ""
    # Seconds since this node first saw the GUID (node-local hop latency).
    latency: float | None = None

    def render(self, t0: float) -> str:
        parts = [f"+{self.ts - t0:8.4f}s", f"node {self.node:<4}", self.kind]
        if self.peer is not None:
            arrow = "->" if self.kind in ("rule_routed", "flooded", "hit_routed") else "<-"
            parts.append(f"{arrow} {self.peer}")
        if self.info:
            parts.append(f"[{self.info}]")
        if self.confidence is not None:
            parts.append(
                f"rule({self.antecedent}=>{self.consequent}"
                f" conf={self.confidence:.2f} sup={self.support})"
            )
        if self.ttl is not None:
            parts.append(f"ttl={self.ttl}")
        if self.reason:
            parts.append(f"reason={self.reason}")
        return "  ".join(parts)

    def to_dict(self) -> dict:
        """Plain-data form for JSON-lines export; ``None`` fields omitted."""
        doc: dict = {"ts": self.ts, "node": self.node, "kind": self.kind}
        if self.peer is not None:
            doc["peer"] = self.peer
        if self.info:
            doc["info"] = self.info
        if self.ttl is not None:
            doc["ttl"] = self.ttl
        if self.antecedent is not None:
            doc["antecedent"] = self.antecedent
        if self.consequent is not None:
            doc["consequent"] = self.consequent
        if self.confidence is not None:
            doc["confidence"] = self.confidence
        if self.support is not None:
            doc["support"] = self.support
        if self.reason:
            doc["reason"] = self.reason
        if self.latency is not None:
            doc["latency"] = self.latency
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "TraceEvent":
        return cls(
            ts=float(doc["ts"]),
            node=int(doc["node"]),
            kind=str(doc["kind"]),
            peer=None if doc.get("peer") is None else int(doc["peer"]),
            info=str(doc.get("info", "")),
            ttl=None if doc.get("ttl") is None else int(doc["ttl"]),
            antecedent=(
                None if doc.get("antecedent") is None else int(doc["antecedent"])
            ),
            consequent=(
                None if doc.get("consequent") is None else int(doc["consequent"])
            ),
            confidence=(
                None if doc.get("confidence") is None else float(doc["confidence"])
            ),
            support=None if doc.get("support") is None else int(doc["support"]),
            reason=str(doc.get("reason", "")),
            latency=None if doc.get("latency") is None else float(doc["latency"]),
        )


@dataclass
class QueryTrace:
    """Every recorded event for one GUID, in arrival order."""

    guid: int
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def started(self) -> float:
        return self.events[0].ts if self.events else 0.0

    @property
    def last_event(self) -> float:
        return self.events[-1].ts if self.events else 0.0

    @property
    def answered(self) -> bool:
        return any(e.kind == "delivered" for e in self.events)

    @property
    def hops(self) -> int:
        """Distinct nodes the query itself reached."""
        return len(
            {e.node for e in self.events if e.kind in ("issued", "received")}
        )

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]


class QueryTracer:
    """Bounded, GUID-keyed store of in-flight and recent query traces."""

    enabled = True

    def __init__(
        self,
        *,
        max_traces: int = 1024,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.time,
        sample: int = 1,
        on_event: Callable[[int, TraceEvent], None] | None = None,
    ) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.max_traces = max_traces
        self.ttl = ttl
        self.sample = sample
        self.on_event = on_event
        self._clock = clock
        self._traces: "OrderedDict[int, QueryTrace]" = OrderedDict()

    def wants(self, guid: int) -> bool:
        """Would ``record`` keep events for this GUID?

        Hot paths check this *before* computing explainability extras
        (rule confidence, support) so untraced queries pay nothing.
        """
        return traced_guid(guid, self.sample)

    def record(
        self,
        guid: int,
        node: int,
        kind: str,
        *,
        peer: int | None = None,
        info: str = "",
        ttl: int | None = None,
        antecedent: int | None = None,
        consequent: int | None = None,
        confidence: float | None = None,
        support: int | None = None,
        reason: str = "",
    ) -> None:
        """Append one event to the GUID's trace (creating it on first use)."""
        if not traced_guid(guid, self.sample):
            return
        now = self._clock()
        trace = self._traces.get(guid)
        if trace is None:
            self._evict(now)
            trace = self._traces[guid] = QueryTrace(guid)
        first_local = next(
            (e.ts for e in trace.events if e.node == node), None
        )
        latency = 0.0 if first_local is None else now - first_local
        event = TraceEvent(
            now,
            node,
            kind,
            peer,
            info,
            ttl=ttl,
            antecedent=antecedent,
            consequent=consequent,
            confidence=confidence,
            support=support,
            reason=reason,
            latency=latency,
        )
        trace.events.append(event)
        if self.on_event is not None:
            self.on_event(guid, event)

    def _evict(self, now: float) -> None:
        """Drop expired traces, then the oldest beyond ``max_traces - 1``."""
        expired = [
            guid
            for guid, trace in self._traces.items()
            if now - trace.last_event > self.ttl
        ]
        for guid in expired:
            del self._traces[guid]
        while len(self._traces) >= self.max_traces:
            self._traces.popitem(last=False)

    # -- queries -----------------------------------------------------------
    def trace(self, guid: int) -> QueryTrace | None:
        return self._traces.get(guid)

    def guids(self) -> list[int]:
        """Known GUIDs, oldest first."""
        return list(self._traces)

    def answered_guids(self) -> list[int]:
        return [g for g, t in self._traces.items() if t.answered]

    def __len__(self) -> int:
        return len(self._traces)

    def format(self, guid: int) -> str:
        trace = self.trace(guid)
        if trace is None:
            return f"no trace for guid {guid}"
        return format_trace(trace)

    def export_jsonl(self) -> str:
        """Every retained event as JSON lines (the ``/trace`` payload).

        One line per event, each self-describing with its ``guid``, so a
        collector can concatenate payloads from many nodes and merge by
        GUID without per-node framing.
        """
        lines = []
        for guid, trace in self._traces.items():
            for event in trace.events:
                doc = {"guid": guid}
                doc.update(event.to_dict())
                lines.append(json.dumps(doc, separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")


def format_trace(trace: QueryTrace) -> str:
    """A human-readable hop-by-hop rendering of one query trace."""
    outcome = "answered" if trace.answered else "unanswered"
    header = (
        f"query {trace.guid:#x}: {len(trace.events)} events over "
        f"{trace.hops} nodes ({outcome})"
    )
    t0 = trace.started
    lines = [header]
    lines.extend("  " + event.render(t0) for event in trace.events)
    return "\n".join(lines)


class NullTracer:
    """Tracing disabled: record() is a no-op, lookups find nothing."""

    enabled = False

    def wants(self, guid) -> bool:
        return False

    def record(self, guid, node, kind, **fields) -> None:
        pass

    def trace(self, guid) -> QueryTrace | None:
        return None

    def guids(self) -> list[int]:
        return []

    def answered_guids(self) -> list[int]:
        return []

    def __len__(self) -> int:
        return 0

    def format(self, guid) -> str:
        return "tracing disabled"

    def export_jsonl(self) -> str:
        return ""


NULL_TRACER = NullTracer()
