"""Association-rule routing — the paper's contribution, deployed online.

Each node mines rules ``{upstream neighbor} -> {downstream neighbor}``
from the replies that flow back through it (:class:`NeighborRuleTable`,
an exact sliding-window pair counter with support pruning).  When a query
arrives from a neighbor covered by the rules, it is forwarded only to the
top-k consequent neighbors; otherwise the node floods — the per-node
fallback that lets this method deploy incrementally ("all nodes in the
network do not need to support this routing method").

A second, per-query fallback implements §III-B's "if hits aren't found
... the node can still revert to flooding": if the rule-routed attempt
finds nothing, the origin re-issues the query as a flood (both attempts'
messages are charged to the query).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Sequence

from repro.metrics.traffic import QueryOutcome
from repro.network.engine import QueryEngine
from repro.network.messages import Query
from repro.routing.base import RoutingPolicy, dispatch_select

__all__ = ["NeighborRuleTable", "AssociationRoutingPolicy"]


class NeighborRuleTable:
    """Sliding-window (upstream -> downstream) rule counts for one node.

    Pairs older than ``window`` observations age out; a pair is a *rule*
    while its windowed count reaches ``min_support_count`` (the same
    support-pruning semantics as the offline GENERATE-RULESET, scaled to
    per-node online traffic volumes).
    """

    def __init__(self, *, window: int = 512, min_support_count: int = 2) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_support_count < 1:
            raise ValueError("min_support_count must be >= 1")
        self.window = window
        self.min_support_count = min_support_count
        self._events: deque[tuple[int, int]] = deque()
        self._counts: dict[int, Counter] = {}

    def observe(self, upstream: int, downstream: int) -> None:
        """Record one (query came from, reply came through) event."""
        self._events.append((upstream, downstream))
        self._counts.setdefault(upstream, Counter())[downstream] += 1
        if len(self._events) > self.window:
            old_up, old_down = self._events.popleft()
            counter = self._counts[old_up]
            counter[old_down] -= 1
            if counter[old_down] <= 0:
                del counter[old_down]
                if not counter:
                    del self._counts[old_up]

    def consequents(self, upstream: int, k: int | None = None) -> list[int]:
        """Rule consequents for ``upstream``, highest support first."""
        counter = self._counts.get(upstream)
        if not counter:
            return []
        qualified = [
            (count, down)
            for down, count in counter.items()
            if count >= self.min_support_count
        ]
        qualified.sort(key=lambda cd: (-cd[0], cd[1]))
        out = [down for _count, down in qualified]
        return out[:k] if k is not None else out

    def n_rules(self) -> int:
        return sum(
            1
            for counter in self._counts.values()
            for count in counter.values()
            if count >= self.min_support_count
        )

    def rule_stats(self, upstream: int, downstream: int) -> tuple[int, float]:
        """Windowed ``(support, confidence)`` for one rule.

        Confidence divides the pair's count by every windowed observation
        with the same antecedent — the per-rule measures trace events
        carry for routing explainability.
        """
        counter = self._counts.get(upstream)
        if not counter:
            return 0, 0.0
        support = counter.get(downstream, 0)
        if support == 0:
            return 0, 0.0
        return support, support / sum(counter.values())

    def clear(self) -> None:
        self._events.clear()
        self._counts.clear()


class AssociationRoutingPolicy(RoutingPolicy):
    """Forward covered queries along learned rules; flood otherwise."""

    name = "association"

    def __init__(
        self,
        node_id: int,
        overlay,
        *,
        top_k: int = 2,
        window: int = 512,
        min_support_count: int = 2,
        flood_fallback: bool = True,
    ) -> None:
        super().__init__(node_id, overlay)
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.top_k = top_k
        self.flood_fallback = flood_fallback
        self.rules = NeighborRuleTable(
            window=window, min_support_count=min_support_count
        )
        #: queries this origin resolved on the first (rule-routed) attempt.
        self.rule_resolved_count = 0
        #: queries that needed the per-query flooding fallback.
        self.fallback_count = 0

    # -- transit decision -------------------------------------------------
    def select(self, node: int, upstream: int | None, query: Query) -> Sequence[int]:
        # Locally issued queries use the node's own id as the antecedent
        # (the engine's reply pass credits them the same way).
        antecedent = upstream if upstream is not None else node
        consequents = self.rules.consequents(antecedent, self.top_k)
        if consequents:
            live = [v for v in consequents if v != upstream]
            if live:
                return live
        return self.overlay.topology.neighbors(node)

    # -- origin driver ------------------------------------------------------
    def route_query(self, engine: QueryEngine, query: Query) -> QueryOutcome:
        attempt = engine.broadcast(query, dispatch_select(self.overlay))
        if attempt.hits or not self.flood_fallback:
            if attempt.hits:
                self.rule_resolved_count += 1
            return attempt
        # §III-B: revert to flooding when rule routing finds nothing.
        self.fallback_count += 1
        flood = engine.broadcast(query, lambda node, up, q: self.overlay.topology.neighbors(node))
        return QueryOutcome(
            query_id=query.guid,
            messages=attempt.messages + flood.messages,
            hits=flood.hits,
            first_hit_hops=flood.first_hit_hops,
            duplicates=attempt.duplicates + flood.duplicates,
        )

    # -- learning -----------------------------------------------------------
    def on_reply(self, *, node_id, upstream, downstream, query, provider) -> None:
        self.rules.observe(upstream, downstream)

    def reset(self) -> None:
        self.rules.clear()
