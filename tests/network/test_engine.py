"""Tests for repro.network.engine on hand-built overlays."""

import numpy as np
import pytest

from repro.network.engine import QueryEngine
from repro.network.messages import Query
from repro.network.node import PeerNode
from repro.network.topology import Topology
from repro.workload.interests import InterestProfile


class StubCatalog:
    n_categories = 2

    def category_of(self, file_id):
        return 0


class StubOverlay:
    """Minimal overlay: explicit topology and libraries."""

    def __init__(self, topology, libraries):
        self.topology = topology
        profile = InterestProfile(categories=(0,), weights=(1.0,))
        self._nodes = [
            PeerNode(node_id=i, profile=profile, library=frozenset(libraries.get(i, ())))
            for i in range(topology.n_nodes)
        ]
        self.catalog = StubCatalog()

    def node(self, node_id):
        return self._nodes[node_id]

    @property
    def n_nodes(self):
        return len(self._nodes)


def flood_select(overlay):
    return lambda node, upstream, query: overlay.topology.neighbors(node)


def line_overlay(n, holder):
    """0 - 1 - 2 - ... - (n-1); ``holder`` shares file 5."""
    topo = Topology(n, [(i, i + 1) for i in range(n - 1)])
    return StubOverlay(topo, {holder: {5}})


class TestBroadcast:
    def test_local_hit_costs_nothing(self):
        overlay = line_overlay(3, holder=0)
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=5)
        out = engine.broadcast(q, flood_select(overlay))
        assert out.hits == 1
        assert out.messages == 0
        assert out.first_hit_hops == 0

    def test_hit_at_distance(self):
        overlay = line_overlay(5, holder=3)
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=5)
        out = engine.broadcast(q, flood_select(overlay))
        assert out.hits == 1
        assert out.first_hit_hops == 3
        assert out.messages == 4  # the line has 4 edges within ttl

    def test_ttl_limits_reach(self):
        overlay = line_overlay(5, holder=3)
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=2)
        out = engine.broadcast(q, flood_select(overlay))
        assert out.hits == 0
        assert out.messages == 2

    def test_duplicate_counting_on_cycle(self):
        # Triangle: 0-1, 1-2, 0-2.  Flood from 0 with ttl 2.
        topo = Topology(3, [(0, 1), (1, 2), (0, 2)])
        overlay = StubOverlay(topo, {})
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=2)
        out = engine.broadcast(q, flood_select(overlay))
        # hop1: 0->1, 0->2 (2 msgs); hop2: 1->2 dup, 2->1 dup (2 msgs).
        assert out.messages == 4
        assert out.duplicates == 2

    def test_no_forward_back_to_upstream(self):
        overlay = line_overlay(3, holder=2)
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=5)
        out = engine.broadcast(q, flood_select(overlay))
        # 0->1, 1->2 only; node 1 does not send back to 0.
        assert out.messages == 2

    def test_multiple_providers_counted(self):
        topo = Topology(4, [(0, 1), (0, 2), (0, 3)])
        overlay = StubOverlay(topo, {1: {5}, 3: {5}})
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=1)
        out = engine.broadcast(q, flood_select(overlay))
        assert out.hits == 2
        assert out.first_hit_hops == 1


class RecordingPolicy:
    def __init__(self):
        self.events = []

    def on_reply(self, *, node_id, upstream, downstream, query, provider):
        self.events.append((node_id, upstream, downstream, provider))


class TestReplyFeedback:
    def test_reverse_path_events(self):
        overlay = line_overlay(4, holder=3)
        policies = {}
        for i in range(4):
            policy = RecordingPolicy()
            overlay.node(i).policy = policy
            policies[i] = policy
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=5)
        engine.broadcast(q, flood_select(overlay))
        # Reply walks 3 -> 2 -> 1 -> 0.
        assert policies[2].events == [(2, 1, 3, 3)]
        assert policies[1].events == [(1, 0, 2, 3)]
        # At the origin, the upstream is the node itself (local user).
        assert policies[0].events == [(0, 0, 1, 3)]
        assert policies[3].events == []  # the provider gets no feedback

    def test_feedback_disabled(self):
        overlay = line_overlay(3, holder=2)
        policy = RecordingPolicy()
        overlay.node(1).policy = policy
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=5)
        engine.broadcast(q, flood_select(overlay), feedback=False)
        assert policy.events == []


class TestWalk:
    def test_walker_finds_content_on_line(self):
        overlay = line_overlay(6, holder=5)
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=10)
        out = engine.walk(q, n_walkers=1, rng=np.random.default_rng(0))
        # On a line with no-bounce-back, the single walker marches to 5.
        assert out.hits == 1
        assert out.first_hit_hops == 5
        assert out.messages == 5

    def test_walk_message_budget(self):
        overlay = line_overlay(30, holder=29)
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=4)
        out = engine.walk(q, n_walkers=3, rng=np.random.default_rng(1))
        assert out.messages <= 3 * 4

    def test_local_hit(self):
        overlay = line_overlay(3, holder=0)
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=4)
        out = engine.walk(q, n_walkers=2, rng=np.random.default_rng(2))
        assert out.hits == 1 and out.messages == 0

    def test_rejects_zero_walkers(self):
        overlay = line_overlay(3, holder=2)
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=4)
        with pytest.raises(ValueError):
            engine.walk(q, n_walkers=0)


class TestProbe:
    def test_probe_counts_messages(self):
        overlay = line_overlay(4, holder=2)
        engine = QueryEngine(overlay)
        q = Query(guid=1, origin=0, file_id=5, category=0, ttl=1)
        hits, messages = engine.probe(q, [1, 2, 3])
        assert hits == [2]
        assert messages == 3


class TestQueryValidation:
    def test_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            Query(guid=1, origin=0, file_id=5, category=0, ttl=0)

    def test_rejects_negative_file(self):
        with pytest.raises(ValueError):
            Query(guid=1, origin=0, file_id=-1, category=0, ttl=1)
