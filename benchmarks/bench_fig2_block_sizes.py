"""Bench `fig2`: Sliding Window coverage across block sizes.

Paper Fig. 2: coverage over time for different block sizes is very
similar — "only a small number of query-reply pairs are needed".
"""

from benchmarks.conftest import run_and_report


def test_fig2_block_sizes(benchmark):
    result = run_and_report(benchmark, "fig2")
    coverages = result.extras["coverages"]
    assert len(coverages) == 4
    assert max(coverages.values()) - min(coverages.values()) < 0.15
