"""repro.scale — multi-process cluster + open-loop saturation benchmarking.

The single-machine scale-out layer: everything below here runs servents
in one process (one core); :mod:`repro.scale` spawns **one process per
node** and measures what the system can actually sustain.

* :mod:`~repro.scale.supervisor` — spawn/wire/watch a process-per-node
  cluster over real TCP, with graceful stop, hard kill, crash detection
  and port-pinned restarts (the :mod:`repro.faults` semantics, across
  process boundaries).
* :mod:`~repro.scale.worker` — the spawned entry point: one
  :class:`~repro.live.node.LiveServent` plus a control pipe.
* :mod:`~repro.scale.loadgen` — seeded **open-loop** load generation
  (weighted task mix, think-time distributions, deadline scheduling that
  never slows when the target does) with HDR-style latency histograms.
* :mod:`~repro.scale.ramp` — step offered RPS to trace a saturation
  curve and read off the max sustainable QPS (per core).
* :mod:`~repro.scale.histogram` — geometric-bucket latency histogram
  with bounded relative error, mergeable across clients and processes.
* :mod:`~repro.scale.loop` — optional uvloop installation with a silent
  stdlib fallback.

Entry points: ``python -m benchmarks.bench_live_scale`` for the gated
saturation benchmark, ``python -m repro.cli cluster`` / ``load-test``
for interactive use.
"""

from repro.scale.histogram import LatencyHistogram
from repro.scale.loadgen import (
    CLIENT_ID_BASE,
    TASK_BROWSE,
    TASK_IDLE,
    TASK_QUERY,
    LoadClient,
    LoadConfig,
    LoadGenerator,
    LoadResult,
    ScheduledTask,
    build_schedule,
)
from repro.scale.loop import install_uvloop, loop_implementation
from repro.scale.ramp import (
    format_saturation_markdown,
    run_ramp,
    run_ramp_async,
    saturation_summary,
)
from repro.scale.supervisor import (
    ClusterSupervisor,
    WorkerHandle,
    partitioned_specs,
)
from repro.scale.worker import WorkerSpec, flight_path

__all__ = [
    "CLIENT_ID_BASE",
    "ClusterSupervisor",
    "LatencyHistogram",
    "LoadClient",
    "LoadConfig",
    "LoadGenerator",
    "LoadResult",
    "ScheduledTask",
    "TASK_BROWSE",
    "TASK_IDLE",
    "TASK_QUERY",
    "WorkerHandle",
    "WorkerSpec",
    "build_schedule",
    "flight_path",
    "format_saturation_markdown",
    "install_uvloop",
    "loop_implementation",
    "partitioned_specs",
    "run_ramp",
    "run_ramp_async",
    "saturation_summary",
]
