"""Calibration contract: the synthetic trace lands in the paper's bands.

These are the acceptance tests for DESIGN.md §7 — if the trace-generator
defaults drift, these fail before any benchmark does.
"""

import numpy as np
import pytest

from repro.core.strategies import (
    AdaptiveSlidingWindow,
    LazySlidingWindow,
    SlidingWindow,
    StaticRuleset,
)
from repro.core.streaming import StreamingRules
from repro.trace.blocks import blocks_from_arrays
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

N_BLOCKS = 40
SEED = 20060814


@pytest.fixture(scope="module")
def blocks():
    cfg = MonitorTraceConfig()
    gen = MonitorTraceGenerator(cfg, seed=SEED)
    arrays = gen.generate_pair_arrays(N_BLOCKS * cfg.block_size)
    return blocks_from_arrays(arrays.source, arrays.replier, block_size=cfg.block_size)


@pytest.fixture(scope="module")
def runs(blocks):
    return {
        "sliding": SlidingWindow().run(blocks),
        "lazy": LazySlidingWindow().run(blocks),
        "static": StaticRuleset().run(blocks),
        "adaptive": AdaptiveSlidingWindow().run(blocks),
        "streaming": StreamingRules(min_support_count=5).run(blocks),
    }


class TestPaperBands:
    def test_sliding_window_fig1(self, runs):
        assert 0.72 <= runs["sliding"].average_coverage <= 0.88
        assert 0.70 <= runs["sliding"].average_success <= 0.88

    def test_lazy_fig3(self, runs):
        assert 0.45 <= runs["lazy"].average_coverage <= 0.72
        assert 0.42 <= runs["lazy"].average_success <= 0.72

    def test_static_decays(self, runs):
        succ = runs["static"].success_series
        tail = float(np.mean(succ[16:]))
        assert tail < 0.08  # "almost 0 around the 16th trial, never rose"
        plateau = float(np.mean(runs["static"].coverage_series[2:12]))
        assert 0.25 <= plateau <= 0.55  # "remained around 0.4"

    def test_adaptive_fig4(self, runs):
        run = runs["adaptive"]
        assert 0.70 <= run.average_coverage <= 0.86
        assert 0.66 <= run.average_success <= 0.86
        assert 1.2 <= run.blocks_per_generation <= 2.6  # paper: ~1.7

    def test_strategy_ordering(self, runs):
        """The paper's qualitative ordering on both measures."""
        for measure in ("average_coverage", "average_success"):
            static = getattr(runs["static"], measure)
            lazy = getattr(runs["lazy"], measure)
            sliding = getattr(runs["sliding"], measure)
            adaptive = getattr(runs["adaptive"], measure)
            streaming = getattr(runs["streaming"], measure)
            assert static < lazy < sliding
            assert lazy < adaptive
            assert sliding <= streaming

    def test_adaptive_regenerates_less_than_sliding(self, runs):
        assert runs["adaptive"].n_generations < runs["sliding"].n_generations
