"""TTL-limited flooding — the Gnutella baseline."""

from __future__ import annotations

from typing import Sequence

from repro.network.messages import Query
from repro.routing.base import RoutingPolicy

__all__ = ["FloodingPolicy"]


class FloodingPolicy(RoutingPolicy):
    """Forward every query to every neighbor (minus the upstream).

    The engine enforces TTL and duplicate suppression; this policy is the
    paper's adversary: it reaches everything within the TTL horizon at the
    cost of a message per edge in that horizon.
    """

    name = "flooding"

    def select(self, node: int, upstream: int | None, query: Query) -> Sequence[int]:
        return self.overlay.topology.neighbors(node)
