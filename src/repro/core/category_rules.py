"""Category-dimension rules (the paper's §VI query-string extension).

§VI proposes "adding dimensions such as the query strings during rule
generation and then clustering based on this information" to raise rule
quality.  This module implements that extension for the trace-driven
engine: antecedents become **(source neighbor, interest category)** pairs
instead of bare neighbors, where the category is recovered from the query
string (our generated query strings encode it; real deployments would
cluster query terms — we ship a keyword clusterer in
:func:`categorize_queries` for free-form strings).

The win: a neighbor whose queries span several interests is served by a
*different* reply path per interest; host-only rules merge those paths
(the top-k consequents may be wrong for the minority interests), while
(host, category) rules keep them apart.  The ``category-rules``
experiment quantifies the success gain over host-only rules.

Coverage semantics are hierarchical, mirroring how a deployment would
behave: a query is covered if its (source, category) antecedent has
rules, *falling back* to the source's host-only rules otherwise — the
extension strictly refines the baseline rather than fragmenting it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.evaluation import RulesetTestResult
from repro.core.generation import generate_ruleset
from repro.core.rules import RuleSet
from repro.trace.blocks import PairBlock

__all__ = [
    "CategorizedBlock",
    "CategoryRuleSet",
    "generate_category_ruleset",
    "category_ruleset_test",
    "categorize_queries",
]


@dataclass(frozen=True)
class CategorizedBlock:
    """A :class:`PairBlock` plus the per-pair query category."""

    block: PairBlock
    categories: np.ndarray

    def __post_init__(self) -> None:
        if len(self.categories) != len(self.block):
            raise ValueError("categories must align with the block's pairs")

    def __len__(self) -> int:
        return len(self.block)

    @classmethod
    def from_arrays(cls, sources, repliers, categories, *, index: int = 0):
        block = PairBlock(
            sources=np.asarray(sources, dtype=np.int64),
            repliers=np.asarray(repliers, dtype=np.int64),
            index=index,
        )
        return cls(block=block, categories=np.asarray(categories, dtype=np.int64))


class CategoryRuleSet:
    """Rules keyed by (source, category), with a host-only fallback tier."""

    def __init__(self, fine: RuleSet, fallback: RuleSet, n_categories: int) -> None:
        self.fine = fine
        self.fallback = fallback
        self.n_categories = n_categories

    def __len__(self) -> int:
        return len(self.fine) + len(self.fallback)

    def covers(self, source: int, category: int) -> bool:
        return self.fine.covers(self._key(source, category)) or self.fallback.covers(
            source
        )

    def matches(self, source: int, category: int, replier: int) -> bool:
        key = self._key(source, category)
        if self.fine.covers(key):
            return self.fine.matches(key, replier)
        return self.fallback.matches(source, replier)

    def consequents_for(
        self, source: int, category: int, k: int | None = None
    ) -> list[int]:
        key = self._key(source, category)
        fine = self.fine.consequents_for(key, k)
        if fine:
            return fine
        return self.fallback.consequents_for(source, k)

    def _key(self, source: int, category: int) -> int:
        if not 0 <= category < self.n_categories:
            raise ValueError(f"category {category} out of range")
        return source * self.n_categories + category


def generate_category_ruleset(
    cblock: CategorizedBlock,
    *,
    n_categories: int,
    min_support_count: int = 10,
    top_k: int | None = None,
) -> CategoryRuleSet:
    """GENERATE-RULESET over (source, category) antecedents + fallback tier.

    The fine tier uses the same support threshold as the paper's baseline;
    the fallback (host-only) tier is generated from the same block so
    queries whose (source, category) never reached the threshold still get
    the baseline behaviour.
    """
    sources = cblock.block.sources
    keys = sources * np.int64(n_categories) + cblock.categories
    fine_block = PairBlock(
        sources=keys, repliers=cblock.block.repliers, index=cblock.block.index
    )
    fine = generate_ruleset(
        fine_block, min_support_count=min_support_count, top_k=top_k
    )
    fallback = generate_ruleset(
        cblock.block, min_support_count=min_support_count, top_k=top_k
    )
    return CategoryRuleSet(fine=fine, fallback=fallback, n_categories=n_categories)


def category_ruleset_test(
    ruleset: CategoryRuleSet, cblock: CategorizedBlock
) -> RulesetTestResult:
    """RULESET-TEST with hierarchical (fine -> fallback) matching."""
    n_total = len(cblock)
    if n_total == 0:
        return RulesetTestResult(n_total=0, n_covered=0, n_successful=0)
    sources = cblock.block.sources
    repliers = cblock.block.repliers
    keys = sources * np.int64(ruleset.n_categories) + cblock.categories

    fine_covered = np.isin(keys, ruleset.fine.antecedent_array)
    fallback_covered = np.isin(sources, ruleset.fallback.antecedent_array)
    covered = fine_covered | fallback_covered
    n_covered = int(covered.sum())
    if n_covered == 0:
        return RulesetTestResult(n_total=n_total, n_covered=0, n_successful=0)

    fine_keys = (keys.astype(np.int64) << 32) | repliers
    fine_hit = _sorted_isin(fine_keys, ruleset.fine.pair_key_array)
    fb_keys = (sources.astype(np.int64) << 32) | repliers
    fb_hit = _sorted_isin(fb_keys, ruleset.fallback.pair_key_array)
    successful = np.where(fine_covered, fine_hit, fb_hit)
    n_successful = int((successful & covered).sum())
    return RulesetTestResult(
        n_total=n_total, n_covered=n_covered, n_successful=n_successful
    )


def _sorted_isin(values: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    if sorted_keys.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.searchsorted(sorted_keys, values)
    pos[pos == len(sorted_keys)] = len(sorted_keys) - 1
    return sorted_keys[pos] == values


def categorize_queries(
    query_strings: Sequence[str], *, n_clusters: int
) -> np.ndarray:
    """Cluster free-form query strings into ``n_clusters`` categories.

    A deliberately simple keyword clusterer for real traces whose strings
    do not encode a category: each query is labelled by its *topic token*
    — the token that recurs most across the collection (shared interest
    vocabulary), ties broken lexicographically — hashed into
    ``n_clusters`` buckets.  Collection-unique tokens (file names, typos)
    are ignored unless a query has nothing else.  Generated traces should
    instead use the exact category from
    :meth:`repro.workload.querygen.QueryTextModel.parse`.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    token_freq: Counter[str] = Counter()
    tokenized = []
    for text in query_strings:
        tokens = [t for t in text.lower().split() if t]
        tokenized.append(tokens)
        token_freq.update(set(tokens))
    labels = np.empty(len(tokenized), dtype=np.int64)
    for i, tokens in enumerate(tokenized):
        if not tokens:
            labels[i] = 0
            continue
        shared = [t for t in tokens if token_freq[t] > 1]
        pool = shared or tokens
        topic = max(pool, key=lambda t: (token_freq[t], t))
        # Stable cross-run hashing (builtin hash is salted per process).
        digest = 0
        for ch in topic:
            digest = (digest * 131 + ord(ch)) % (1 << 31)
        labels[i] = digest % n_clusters
    return labels
