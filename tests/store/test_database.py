"""Tests for repro.store.database."""

import pytest

from repro.store.database import Database
from repro.store.table import Column, Table


class TestDatabase:
    def test_create_and_get(self):
        db = Database("test")
        table = db.create_table("queries", ["guid"])
        assert db.table("queries") is table

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_table("t", ["a"])
        with pytest.raises(ValueError):
            db.create_table("t", ["b"])

    def test_add_external_table(self):
        db = Database()
        table = Table("pairs", ["guid"])
        db.add_table(table)
        assert "pairs" in db

    def test_add_duplicate_rejected(self):
        db = Database()
        db.add_table(Table("t", ["a"]))
        with pytest.raises(ValueError):
            db.add_table(Table("t", ["b"]))

    def test_drop(self):
        db = Database()
        db.create_table("t", ["a"])
        db.drop_table("t")
        assert "t" not in db

    def test_drop_missing(self):
        with pytest.raises(KeyError):
            Database().drop_table("nope")

    def test_missing_table(self):
        with pytest.raises(KeyError):
            Database().table("nope")

    def test_total_rows(self):
        db = Database()
        t1 = db.create_table("a", ["x"])
        t1.append((1,))
        t2 = db.create_table("b", ["y"])
        t2.extend([(1,), (2,)])
        assert db.total_rows() == 3

    def test_table_names(self):
        db = Database()
        db.create_table("a", ["x"])
        db.create_table("b", ["y"])
        assert set(db.table_names()) == {"a", "b"}


class TestSaveLoad:
    def _capture_db(self):
        db = Database("capture")
        queries = db.create_table(
            "queries",
            [Column("guid", int), Column("keywords", str), Column("ttl", int)],
        )
        queries.extend([(1, "jazz", 7), (2, "mesa", 5), (3, "tundra", 7)])
        replies = db.create_table(
            "replies", [Column("guid", int), Column("score", float)]
        )
        replies.extend([(1, 0.5), (3, 1.0)])
        db.create_table("empty", [Column("x")])
        return db

    def test_round_trip_preserves_everything(self, tmp_path):
        db = self._capture_db()
        path = tmp_path / "capture.jsonl"
        assert db.save(path) == 5
        loaded = Database.load(path)
        assert loaded.name == "capture"
        assert set(loaded.table_names()) == set(db.table_names())
        for name in db.table_names():
            original, copy = db.table(name), loaded.table(name)
            assert copy.column_names == original.column_names
            assert [c.dtype for c in copy.columns] == [c.dtype for c in original.columns]
            assert list(copy.iter_rows()) == list(original.iter_rows())

    def test_loaded_tables_still_type_check(self, tmp_path):
        db = self._capture_db()
        path = tmp_path / "db.jsonl"
        db.save(path)
        loaded = Database.load(path)
        with pytest.raises(TypeError):
            loaded.table("queries").append(("oops", "jazz", 7))

    def test_unserializable_dtype_rejected_before_writing(self, tmp_path):
        db = Database()
        t = db.create_table("t", [Column("payload", bytes)])
        t.append((b"\x00",))
        path = tmp_path / "db.jsonl"
        with pytest.raises(ValueError, match="dtype"):
            db.save(path)
        assert not path.exists()

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            Database.load(path)

    def test_load_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"table": "t", "columns": [{"name": "x", "dtype": null}]}\n')
        with pytest.raises(ValueError, match="missing database header"):
            Database.load(path)

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no database header"):
            Database.load(path)

    def test_load_rejects_unknown_dtype_name(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"database": "d"}\n'
            '{"table": "t", "columns": [{"name": "x", "dtype": "complex"}]}\n'
        )
        with pytest.raises(ValueError, match="unknown column dtype"):
            Database.load(path)

    def test_to_rows(self):
        t = Table("t", [Column("a", int), Column("b", str)])
        t.extend([(1, "x"), (2, "y")])
        assert t.to_rows() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        assert Table("e", ["a"]).to_rows() == []
