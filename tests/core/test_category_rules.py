"""Tests for repro.core.category_rules (the §VI query-string extension)."""

import numpy as np
import pytest

from repro.core.category_rules import (
    CategorizedBlock,
    categorize_queries,
    category_ruleset_test,
    generate_category_ruleset,
)

N_CATS = 4


def cblock(triples, index=0):
    """Build a CategorizedBlock from (source, category, replier) triples."""
    if triples:
        sources, categories, repliers = zip(*triples)
    else:
        sources, categories, repliers = (), (), ()
    return CategorizedBlock.from_arrays(sources, repliers, categories, index=index)


# Source 1 queries two categories served by different repliers.
TRAIN = cblock(
    [(1, 0, 10)] * 6 + [(1, 1, 11)] * 4 + [(2, 2, 12)] * 5
)


class TestCategorizedBlock:
    def test_alignment_enforced(self):
        from repro.trace.blocks import PairBlock

        block = PairBlock(
            sources=np.array([1], dtype=np.int64),
            repliers=np.array([2], dtype=np.int64),
        )
        with pytest.raises(ValueError):
            CategorizedBlock(block=block, categories=np.array([0, 1]))

    def test_len(self):
        assert len(TRAIN) == 15


class TestGenerateCategoryRuleset:
    def test_fine_rules_keyed_by_category(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS, min_support_count=3)
        assert rs.consequents_for(1, 0) == [10]
        assert rs.consequents_for(1, 1) == [11]
        assert rs.consequents_for(2, 2) == [12]

    def test_fallback_for_unseen_category(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS, min_support_count=3)
        # Source 1 never queried category 3: fall back to host-only rules.
        fallback = rs.consequents_for(1, 3)
        assert 10 in fallback  # host-only dominant consequent

    def test_covers_hierarchy(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS, min_support_count=3)
        assert rs.covers(1, 0)
        assert rs.covers(1, 3)  # via fallback
        assert not rs.covers(99, 0)

    def test_matches_uses_fine_tier_when_present(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS, min_support_count=3)
        assert rs.matches(1, 0, 10)
        assert not rs.matches(1, 0, 11)  # 11 serves category 1, not 0
        assert rs.matches(1, 1, 11)

    def test_top_k_applies_to_both_tiers(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS, min_support_count=1, top_k=1)
        assert rs.consequents_for(1, 3) == [10]  # fallback truncated to top-1

    def test_category_bounds_checked(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS, min_support_count=3)
        with pytest.raises(ValueError):
            rs.covers(1, N_CATS)


class TestCategoryRulesetTest:
    def test_perfect_on_training_data(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS, min_support_count=1)
        result = category_ruleset_test(rs, TRAIN)
        assert result.coverage == 1.0
        assert result.success == 1.0

    def test_category_separation_beats_host_only_at_top1(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS, min_support_count=3, top_k=1)
        test = cblock([(1, 0, 10)] * 5 + [(1, 1, 11)] * 5)
        result = category_ruleset_test(rs, test)
        assert result.success == 1.0  # both interests routed correctly
        # Host-only top-1 rules would miss the category-1 half.
        from repro.core.evaluation import ruleset_test
        from repro.core.generation import generate_ruleset

        host_rs = generate_ruleset(TRAIN.block, min_support_count=3, top_k=1)
        host_result = ruleset_test(host_rs, test.block)
        assert host_result.success == pytest.approx(0.5)

    def test_empty_block(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS)
        result = category_ruleset_test(rs, cblock([]))
        assert result.n_total == 0

    def test_uncovered_source(self):
        rs = generate_category_ruleset(TRAIN, n_categories=N_CATS, min_support_count=3)
        result = category_ruleset_test(rs, cblock([(42, 0, 10)] * 3))
        assert result.coverage == 0.0


class TestCategorizeQueries:
    def test_identical_rare_token_clusters_together(self):
        queries = [
            "free jazz album",
            "jazz collection",
            "rock anthem",
            "rock ballad live",
        ]
        labels = categorize_queries(queries, n_clusters=16)
        # 'jazz' is the distinctive token of the first two, 'anthem'/'ballad'
        # are unique — at minimum the jazz pair must agree.
        assert labels[0] == labels[1]

    def test_labels_in_range(self):
        labels = categorize_queries(["a b", "c d", ""], n_clusters=5)
        assert ((labels >= 0) & (labels < 5)).all()

    def test_rejects_bad_cluster_count(self):
        with pytest.raises(ValueError):
            categorize_queries(["x"], n_clusters=0)
