"""Teardown and backoff regressions: aclose reaping, flush-then-close,
seeded retry jitter.  The leak tests run with ResourceWarning promoted
to an error, so an abandoned transport or task fails loudly."""

import asyncio
import gc

import pytest

from repro.live.connection import (
    ConnectionConfig,
    PeerConnection,
    accept_handshake,
    aclose_writer,
    backoff_delays,
    dial_peer,
)
from repro.live.node import LiveServent
from repro.live.stats import NodeStats


def run(coro, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


FAST = ConnectionConfig(
    keepalive_interval=0.0,
    idle_timeout=0.0,
    retry_initial_delay=0.02,
    retry_max_delay=0.1,
)


async def sink_server(node_id=9):
    """A handshaking server that accumulates every byte it is sent."""
    sink = {"data": b"", "eof": asyncio.Event()}

    async def on_accept(reader, writer):
        await accept_handshake(reader, writer, node_id)
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                break
            sink["data"] += chunk
        sink["eof"].set()
        await aclose_writer(writer)

    server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1], sink


def task_baseline():
    """Snapshot the tasks alive before the test body does anything.

    ``run()`` wraps each body in ``asyncio.wait_for``, whose wrapper task
    stays pending until the body returns — a baseline keeps it (and the
    body's own task) out of the stray-task check.
    """
    return set(asyncio.all_tasks())


def stray_tasks(baseline):
    current = asyncio.current_task()
    return [
        t
        for t in asyncio.all_tasks()
        if t is not current and t not in baseline and not t.done()
    ]


async def assert_no_strays(baseline, timeout=1.0):
    """Tasks that are merely a scheduling tick from exiting (a peer's
    accept handler draining EOF) get a short grace; leaked tasks never
    finish and still fail the assertion."""
    deadline = asyncio.get_running_loop().time() + timeout
    while stray_tasks(baseline) and (
        asyncio.get_running_loop().time() < deadline
    ):
        await asyncio.sleep(0.01)
    assert stray_tasks(baseline) == []


class TestAclose:
    def test_aclose_reaps_tasks_and_transport(self):
        async def body():
            baseline = task_baseline()
            server, port, _sink = await sink_server()
            reader, writer, peer_id = await dial_peer(
                "127.0.0.1", port, 0, FAST
            )
            conn = PeerConnection(
                peer_id,
                reader,
                writer,
                config=FAST,
                stats=NodeStats(),
                on_message=lambda *a: None,
            )
            conn.start()
            await conn.aclose()
            assert conn.closed
            assert all(t.done() for t in conn._tasks)
            server.close()
            await server.wait_closed()
            await assert_no_strays(baseline)

        run(body())

    @pytest.mark.filterwarnings("error::ResourceWarning")
    def test_tight_reconnect_loop_leaks_nothing(self):
        async def body():
            baseline = task_baseline()
            server, port, _sink = await sink_server()
            for _ in range(15):
                reader, writer, peer_id = await dial_peer(
                    "127.0.0.1", port, 0, FAST
                )
                conn = PeerConnection(
                    peer_id,
                    reader,
                    writer,
                    config=FAST,
                    stats=NodeStats(),
                    on_message=lambda *a: None,
                )
                conn.start()
                await conn.aclose()
            server.close()
            await server.wait_closed()
            await assert_no_strays(baseline)

        run(body())
        gc.collect()  # surfaces unclosed transports as ResourceWarnings

    @pytest.mark.filterwarnings("error::ResourceWarning")
    def test_supervised_reconnect_cycles_leak_nothing(self):
        """Kill and re-listen under one supervisor: the re-dial path must
        reap each dead connection before dialing the next."""

        async def body():
            baseline = task_baseline()
            peer = LiveServent(7, port=0, config=FAST)
            await peer.start()
            port = peer.port
            node = LiveServent(0, port=0, config=FAST)
            await node.start()
            node.add_peer("127.0.0.1", port, peer_id=7)
            for _ in range(3):
                while 7 not in node.connected_peers:
                    await asyncio.sleep(0.005)
                await peer.close()
                peer = LiveServent(7, port=port, config=FAST)
                await peer.start()
            while 7 not in node.connected_peers:
                await asyncio.sleep(0.005)
            assert node.stats.reconnects >= 3
            await node.close()
            await peer.close()
            await assert_no_strays(baseline)

        run(body())
        gc.collect()

    def test_flush_delivers_queued_frames(self):
        async def body():
            server, port, sink = await sink_server()
            reader, writer, peer_id = await dial_peer(
                "127.0.0.1", port, 0, FAST
            )
            conn = PeerConnection(
                peer_id,
                reader,
                writer,
                config=FAST,
                stats=NodeStats(),
                on_message=lambda *a: None,
            )
            conn.start()
            payload = b"x" * 100
            for _ in range(50):
                assert conn.send(payload)
            await conn.aclose(flush=True)
            await asyncio.wait_for(sink["eof"].wait(), 5.0)
            assert len(sink["data"]) == 50 * len(payload)
            server.close()
            await server.wait_closed()

        run(body())

    def test_draining_connection_refuses_new_frames(self):
        async def body():
            server, port, sink = await sink_server()
            reader, writer, peer_id = await dial_peer(
                "127.0.0.1", port, 0, FAST
            )
            conn = PeerConnection(
                peer_id,
                reader,
                writer,
                config=FAST,
                stats=NodeStats(),
                on_message=lambda *a: None,
            )
            conn.start()
            assert conn.send(b"before")
            closer = asyncio.ensure_future(conn.aclose(flush=True))
            await asyncio.sleep(0)  # _draining is set synchronously
            assert not conn.send(b"after")
            await closer
            await asyncio.wait_for(sink["eof"].wait(), 5.0)
            assert sink["data"] == b"before"
            server.close()
            await server.wait_closed()

        run(body())


class TestJitteredBackoff:
    CONFIG = ConnectionConfig(
        retry_initial_delay=0.5,
        retry_backoff=2.0,
        retry_max_delay=3.0,
        retry_jitter=0.5,
        retry_jitter_seed=99,
    )

    def take(self, salt, n=6):
        gen = backoff_delays(self.CONFIG, salt=salt)
        return [next(gen) for _ in range(n)]

    def test_same_seed_and_salt_replays(self):
        assert self.take(salt=1) == self.take(salt=1)

    def test_different_salts_decorrelate(self):
        assert self.take(salt=1) != self.take(salt=2)

    def test_jitter_stays_within_bounds(self):
        bases = [0.5, 1.0, 2.0, 3.0, 3.0, 3.0]
        for delay, base in zip(self.take(salt=5), bases):
            assert base * 0.5 <= delay <= base

    def test_zero_jitter_keeps_exact_exponential(self):
        config = ConnectionConfig(
            retry_initial_delay=0.5, retry_backoff=2.0, retry_max_delay=3.0
        )
        gen = backoff_delays(config, salt=123)
        assert [next(gen) for _ in range(6)] == [0.5, 1.0, 2.0, 3.0, 3.0, 3.0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ConnectionConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ConnectionConfig(retry_jitter=1.5)
        with pytest.raises(ValueError):
            ConnectionConfig(retry_jitter=-0.1)
        with pytest.raises(ValueError):
            ConnectionConfig(close_flush_timeout=0.0)
