"""Leaf-to-super-peer membership with deterministic re-attachment.

Each leaf attaches to exactly one super-peer, which keeps an exact
index of the leaf's shared files (the seed baseline's tier-1 design).
This module owns that membership state so the network simulator can
treat super-peer failure as a pure state transition:

1. the dead super-peer's community is orphaned and its index dropped;
2. each orphan re-attaches to the *least loaded* live super-peer
   (ties broken by the lowest super-peer id), processed in leaf-id
   order — a deterministic rule, so churn experiments replay exactly;
3. the new home indexes the orphan's library.

Load-based placement keeps communities balanced under churn, which
matters for rule quality: a super-peer's mined table is only as good
as the traffic volume of the community behind it.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["CommunityIndex"]


class CommunityIndex:
    """Membership map plus per-super-peer exact content indices."""

    def __init__(self, n_superpeers: int) -> None:
        if n_superpeers < 1:
            raise ValueError("n_superpeers must be >= 1")
        self.n_superpeers = int(n_superpeers)
        self._home: dict[int, int] = {}  # leaf -> super-peer
        self._library: dict[int, frozenset[int]] = {}  # leaf -> file ids
        self._members: list[list[int]] = [[] for _ in range(n_superpeers)]
        # super-peer -> file id -> leaves sharing it.
        self._index: list[dict[int, list[int]]] = [
            {} for _ in range(n_superpeers)
        ]
        self._live = [True] * n_superpeers

    # -- membership -------------------------------------------------------
    def attach(self, leaf: int, superpeer: int, library: frozenset[int]) -> None:
        if not self._live[superpeer]:
            raise ValueError(f"super-peer {superpeer} is not live")
        if leaf in self._home:
            raise ValueError(f"leaf {leaf} is already attached")
        self._home[leaf] = superpeer
        self._library[leaf] = library
        self._members[superpeer].append(leaf)
        index = self._index[superpeer]
        for file_id in library:
            index.setdefault(file_id, []).append(leaf)

    def superpeer_of(self, leaf: int) -> int:
        return self._home[leaf]

    def members(self, superpeer: int) -> list[int]:
        return list(self._members[superpeer])

    def load(self, superpeer: int) -> int:
        return len(self._members[superpeer])

    def is_live(self, superpeer: int) -> bool:
        return self._live[superpeer]

    def live_superpeers(self) -> list[int]:
        return [sp for sp in range(self.n_superpeers) if self._live[sp]]

    # -- content lookup -----------------------------------------------------
    def lookup(self, superpeer: int, file_id: int) -> list[int]:
        """Leaves in one community sharing ``file_id`` (exact index)."""
        return self._index[superpeer].get(file_id, [])

    def index_size(self, superpeer: int) -> int:
        return sum(len(leaves) for leaves in self._index[superpeer].values())

    # -- failure handling ---------------------------------------------------
    def kill(self, superpeer: int) -> list[int]:
        """Mark a super-peer dead; returns its orphaned leaves in id order.

        The dead node's index is dropped (its knowledge of who shares
        what dies with it); the caller re-homes the orphans via
        :meth:`reattach`.
        """
        if not self._live[superpeer]:
            return []
        self._live[superpeer] = False
        orphans = sorted(self._members[superpeer])
        self._members[superpeer] = []
        self._index[superpeer] = {}
        for leaf in orphans:
            del self._home[leaf]
        return orphans

    def reattach(self, orphans: Iterable[int]) -> dict[int, int]:
        """Deterministically re-home orphaned leaves; returns leaf -> new home.

        Each orphan (in leaf-id order) joins the least-loaded live
        super-peer, ties broken by the lowest id.  Loads update as
        orphans land, so a batch spreads instead of piling onto one
        node.
        """
        live = self.live_superpeers()
        if not live:
            raise ValueError("no live super-peers to re-attach to")
        placement: dict[int, int] = {}
        for leaf in sorted(orphans):
            target = min(live, key=lambda sp: (self.load(sp), sp))
            self.attach(leaf, target, self._library[leaf])
            placement[leaf] = target
        return placement
