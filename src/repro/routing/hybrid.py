"""Shortcuts + association rules hybrid (the paper's §VI combination).

§VI: "For interest-based shortcuts, association rules could be used to
route queries that have not been successfully replied to when using the
shortcuts.  This would serve as one last chance to avoid flooding."

:class:`HybridShortcutAssociationPolicy` implements that escalation at
the origin:

1. probe the learned shortcut list (1 message per probe);
2. on a miss, attempt rule-based forwarding (transit nodes still apply
   their own rules / flood fallback per node);
3. only if that also misses, revert to a full flood.

Both learning structures update from the same reply feedback, so the
policy composes the two papers' mechanisms rather than re-implementing
them.
"""

from __future__ import annotations

from repro.metrics.traffic import QueryOutcome
from repro.network.engine import QueryEngine
from repro.network.messages import Query
from repro.routing.association import AssociationRoutingPolicy
from repro.routing.base import dispatch_select
from repro.routing.shortcuts import InterestShortcutsPolicy

__all__ = ["HybridShortcutAssociationPolicy"]


class HybridShortcutAssociationPolicy(AssociationRoutingPolicy):
    """Shortcut probes, then rule routing, then flooding."""

    name = "hybrid"

    def __init__(
        self,
        node_id: int,
        overlay,
        *,
        shortcut_capacity: int = 10,
        **kwargs,
    ) -> None:
        kwargs.setdefault("flood_fallback", True)
        super().__init__(node_id, overlay, **kwargs)
        # Compose an embedded shortcuts policy for its list maintenance.
        self._shortcuts = InterestShortcutsPolicy(
            node_id, overlay, capacity=shortcut_capacity
        )

    # -- transit behaviour: inherited association select ------------------

    def route_query(self, engine: QueryEngine, query: Query) -> QueryOutcome:
        # Stage 1: shortcut probes.
        shortcuts = list(reversed(self._shortcuts._shortcuts))
        probe_messages = 0
        if shortcuts:
            hits, probe_messages = engine.probe(query, shortcuts)
            if hits:
                self._shortcuts._touch(hits[0])
                return QueryOutcome(
                    query_id=query.guid,
                    messages=probe_messages,
                    hits=len(hits),
                    first_hit_hops=1,
                    duplicates=0,
                )
        # Stage 2: rule-based attempt (per-node rules, per-node fallback).
        attempt = engine.broadcast(query, dispatch_select(self.overlay))
        if attempt.hits:
            return QueryOutcome(
                query_id=query.guid,
                messages=attempt.messages + probe_messages,
                hits=attempt.hits,
                first_hit_hops=attempt.first_hit_hops,
                duplicates=attempt.duplicates,
            )
        # Stage 3: last-resort flood.
        flood = engine.broadcast(
            query, lambda node, up, q: self.overlay.topology.neighbors(node)
        )
        return QueryOutcome(
            query_id=query.guid,
            messages=probe_messages + attempt.messages + flood.messages,
            hits=flood.hits,
            first_hit_hops=flood.first_hit_hops,
            duplicates=attempt.duplicates + flood.duplicates,
        )

    # -- learning: feed both structures -----------------------------------
    def on_reply(self, *, node_id, upstream, downstream, query, provider) -> None:
        super().on_reply(
            node_id=node_id,
            upstream=upstream,
            downstream=downstream,
            query=query,
            provider=provider,
        )
        self._shortcuts.on_reply(
            node_id=node_id,
            upstream=upstream,
            downstream=downstream,
            query=query,
            provider=provider,
        )

    def reset(self) -> None:
        super().reset()
        self._shortcuts.reset()

    @property
    def shortcut_list(self) -> list[int]:
        return self._shortcuts.shortcut_list
