"""Tests for repro.network.superpeer."""

import pytest

from repro.network.superpeer import SuperPeerConfig, SuperPeerNetwork

SMALL = SuperPeerConfig(
    n_superpeers=8,
    leaves_per_superpeer=6,
    superpeer_degree=3,
    n_categories=8,
    files_per_category=40,
    library_size=15,
)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_superpeers": 2},
            {"leaves_per_superpeer": 0},
            {"superpeer_degree": 1},
            {"superpeer_degree": 30},
            {"superpeer_ttl": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SuperPeerConfig(**kwargs)

    def test_n_leaves(self):
        assert SMALL.n_leaves == 48


class TestSuperPeerNetwork:
    def test_leaf_binding(self):
        net = SuperPeerNetwork(SMALL, seed=1)
        assert net.superpeer_of(0) == 0
        assert net.superpeer_of(6) == 1
        assert net.superpeer_of(47) == 7

    def test_index_complete(self):
        net = SuperPeerNetwork(SMALL, seed=2)
        for sp in range(SMALL.n_superpeers):
            leaves = range(
                sp * SMALL.leaves_per_superpeer, (sp + 1) * SMALL.leaves_per_superpeer
            )
            expected = sum(len(net._leaf_library[leaf]) for leaf in leaves)
            assert net.index_size(sp) == expected

    def test_local_hit_zero_messages(self):
        net = SuperPeerNetwork(SMALL, seed=3)
        leaf = 0
        file_id = next(iter(net._leaf_library[leaf]))
        out = net.query(leaf, file_id)
        assert out.hits == 1
        assert out.messages == 0

    def test_home_index_hit_costs_one_message(self):
        net = SuperPeerNetwork(SMALL, seed=4)
        # File held by a sibling leaf but not by leaf 0 itself.
        home = net.superpeer_of(0)
        sibling = 1
        candidates = net._leaf_library[sibling] - net._leaf_library[0]
        if not candidates:
            pytest.skip("sibling libraries overlap completely")
        out = net.query(0, next(iter(candidates)))
        assert out.hits >= 1
        assert out.messages == 1
        assert out.first_hit_hops == 1

    def test_tier2_flood_counts_messages(self):
        net = SuperPeerNetwork(SMALL, seed=5)
        # Query a file nobody shares: full tier-2 flood, zero hits.
        missing = SMALL.n_categories * SMALL.files_per_category - 1
        found_missing = None
        for f in range(missing, -1, -1):
            if all(f not in lib for lib in net._leaf_library):
                found_missing = f
                break
        assert found_missing is not None
        out = net.query(0, found_missing)
        assert out.hits == 0
        # 1 leaf hop + every superpeer-tier edge within TTL (with dups).
        assert out.messages > SMALL.n_superpeers

    def test_workload_statistics(self):
        net = SuperPeerNetwork(SMALL, seed=6)
        stats = net.run_workload(200)
        assert stats.n_queries == 200
        assert stats.success_rate > 0.5
        assert stats.mean_first_hit_hops < 4

    def test_deterministic(self):
        a = SuperPeerNetwork(SMALL, seed=7).run_workload(50)
        b = SuperPeerNetwork(SMALL, seed=7).run_workload(50)
        assert a.total_messages == b.total_messages
        assert a.n_succeeded == b.n_succeeded

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError):
            SuperPeerNetwork(SMALL, seed=8).run_workload(-1)
