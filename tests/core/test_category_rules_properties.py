"""Property tests: category_ruleset_test vs a brute-force reference."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.category_rules import (
    CategorizedBlock,
    category_ruleset_test,
    generate_category_ruleset,
)

N_CATS = 4


@st.composite
def categorized_blocks(draw):
    n = draw(st.integers(1, 80))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, 5, n)
    categories = rng.integers(0, N_CATS, n)
    repliers = rng.integers(100, 105, n)
    return CategorizedBlock.from_arrays(sources, repliers, categories)


def brute_force(ruleset, cblock):
    """Reference: per-pair hierarchical covers/matches calls."""
    n_covered = 0
    n_successful = 0
    for s, c, r in zip(
        cblock.block.sources.tolist(),
        cblock.categories.tolist(),
        cblock.block.repliers.tolist(),
    ):
        if ruleset.covers(s, c):
            n_covered += 1
            if ruleset.matches(s, c, r):
                n_successful += 1
    return len(cblock), n_covered, n_successful


@settings(max_examples=60, deadline=None)
@given(categorized_blocks(), categorized_blocks(), st.integers(1, 4), st.sampled_from([None, 1, 2]))
def test_vectorized_equals_brute_force(train, test, min_support, top_k):
    ruleset = generate_category_ruleset(
        train, n_categories=N_CATS, min_support_count=min_support, top_k=top_k
    )
    fast = category_ruleset_test(ruleset, test)
    n_total, n_covered, n_successful = brute_force(ruleset, test)
    assert (fast.n_total, fast.n_covered, fast.n_successful) == (
        n_total,
        n_covered,
        n_successful,
    )


@settings(max_examples=40, deadline=None)
@given(categorized_blocks(), st.integers(1, 3))
def test_category_coverage_at_least_host_only(train, min_support):
    """The fallback tier guarantees coverage >= host-only coverage."""
    from repro.core.evaluation import ruleset_test
    from repro.core.generation import generate_ruleset

    cat_rs = generate_category_ruleset(
        train, n_categories=N_CATS, min_support_count=min_support
    )
    host_rs = generate_ruleset(train.block, min_support_count=min_support)
    cat_result = category_ruleset_test(cat_rs, train)
    host_result = ruleset_test(host_rs, train.block)
    assert cat_result.n_covered >= host_result.n_covered
