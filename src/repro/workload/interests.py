"""Interest categories and per-peer interest profiles.

Interest-based locality — "because users have a limited set of interests, a
node that has provided hits previously is likely to share the same
interests" (paper §II, refs [7][8][9]) — is the mechanism that makes
association-rule routing work at all.  We model it directly: the content
universe is partitioned into *categories*; each peer (or each monitor-node
neighbor, standing in for its subtree of users) holds a narrow
:class:`InterestProfile` over a handful of categories and draws its queries
from that profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.workload.zipf import ZipfSampler

__all__ = ["InterestModel", "InterestProfile"]


@dataclass(frozen=True)
class InterestProfile:
    """A peer's interests: category ids and matching sampling weights."""

    categories: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.categories) != len(self.weights):
            raise ValueError("categories and weights must have equal length")
        if not self.categories:
            raise ValueError("a profile needs at least one category")
        total = float(sum(self.weights))
        if not np.isclose(total, 1.0):
            raise ValueError(f"weights must sum to 1, got {total}")

    def sample_category(self, rng) -> int:
        """Draw one category according to the profile weights."""
        rng = as_generator(rng)
        return self.category_for_uniform(float(rng.random()))

    def category_for_uniform(self, u: float) -> int:
        """Map a uniform(0, 1) draw to a category (hot-loop fast path).

        Lets callers that manage their own uniform supply (e.g. a
        :class:`repro.utils.rng.UniformBuffer`) avoid per-call generator
        dispatch.
        """
        acc = 0.0
        for cat, w in zip(self.categories, self.weights):
            acc += w
            if u < acc:
                return cat
        return self.categories[-1]


class InterestModel:
    """Factory for interest profiles over a shared category universe.

    Categories themselves have Zipf-distributed global popularity (some
    interests are common to many users), and an individual profile weights
    its few categories Zipf-style as well (a user's primary interest
    dominates).
    """

    def __init__(
        self,
        n_categories: int,
        *,
        popularity_exponent: float = 0.8,
        within_profile_exponent: float = 1.0,
    ) -> None:
        if n_categories < 1:
            raise ValueError("n_categories must be >= 1")
        self.n_categories = int(n_categories)
        self._popularity = ZipfSampler(self.n_categories, popularity_exponent)
        self.within_profile_exponent = float(within_profile_exponent)

    def sample_profile(self, rng, *, width: int = 3) -> InterestProfile:
        """Create a profile over ``width`` distinct categories.

        The categories are drawn by global popularity (without replacement);
        their in-profile weights decay Zipf-style in draw order, so the
        first-drawn (usually globally popular) category dominates.
        """
        if width < 1:
            raise ValueError("width must be >= 1")
        width = min(width, self.n_categories)
        rng = as_generator(rng)
        chosen: list[int] = []
        seen: set[int] = set()
        # Rejection sampling is fine: width << n_categories in practice.
        attempts = 0
        while len(chosen) < width:
            cat = self._popularity.sample(rng)
            attempts += 1
            if cat not in seen:
                seen.add(cat)
                chosen.append(cat)
            if attempts > 200 * width:
                # Pathological popularity skew: fill deterministically.
                for cat in range(self.n_categories):
                    if cat not in seen:
                        seen.add(cat)
                        chosen.append(cat)
                        if len(chosen) == width:
                            break
        raw = 1.0 / np.power(
            np.arange(1, width + 1, dtype=float), self.within_profile_exponent
        )
        weights = tuple((raw / raw.sum()).tolist())
        return InterestProfile(categories=tuple(chosen), weights=weights)

    def category_popularity(self, category: int) -> float:
        """Global popularity of a category (probability mass)."""
        return self._popularity.probability(category)
