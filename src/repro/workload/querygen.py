"""Query-string synthesis.

The paper's trace stores the raw query string of every message.  The
routing algorithms never parse these strings (rules are over neighbor
hosts), but the future-work extension about "adding dimensions such as the
query strings during rule generation" needs realistic text, so we generate
keyword-style strings that encode the category and target file while
looking like search terms.
"""

from __future__ import annotations

from repro.utils.rng import as_generator

__all__ = ["QueryTextModel"]

_ADJECTIVES = (
    "best", "free", "new", "live", "full", "original", "remix", "classic",
    "ultimate", "rare", "complete", "deluxe", "extended", "official",
)

_NOUNS = (
    "album", "track", "mix", "session", "collection", "edition", "archive",
    "set", "release", "bundle", "volume", "anthology", "series", "pack",
)


class QueryTextModel:
    """Render (category, file) pairs as plausible query strings."""

    def __init__(self, *, decorate_probability: float = 0.5) -> None:
        if not 0.0 <= decorate_probability <= 1.0:
            raise ValueError("decorate_probability must be in [0, 1]")
        self.decorate_probability = decorate_probability

    def render(self, rng, category: int, file_rank: int) -> str:
        """Produce a query string for file ``file_rank`` in ``category``.

        The ``topic<category>`` and ``item<rank>`` tokens keep the string
        machine-parseable (tests and the clustering extension rely on
        :meth:`parse`), while random decoration varies the surface form the
        way real user queries do.
        """
        rng = as_generator(rng)
        tokens = [f"topic{category:03d}", f"item{file_rank:05d}"]
        if rng.random() < self.decorate_probability:
            tokens.append(_ADJECTIVES[int(rng.integers(0, len(_ADJECTIVES)))])
        if rng.random() < self.decorate_probability:
            tokens.append(_NOUNS[int(rng.integers(0, len(_NOUNS)))])
        return " ".join(tokens)

    @staticmethod
    def parse(query_string: str) -> tuple[int, int]:
        """Recover (category, file_rank) from a rendered string."""
        category = None
        rank = None
        for token in query_string.split():
            if token.startswith("topic") and token[5:].isdigit():
                category = int(token[5:])
            elif token.startswith("item") and token[4:].isdigit():
                rank = int(token[4:])
        if category is None or rank is None:
            raise ValueError(f"not a generated query string: {query_string!r}")
        return category, rank
