"""Tests for repro.core.streaming (the streaming strategy)."""

import pytest

from repro.core.streaming import StreamingRules, _ExactWindowCounts, _LossyCounts
from tests.conftest import make_block


def stationary_blocks(n_blocks, pairs_per_block=40):
    pairs = [(1, 10), (2, 20)] * (pairs_per_block // 2)
    return [make_block(pairs, index=i) for i in range(n_blocks)]


def drifting_blocks(n_blocks, pairs_per_block=40):
    return [
        make_block([(1, 100 + i)] * pairs_per_block, index=i)
        for i in range(n_blocks)
    ]


class TestExactWindowCounts:
    def test_threshold_crossing(self):
        counts = _ExactWindowCounts(window_pairs=100, min_support_count=3)
        for _ in range(2):
            counts.push(1, 10)
        assert not counts.covers(1)
        counts.push(1, 10)
        assert counts.covers(1)
        assert counts.matches(1, 10)
        assert not counts.matches(1, 11)

    def test_window_eviction_uncovers(self):
        counts = _ExactWindowCounts(window_pairs=4, min_support_count=3)
        for _ in range(3):
            counts.push(1, 10)
        assert counts.covers(1)
        # Push unrelated pairs to evict the old ones.
        for _ in range(4):
            counts.push(2, 20)
        assert not counts.covers(1)
        assert counts.covers(2)

    def test_n_rules(self):
        counts = _ExactWindowCounts(window_pairs=100, min_support_count=2)
        counts.push(1, 10)
        counts.push(1, 10)
        counts.push(1, 11)
        assert counts.n_rules() == 1


class TestConsequentsOrdering:
    """``consequents(k=None)`` returns *every* qualified replier; equal
    counts break ties by ascending replier id on both backends."""

    def _exact(self):
        counts = _ExactWindowCounts(window_pairs=100, min_support_count=2)
        for replier, copies in [(30, 2), (10, 3), (20, 2), (40, 1)]:
            for _ in range(copies):
                counts.push(1, replier)
        return counts

    def _lossy(self):
        counts = _LossyCounts(epsilon=0.001, min_support_count=2)
        for replier, copies in [(30, 2), (10, 3), (20, 2), (40, 1)]:
            for _ in range(copies):
                counts.push(1, replier)
        return counts

    @pytest.mark.parametrize("make", ["_exact", "_lossy"])
    def test_k_none_returns_all_qualified_ranked(self, make):
        counts = getattr(self, make)()
        # 10 leads on count; 20 and 30 tie at 2 and order by replier id;
        # 40 never qualified.
        assert counts.consequents(1, k=None) == [10, 20, 30]
        assert counts.consequents(1) == [10, 20, 30]

    @pytest.mark.parametrize("make", ["_exact", "_lossy"])
    def test_k_truncates_after_the_same_ranking(self, make):
        counts = getattr(self, make)()
        assert counts.consequents(1, k=1) == [10]
        assert counts.consequents(1, k=2) == [10, 20]
        assert counts.consequents(1, k=10) == [10, 20, 30]

    @pytest.mark.parametrize("make", ["_exact", "_lossy"])
    def test_unknown_source_is_empty_not_error(self, make):
        counts = getattr(self, make)()
        assert counts.consequents(99, k=None) == []
        assert counts.consequents(99, k=3) == []

    def test_all_equal_counts_sort_purely_by_replier(self):
        counts = _ExactWindowCounts(window_pairs=100, min_support_count=2)
        for replier in (7, 3, 11, 5):
            counts.push(1, replier)
            counts.push(1, replier)
        assert counts.consequents(1, k=None) == [3, 5, 7, 11]


class TestLossyRebuildQualified:
    def test_rebuild_reconstructs_coverage_from_sketch(self):
        counts = _LossyCounts(epsilon=0.001, min_support_count=2)
        for _ in range(2):
            counts.push(1, 10)
            counts.push(2, 20)
        assert counts.covers(1) and counts.covers(2)
        # Wreck the incremental cache, then rebuild from the sketch.
        counts._qualified = {}
        assert not counts.covers(1)
        counts._rebuild_qualified()
        assert counts.covers(1) and counts.covers(2)
        assert counts._qualified == {1: 1, 2: 1}

    def test_rebuild_counts_qualified_consequents_per_source(self):
        counts = _LossyCounts(epsilon=0.001, min_support_count=2)
        for replier in (10, 11, 12):
            counts.push(1, replier)
            counts.push(1, replier)
        counts.push(2, 20)  # below threshold
        counts._rebuild_qualified()
        assert counts._qualified == {1: 3}
        assert not counts.covers(2)

    def test_periodic_refresh_triggers_rebuild(self):
        counts = _LossyCounts(epsilon=0.001, min_support_count=2)
        counts.refresh_every = 5  # force a refresh within a few pushes
        counts.push(1, 10)
        counts.push(1, 10)
        counts._qualified = {}  # stale: pretend eviction lost the entry
        for i in range(5):
            counts.push(50 + i, 99)  # unrelated singletons tick the clock
        # the scheduled rebuild restored source 1's coverage, and the
        # refresh clock wrapped (7 pushes total, rebuild at the 5th).
        assert counts.covers(1)
        assert counts._since_refresh == 2

    def test_rebuild_on_empty_sketch(self):
        counts = _LossyCounts(epsilon=0.001, min_support_count=2)
        counts._rebuild_qualified()
        assert counts._qualified == {}
        assert not counts.covers(1)


class TestStreamingRules:
    def test_near_perfect_on_stationary(self):
        run = StreamingRules(min_support_count=2, window_pairs=100).run(
            stationary_blocks(5)
        )
        assert run.average_coverage == 1.0
        assert run.average_success == 1.0
        assert run.n_generations == 0

    def test_adapts_quickly_to_drift(self):
        # Replier changes each block; streaming picks the new pair up after
        # min_support_count observations within the block, so success is
        # high even though batch sliding would score 0.
        run = StreamingRules(min_support_count=2, window_pairs=100).run(
            drifting_blocks(5)
        )
        assert run.average_success > 0.85

    def test_lossy_backend_close_to_exact(self):
        blocks = stationary_blocks(5)
        exact = StreamingRules(min_support_count=2, backend="exact").run(blocks)
        lossy = StreamingRules(min_support_count=2, backend="lossy").run(blocks)
        assert abs(exact.average_coverage - lossy.average_coverage) < 0.1
        assert abs(exact.average_success - lossy.average_success) < 0.1

    def test_requires_two_blocks(self):
        with pytest.raises(ValueError):
            StreamingRules().run(stationary_blocks(1))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_support_count": 0},
            {"window_pairs": 0},
            {"backend": "exotic"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StreamingRules(**kwargs)

    def test_trials_aligned_with_batch_strategies(self):
        blocks = stationary_blocks(4)
        run = StreamingRules(min_support_count=2).run(blocks)
        assert run.n_trials == 3  # first block is warmup, like training
        assert [t.block_index for t in run.trials] == [1, 2, 3]


class TestRuleStats:
    def test_exact_support_and_confidence_from_window(self):
        counts = _ExactWindowCounts(window_pairs=100, min_support_count=2)
        for _ in range(3):
            counts.push(1, 2)
        counts.push(1, 3)
        support, confidence = counts.rule_stats(1, 2)
        assert support == 3
        assert confidence == pytest.approx(3 / 4)
        assert counts.rule_stats(1, 9) == (0, 0.0)
        assert counts.rule_stats(7, 2) == (0, 0.0)

    def test_exact_stats_age_out_with_the_window(self):
        counts = _ExactWindowCounts(window_pairs=2, min_support_count=1)
        counts.push(1, 2)
        counts.push(3, 4)
        counts.push(3, 5)  # (1, 2) slides out
        assert counts.rule_stats(1, 2) == (0, 0.0)
        support, confidence = counts.rule_stats(3, 4)
        assert support == 1
        assert confidence == pytest.approx(0.5)

    def test_lossy_stats_match_exact_on_small_streams(self):
        counts = _LossyCounts(epsilon=0.001, min_support_count=2)
        for _ in range(6):
            counts.push(1, 2)
        for _ in range(2):
            counts.push(1, 3)
        support, confidence = counts.rule_stats(1, 2)
        assert support == 6
        assert confidence == pytest.approx(6 / 8)
        assert counts.rule_stats(1, 9) == (0, 0.0)


class TestGeneratorInput:
    @pytest.mark.parametrize("backend", ["exact", "lossy"])
    def test_generator_run_equals_list_run(self, backend):
        blocks = drifting_blocks(8)
        from_list = StreamingRules(min_support_count=2, backend=backend).run(blocks)
        from_generator = StreamingRules(min_support_count=2, backend=backend).run(
            iter(blocks)
        )
        assert from_generator == from_list

    def test_generator_with_too_few_blocks(self):
        with pytest.raises(ValueError):
            StreamingRules(min_support_count=2).run(iter(drifting_blocks(1)))
