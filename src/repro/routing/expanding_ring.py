"""Expanding-ring search (Lv et al., the paper's ref [5]).

Flood with a small TTL; on a miss, retry with a larger TTL.  Saves
traffic for popular (nearby) content but re-visits near nodes on every
retry — the extra-traffic caveat the paper's related-work section points
out, which these simulations reproduce.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.metrics.traffic import QueryOutcome
from repro.network.engine import QueryEngine
from repro.network.messages import Query
from repro.routing.base import RoutingPolicy, dispatch_select

__all__ = ["ExpandingRingPolicy"]


class ExpandingRingPolicy(RoutingPolicy):
    """Flooding with an escalating TTL schedule."""

    name = "expanding-ring"

    #: successive TTLs tried until a hit (capped at the query's own TTL).
    schedule: tuple[int, ...] = (1, 2, 4, 7)

    def select(self, node: int, upstream: int | None, query: Query) -> Sequence[int]:
        return self.overlay.topology.neighbors(node)

    def route_query(self, engine: QueryEngine, query: Query) -> QueryOutcome:
        total_messages = 0
        total_duplicates = 0
        select = dispatch_select(self.overlay)
        for ttl in self.schedule:
            ttl = min(ttl, query.ttl)
            attempt = engine.broadcast(replace(query, ttl=ttl), select)
            total_messages += attempt.messages
            total_duplicates += attempt.duplicates
            if attempt.hits:
                return QueryOutcome(
                    query_id=query.guid,
                    messages=total_messages,
                    hits=attempt.hits,
                    first_hit_hops=attempt.first_hit_hops,
                    duplicates=total_duplicates,
                )
            if ttl >= query.ttl:
                break
        return QueryOutcome(
            query_id=query.guid,
            messages=total_messages,
            hits=0,
            first_hit_hops=None,
            duplicates=total_duplicates,
        )
