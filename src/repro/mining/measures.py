"""Interestingness measures for association rules.

Support and confidence are the two measures the paper discusses (Section
III-A); lift, leverage and conviction are the standard complements any
association-analysis library ships, and the confidence-based pruning
extension (paper Section VI) uses confidence directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RuleMeasures", "compute_measures"]


@dataclass(frozen=True)
class RuleMeasures:
    """All measures for one rule ``antecedent -> consequent``.

    Attributes
    ----------
    support:
        Fraction of transactions containing antecedent ∪ consequent.
    confidence:
        P(consequent | antecedent) estimated from counts.
    lift:
        confidence / P(consequent); 1.0 means independence.
    leverage:
        support − P(antecedent)·P(consequent).
    conviction:
        (1 − P(consequent)) / (1 − confidence); ``inf`` for exact rules.
    """

    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float


def compute_measures(
    *,
    n_transactions: int,
    antecedent_count: int,
    consequent_count: int,
    union_count: int,
) -> RuleMeasures:
    """Compute all measures from raw counts.

    Parameters
    ----------
    n_transactions:
        Total number of transactions (> 0).
    antecedent_count / consequent_count:
        Support counts of the antecedent and consequent itemsets alone.
    union_count:
        Support count of antecedent ∪ consequent.

    Raises
    ------
    ValueError
        If the counts are inconsistent (e.g. union exceeds either side).
    """
    if n_transactions <= 0:
        raise ValueError("n_transactions must be positive")
    if antecedent_count <= 0:
        raise ValueError("antecedent_count must be positive for a rule")
    if union_count < 0 or consequent_count < 0:
        raise ValueError("counts must be non-negative")
    if union_count > antecedent_count or union_count > consequent_count:
        raise ValueError("union support cannot exceed either side's support")
    if max(antecedent_count, consequent_count) > n_transactions:
        raise ValueError("itemset support cannot exceed n_transactions")
    if union_count < antecedent_count + consequent_count - n_transactions:
        raise ValueError(
            "inconsistent counts: union support violates inclusion-exclusion"
        )

    support = union_count / n_transactions
    confidence = union_count / antecedent_count
    p_ante = antecedent_count / n_transactions
    p_cons = consequent_count / n_transactions
    lift = confidence / p_cons if p_cons > 0 else math.inf
    leverage = support - p_ante * p_cons
    if confidence >= 1.0:
        conviction = math.inf
    else:
        conviction = (1.0 - p_cons) / (1.0 - confidence)
    return RuleMeasures(
        support=support,
        confidence=confidence,
        lift=lift,
        leverage=leverage,
        conviction=conviction,
    )
