"""Tests for repro.workload.keywords."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.content import ContentCatalog
from repro.workload.keywords import KeywordIndex


@pytest.fixture
def index():
    return KeywordIndex(ContentCatalog(12, 50))


class TestFileTokens:
    def test_deterministic(self, index):
        assert index.file_tokens(123) == index.file_tokens(123)

    def test_rank_token_unique_within_category(self, index):
        tokens_a = index.file_tokens(0)
        tokens_b = index.file_tokens(1)
        assert tokens_a != tokens_b

    def test_category_topic_shared(self, index):
        a = index.file_tokens(10)
        b = index.file_tokens(11)  # same category (files_per_category=50)
        assert len(a & b) >= 2  # the two topic words

    def test_different_categories_differ_in_topic(self, index):
        a = index.file_tokens(0)
        b = index.file_tokens(50)  # category 1
        # Rank tokens collide (t0000) but topic words must differ.
        assert a != b


class TestQueryTokens:
    def test_subset_of_file_tokens(self, index, rng):
        for _ in range(50):
            f = int(rng.integers(0, index.catalog.n_files))
            q = index.query_tokens(f, rng)
            assert q
            assert q <= index.file_tokens(f)

    def test_validation(self, index, rng):
        with pytest.raises(ValueError):
            index.query_tokens(0, rng, drop_probability=1.0)


class TestMatching:
    def test_full_name_matches_only_target_in_category(self, index):
        f = 7
        full = index.file_tokens(f)
        assert index.file_matches(full, f)

    def test_partial_query_matches_target(self, index, rng):
        f = 33
        q = index.query_tokens(f, rng)
        assert index.file_matches(q, f)

    def test_wrong_category_never_matches_full_query(self, index):
        f = 7
        full = index.file_tokens(f)
        other_cat = 7 + index.catalog.files_per_category
        assert not index.file_matches(full, other_cat)

    def test_search_library(self, index):
        f = 12
        library = frozenset({5, 12, 80})
        hits = index.search_library(index.file_tokens(f), library)
        assert 12 in hits

    def test_empty_query_matches_everything(self, index):
        assert index.file_matches(frozenset(), 3)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 599), st.integers(0, 2**31 - 1))
def test_keyword_at_least_as_permissive_as_exact(file_id, seed):
    """Property: wherever exact-id finds the file, keywords do too."""
    index = KeywordIndex(ContentCatalog(12, 50))
    rng = np.random.default_rng(seed)
    library = frozenset(int(x) for x in rng.integers(0, 600, size=100))
    q = index.query_tokens(file_id, rng)
    if file_id in library:
        assert index.search_library(q, library)


class TestHitRateComparison:
    def test_keyword_hit_rate_dominates(self, index):
        rng = np.random.default_rng(9)
        exact, keyword = index.hit_rate_vs_exact(rng, n_queries=300)
        assert keyword >= exact
        assert keyword > 0
