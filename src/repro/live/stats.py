"""Per-node operational counters for the live servent daemon.

One :class:`NodeStats` per :class:`~repro.live.node.LiveServent`; every
field is a plain monotonically increasing counter so tests and the CLI
can snapshot, diff and aggregate them without locking (asyncio runs the
node single-threaded).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

__all__ = ["NodeStats", "combine_stats"]


@dataclass
class NodeStats:
    """Counters for one live servent."""

    #: complete descriptors decoded and handled from peers.
    frames_in: int = 0
    #: descriptors accepted into a connection's send queue.
    frames_out: int = 0
    #: raw bytes read from / written to sockets.
    bytes_in: int = 0
    bytes_out: int = 0
    #: frames lost locally: send-queue overflow or no such connection.
    frames_dropped: int = 0
    #: the subset of dropped frames that were *Query* descriptors — the
    #: overload shedding valve: under sustained offered load a full
    #: send queue sheds query forwards (bounded loss, measured here)
    #: instead of queueing unboundedly (unbounded latency, measured
    #: nowhere).  Every shed query is also counted in frames_dropped.
    queries_shed: int = 0
    #: peers dropped for sending malformed bytes.
    protocol_errors: int = 0
    #: successful handshakes (inbound + outbound, including re-dials).
    connects: int = 0
    #: successful outbound re-dials after a connection was lost.
    reconnects: int = 0
    #: failed outbound dial attempts (each schedules a backoff retry).
    dial_failures: int = 0
    #: keepalive Pings originated by this node.
    pings_sent: int = 0
    #: Query descriptors this node originated.
    queries_issued: int = 0
    #: transit Queries forwarded along learned rules / flooded for lack
    #: of a covering rule (rule-routed nodes only; floods stay 0 + all).
    queries_rule_routed: int = 0
    queries_flooded: int = 0
    #: QueryHits received for locally issued queries.
    hits_received: int = 0
    #: times an observed pair promoted a new routing rule (the live
    #: equivalent of a batch rule-set regeneration).
    rule_regenerations: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


def combine_stats(per_node: dict[int, NodeStats]) -> dict[str, int]:
    """Sum every counter across nodes (cluster-wide totals)."""
    totals = {f.name: 0 for f in fields(NodeStats)}
    for stats in per_node.values():
        for name, value in stats.as_dict().items():
            totals[name] += value
    return totals
