"""Tests for repro.store.table."""

import pytest

from repro.store.table import Column, Table


def make_people():
    table = Table("people", [Column("name", str), Column("age", int)])
    table.append(("alice", 30))
    table.append(("bob", 25))
    return table


class TestSchema:
    def test_column_names(self):
        table = make_people()
        assert table.column_names == ("name", "age")

    def test_string_columns_are_untyped(self):
        table = Table("t", ["a", "b"])
        table.append((1, "x"))
        table.append(("y", 2))  # no dtype declared, anything goes
        assert len(table) == 2

    def test_rejects_duplicate_column_names(self):
        with pytest.raises(ValueError):
            Table("t", ["a", "a"])

    def test_rejects_empty_schema(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_type_check_on_insert(self):
        table = make_people()
        with pytest.raises(TypeError):
            table.append((42, 30))


class TestMutation:
    def test_append_returns_rowid(self):
        table = make_people()
        assert table.append(("carol", 40)) == 2

    def test_append_dict(self):
        table = make_people()
        table.append_dict({"age": 50, "name": "dora"})
        assert table.row(2) == ("dora", 50)

    def test_extend_counts(self):
        table = make_people()
        n = table.extend([("e", 1), ("f", 2)])
        assert n == 2
        assert len(table) == 4

    def test_wrong_arity_rejected(self):
        table = make_people()
        with pytest.raises(ValueError):
            table.append(("too", 1, "many"))


class TestAccess:
    def test_row_and_row_dict(self):
        table = make_people()
        assert table.row(0) == ("alice", 30)
        assert table.row_dict(1) == {"name": "bob", "age": 25}

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            make_people().row(99)

    def test_iter_rows(self):
        assert list(make_people().iter_rows()) == [("alice", 30), ("bob", 25)]

    def test_column_access(self):
        assert make_people().column("age") == [30, 25]

    def test_missing_column(self):
        with pytest.raises(KeyError):
            make_people().column("salary")

    def test_select(self):
        table = make_people()
        assert table.select(lambda r: r["age"] > 26) == [0]

    def test_project(self):
        table = make_people()
        assert table.project(["age", "name"]) == [(30, "alice"), (25, "bob")]

    def test_project_empty_table(self):
        table = Table("t", ["a"])
        assert table.project(["a"]) == []


class TestIndexing:
    def test_index_reflects_existing_rows(self):
        table = make_people()
        idx = table.create_index("name")
        assert idx.lookup("alice") == [0]

    def test_index_updated_on_append(self):
        table = make_people()
        idx = table.create_index("age")
        table.append(("carol", 30))
        assert idx.lookup(30) == [0, 2]

    def test_create_index_idempotent(self):
        table = make_people()
        a = table.create_index("name")
        b = table.create_index("name")
        assert a is b

    def test_index_lookup_missing(self):
        table = make_people()
        assert table.index("name") is None
        table.create_index("name")
        assert table.index("name") is not None
