"""Fault-injecting wrappers over asyncio stream pairs.

The live stack's protocol code never learns about faults: a
:class:`FaultController` hands each node a *transport opener* (the
``open_transport`` hook on :func:`repro.live.connection.dial_peer` /
:class:`~repro.live.node.LiveServent`) that opens the real TCP
connection and returns a :class:`FaultyReader` / :class:`FaultyWriter`
pair sharing one :class:`FaultyLink`.  Faults therefore act exactly at
the socket boundary:

* **latency** sleeps before reads and drains (both directions of a link
  are wrapped on the dialer's side, so one wrapper delays the link);
* **stall** is a one-shot slow-reader pause — the remote peer keeps
  writing into a reader that has stopped, which is how real
  backpressure (``drain_stalls``, send-queue drops) arises;
* **corrupt** injects garbage bytes mid-stream, so the remote
  :class:`~repro.live.framing.StreamDecoder` raises ``ProtocolError``
  and the peer is dropped;
* **truncate** halves the next written frame and then aborts the link —
  a peer dying mid-write;
* **reset** aborts the underlying transport (RST-style) and poisons the
  wrappers with ``ConnectionResetError``;
* **partition** makes the controller's openers refuse cross-group dials
  (``ConnectionRefusedError``) and resets existing cross links.

Only the *dialing* side of each link is wrapped: reads delayed there
slow the acceptor→dialer direction, writes corrupted there break the
dialer→acceptor direction, and aborts kill both.  That keeps the hook
surface to one injection point per link while still reaching every
fault the taxonomy names.
"""

from __future__ import annotations

import asyncio

from repro.faults.plan import (
    CORRUPT,
    HEAL,
    LATENCY,
    PARTITION,
    RESET,
    STALL,
    TRUNCATE,
    FaultEvent,
)

__all__ = [
    "FaultController",
    "FaultyLink",
    "FaultyReader",
    "FaultyWriter",
    "LinkFaults",
]

#: a junk descriptor header: 16 bytes of fake GUID + invalid type +
#: absurd length — guaranteed to trip the remote decoder's payload
#: bound even when it lands mid-frame and misaligns the stream.
_GARBAGE = b"\xff" * 23


class LinkFaults:
    """Mutable fault state for one overlay link (u, v).

    The controller mutates it; every active :class:`FaultyLink` wrapper
    on the link consults it per I/O operation.  One-shot faults (stall,
    corrupt, truncate) are consumed by the first operation that applies
    them.
    """

    def __init__(self) -> None:
        self.latency = 0.0
        self._stall = 0.0
        self._wrappers: set["FaultyLink"] = set()

    # -- wrapper registry --------------------------------------------------
    def attach(self, wrapper: "FaultyLink") -> None:
        self._wrappers.add(wrapper)

    def detach(self, wrapper: "FaultyLink") -> None:
        self._wrappers.discard(wrapper)

    @property
    def active(self) -> bool:
        return bool(self._wrappers)

    # -- fault setters (controller side) -----------------------------------
    def set_latency(self, seconds: float) -> None:
        self.latency = max(0.0, seconds)

    def stall(self, seconds: float) -> None:
        self._stall = max(self._stall, seconds)

    def take_stall(self) -> float:
        seconds, self._stall = self._stall, 0.0
        return seconds

    def corrupt(self) -> bool:
        """Inject garbage on an active wrapper; False if the link is down."""
        for wrapper in list(self._wrappers):
            if wrapper.inject_garbage():
                return True
        return False

    def truncate(self) -> bool:
        for wrapper in list(self._wrappers):
            if not wrapper.aborted:
                wrapper.truncate_next = True
                return True
        return False

    def reset(self) -> bool:
        """Abort every live connection on this link; False if none."""
        hit = False
        for wrapper in list(self._wrappers):
            if not wrapper.aborted:
                wrapper.abort()
                hit = True
        return hit


class FaultyLink:
    """One wrapped connection: shared state for its reader/writer pair."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        faults: LinkFaults,
    ) -> None:
        self._inner_reader = reader
        self._inner_writer = writer
        self.faults = faults
        self.aborted = False
        self.truncate_next = False
        self.reader = FaultyReader(reader, self)
        self.writer = FaultyWriter(writer, self)
        faults.attach(self)

    async def before_io(self) -> None:
        """Latency / stall / reset gate shared by reads and drains."""
        if self.aborted:
            raise ConnectionResetError("fault injection: link reset")
        stall = self.faults.take_stall()
        if stall > 0:
            await asyncio.sleep(stall)
        if self.faults.latency > 0:
            await asyncio.sleep(self.faults.latency)
        if self.aborted:
            raise ConnectionResetError("fault injection: link reset")

    def abort(self) -> None:
        """RST-style kill: both directions die, buffered bytes are lost."""
        self.aborted = True
        try:
            self._inner_writer.transport.abort()
        except Exception:
            pass
        self.faults.detach(self)

    def inject_garbage(self) -> bool:
        """Write a malformed descriptor into the stream (mid-frame byte
        corruption as the remote decoder experiences it)."""
        if self.aborted or self._inner_writer.is_closing():
            return False
        try:
            self._inner_writer.write(_GARBAGE)
        except Exception:
            return False
        return True

    def closed(self) -> None:
        self.faults.detach(self)


class FaultyReader:
    """StreamReader facade applying link faults before each read."""

    def __init__(self, inner: asyncio.StreamReader, link: FaultyLink) -> None:
        self._inner = inner
        self._link = link

    async def read(self, n: int = -1) -> bytes:
        await self._link.before_io()
        return await self._inner.read(n)

    async def readexactly(self, n: int) -> bytes:
        await self._link.before_io()
        return await self._inner.readexactly(n)

    async def readuntil(self, separator: bytes = b"\n") -> bytes:
        await self._link.before_io()
        return await self._inner.readuntil(separator)

    async def readline(self) -> bytes:
        await self._link.before_io()
        return await self._inner.readline()

    def at_eof(self) -> bool:
        return self._inner.at_eof()

    def exception(self):
        return self._inner.exception()


class FaultyWriter:
    """StreamWriter facade applying link faults to writes and drains."""

    def __init__(self, inner: asyncio.StreamWriter, link: FaultyLink) -> None:
        self._inner = inner
        self._link = link

    @property
    def transport(self):
        return self._inner.transport

    def write(self, data: bytes) -> None:
        link = self._link
        if link.aborted:
            raise ConnectionResetError("fault injection: link reset")
        if link.truncate_next:
            link.truncate_next = False
            self._inner.write(data[: max(1, len(data) // 2)])
            link.abort()  # died mid-write: remote sees a partial frame
            return
        self._inner.write(data)

    def writelines(self, data) -> None:
        for chunk in data:
            self.write(chunk)

    async def drain(self) -> None:
        await self._link.before_io()
        await self._inner.drain()

    def close(self) -> None:
        self._link.closed()
        self._inner.close()

    def is_closing(self) -> bool:
        return self._inner.is_closing()

    async def wait_closed(self) -> None:
        await self._inner.wait_closed()

    def get_extra_info(self, name, default=None):
        return self._inner.get_extra_info(name, default)


class FaultController:
    """Per-link fault state + partition gate for one live cluster.

    The cluster binds its node→port map after listeners start
    (:meth:`bind_ports`); each node dials through the opener from
    :meth:`opener`, which looks the target port up, enforces the active
    partition, and wraps the streams with the link's
    :class:`LinkFaults`.  Ports the controller does not know (external
    peers) pass through unwrapped.
    """

    def __init__(self) -> None:
        self._ports: dict[int, int] = {}
        self._links: dict[frozenset, LinkFaults] = {}
        self.partition: tuple[frozenset, frozenset] | None = None

    # -- wiring ------------------------------------------------------------
    def bind_ports(self, ports: dict[int, int]) -> None:
        """Register the cluster's node id → listen port map."""
        self._ports.update(ports)

    def node_at(self, port: int) -> int | None:
        for node, node_port in self._ports.items():
            if node_port == port:
                return node
        return None

    def link(self, u: int, v: int) -> LinkFaults:
        key = frozenset((u, v))
        faults = self._links.get(key)
        if faults is None:
            faults = self._links[key] = LinkFaults()
        return faults

    def opener(self, node_id: int):
        """A ``dial_peer``-compatible transport opener for one node."""

        async def open_transport(host: str, port: int):
            remote = self.node_at(port)
            if remote is not None and self.partitioned(node_id, remote):
                raise ConnectionRefusedError(
                    f"fault injection: {node_id} -/- {remote} (partition)"
                )
            reader, writer = await asyncio.open_connection(host, port)
            if remote is None:
                return reader, writer
            link = FaultyLink(reader, writer, self.link(node_id, remote))
            return link.reader, link.writer

        return open_transport

    # -- partitions --------------------------------------------------------
    def partitioned(self, u: int, v: int) -> bool:
        if self.partition is None:
            return False
        a, b = self.partition
        return (u in a and v in b) or (u in b and v in a)

    def set_partition(self, group_a, group_b) -> int:
        """Activate a partition; resets existing cross links.

        Returns how many live cross links were reset.
        """
        self.partition = (frozenset(group_a), frozenset(group_b))
        hits = 0
        for key, faults in self._links.items():
            u, v = tuple(key)
            if self.partitioned(u, v) and faults.reset():
                hits += 1
        return hits

    def heal_partition(self) -> None:
        self.partition = None

    # -- event dispatch ----------------------------------------------------
    def apply(self, event: FaultEvent) -> bool:
        """Apply one *link-level or partition* event; True if it landed.

        Node-level events (crash/restart) need the cluster and are the
        :class:`~repro.faults.injector.FaultInjector`'s job.
        """
        if event.kind == PARTITION:
            self.set_partition(*event.groups)
            return True
        if event.kind == HEAL:
            self.heal_partition()
            return True
        if event.link is None:
            raise ValueError(f"controller cannot apply {event.kind!r}")
        faults = self.link(*event.link)
        if event.kind == LATENCY:
            faults.set_latency(event.seconds)
            return True
        if event.kind == STALL:
            faults.stall(event.seconds)
            return True
        if event.kind == CORRUPT:
            return faults.corrupt()
        if event.kind == TRUNCATE:
            return faults.truncate()
        if event.kind == RESET:
            return faults.reset()
        raise ValueError(f"controller cannot apply {event.kind!r}")
