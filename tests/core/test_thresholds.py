"""Tests for repro.core.thresholds."""

import pytest

from repro.core.thresholds import RollingThreshold


class TestRollingThreshold:
    def test_initial_before_history(self):
        t = RollingThreshold(window=10, initial=0.7)
        assert t.current() == pytest.approx(0.7)

    def test_tracks_rolling_mean(self):
        t = RollingThreshold(window=3, initial=0.7)
        for v in [0.8, 0.6, 0.7]:
            t.observe(v)
        assert t.current() == pytest.approx(0.7)

    def test_window_eviction(self):
        t = RollingThreshold(window=2, initial=0.5)
        for v in [0.1, 0.9, 0.9]:
            t.observe(v)
        assert t.current() == pytest.approx(0.9)

    def test_slack_scales_threshold(self):
        t = RollingThreshold(window=2, initial=0.8, slack=0.9)
        assert t.current() == pytest.approx(0.72)
        t.observe(1.0)
        assert t.current() == pytest.approx(0.9)

    def test_history_length(self):
        t = RollingThreshold(window=5)
        t.observe(0.5)
        t.observe(0.6)
        assert t.history_length() == 2

    def test_window_property(self):
        assert RollingThreshold(window=7).window == 7

    @pytest.mark.parametrize("kwargs", [{"initial": 1.5}, {"slack": 0.0}, {"slack": 1.2}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RollingThreshold(window=5, **kwargs)

    def test_observation_bounds(self):
        t = RollingThreshold(window=3)
        with pytest.raises(ValueError):
            t.observe(1.2)
