"""Tests for repro.store.database."""

import pytest

from repro.store.database import Database
from repro.store.table import Table


class TestDatabase:
    def test_create_and_get(self):
        db = Database("test")
        table = db.create_table("queries", ["guid"])
        assert db.table("queries") is table

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_table("t", ["a"])
        with pytest.raises(ValueError):
            db.create_table("t", ["b"])

    def test_add_external_table(self):
        db = Database()
        table = Table("pairs", ["guid"])
        db.add_table(table)
        assert "pairs" in db

    def test_add_duplicate_rejected(self):
        db = Database()
        db.add_table(Table("t", ["a"]))
        with pytest.raises(ValueError):
            db.add_table(Table("t", ["b"]))

    def test_drop(self):
        db = Database()
        db.create_table("t", ["a"])
        db.drop_table("t")
        assert "t" not in db

    def test_drop_missing(self):
        with pytest.raises(KeyError):
            Database().drop_table("nope")

    def test_missing_table(self):
        with pytest.raises(KeyError):
            Database().table("nope")

    def test_total_rows(self):
        db = Database()
        t1 = db.create_table("a", ["x"])
        t1.append((1,))
        t2 = db.create_table("b", ["y"])
        t2.extend([(1,), (2,)])
        assert db.total_rows() == 3

    def test_table_names(self):
        db = Database()
        db.create_table("a", ["x"])
        db.create_table("b", ["y"])
        assert set(db.table_names()) == {"a", "b"}
