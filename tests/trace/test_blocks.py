"""Tests for repro.trace.blocks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.store.table import Table
from repro.trace.blocks import PairBlock, blocks_from_arrays, partition_pairs
from repro.trace.records import PAIR_COLUMNS


class TestPairBlock:
    def test_len(self, small_block):
        assert len(small_block) == 10

    def test_pairs_matrix(self, small_block):
        pairs = small_block.pairs()
        assert pairs.shape == (10, 2)
        assert pairs[0].tolist() == [1, 10]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PairBlock(
                sources=np.array([1, 2], dtype=np.int64),
                repliers=np.array([1], dtype=np.int64),
            )

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            PairBlock(
                sources=np.zeros((2, 2), dtype=np.int64),
                repliers=np.zeros((2, 2), dtype=np.int64),
            )


class TestPairBlockMemoization:
    def test_packed_keys_values_and_reuse(self, small_block):
        keys = small_block.packed_keys()
        np.testing.assert_array_equal(
            keys, (small_block.sources << np.int64(32)) | small_block.repliers
        )
        assert small_block.packed_keys() is keys  # computed once

    def test_validate_ids_scans_once(self, small_block, monkeypatch):
        import repro.trace.blocks as blocks_module

        calls = []
        real_scan = blocks_module.scan_id_range
        monkeypatch.setattr(
            blocks_module,
            "scan_id_range",
            lambda *args: calls.append(1) or real_scan(*args),
        )
        small_block.validate_ids()
        small_block.validate_ids()
        small_block.validate_ids()
        assert len(calls) == 1

    def test_validate_ids_rejects_out_of_range(self):
        from repro.trace.blocks import ID_LIMIT

        bad = PairBlock(
            sources=np.array([ID_LIMIT], dtype=np.int64),
            repliers=np.array([1], dtype=np.int64),
        )
        with pytest.raises(ValueError):
            bad.validate_ids()
        with pytest.raises(ValueError):
            PairBlock(
                sources=np.array([1], dtype=np.int64),
                repliers=np.array([-1], dtype=np.int64),
            ).validate_ids()

    def test_fingerprint_is_content_addressed(self, small_block):
        clone = PairBlock(
            sources=small_block.sources.copy(),
            repliers=small_block.repliers.copy(),
            index=99,  # index is metadata, not content
        )
        assert clone.fingerprint() == small_block.fingerprint()
        changed = PairBlock(
            sources=small_block.sources.copy(),
            repliers=np.where(
                np.arange(len(small_block)) == 3, 77, small_block.repliers
            ).astype(np.int64),
        )
        assert changed.fingerprint() != small_block.fingerprint()

    def test_fingerprint_distinguishes_column_roles(self):
        """Swapping sources and repliers must change the fingerprint."""
        a = PairBlock(
            sources=np.array([1, 2], dtype=np.int64),
            repliers=np.array([3, 4], dtype=np.int64),
        )
        b = PairBlock(
            sources=np.array([3, 4], dtype=np.int64),
            repliers=np.array([1, 2], dtype=np.int64),
        )
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_memoized(self, small_block):
        assert small_block.fingerprint() is small_block.fingerprint()


class TestBlocksFromArrays:
    def test_partition_sizes(self):
        sources = np.arange(25, dtype=np.int64)
        blocks = blocks_from_arrays(sources, sources, block_size=10)
        assert [len(b) for b in blocks] == [10, 10]  # partial dropped

    def test_keep_partial(self):
        sources = np.arange(25, dtype=np.int64)
        blocks = blocks_from_arrays(sources, sources, block_size=10, drop_partial=False)
        assert [len(b) for b in blocks] == [10, 10, 5]

    def test_block_indices_sequential(self):
        sources = np.arange(30, dtype=np.int64)
        blocks = blocks_from_arrays(sources, sources, block_size=10)
        assert [b.index for b in blocks] == [0, 1, 2]

    def test_contents_preserved_in_order(self):
        sources = np.arange(20, dtype=np.int64)
        repliers = sources + 100
        blocks = blocks_from_arrays(sources, repliers, block_size=10)
        np.testing.assert_array_equal(blocks[1].sources, sources[10:])
        np.testing.assert_array_equal(blocks[1].repliers, repliers[10:])

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            blocks_from_arrays(np.array([1]), np.array([1]), block_size=0)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            blocks_from_arrays(np.array([1, 2]), np.array([1]), block_size=1)

    @given(st.integers(0, 100), st.integers(1, 17))
    def test_no_pair_lost_when_keeping_partial(self, n, block_size):
        sources = np.arange(n, dtype=np.int64)
        blocks = blocks_from_arrays(
            sources, sources, block_size=block_size, drop_partial=False
        )
        total = sum(len(b) for b in blocks)
        assert total == n


class TestPartitionPairs:
    def test_from_pair_table(self):
        table = Table("pairs", PAIR_COLUMNS)
        for i in range(12):
            table.append((i, float(i), i % 3, "q", float(i), 100 + i % 2, 0))
        blocks = partition_pairs(table, block_size=5)
        assert len(blocks) == 2
        assert blocks[0].sources.tolist() == [0, 1, 2, 0, 1]
        assert blocks[0].repliers.tolist() == [100, 101, 100, 101, 100]
