"""Tests for repro.persist.state — the checkpoint/journal/recover lifecycle."""

import os

import pytest

from repro.core.streaming import StreamingRules
from repro.obs.registry import MetricsRegistry
from repro.persist.snapshot import fingerprint_counts, write_snapshot
from repro.persist.state import PersistentState, inspect_state_dir
from repro.persist.wal import RECORD_BYTES

PAIRS = [(q % 5, r % 4) for q, r in zip(range(60), range(2, 122, 2))]


def rules():
    return StreamingRules(min_support_count=2, window_pairs=256)


def fresh_state(tmp_path, **kwargs):
    kwargs.setdefault("fsync", "never")
    return PersistentState(str(tmp_path / "node"), **kwargs)


class TestLifecycle:
    def test_cold_start(self, tmp_path):
        state = fresh_state(tmp_path)
        counts, info = state.recover(rules())
        assert not info.restored
        assert info.snapshot_seq is None
        assert info.records_replayed == 0
        assert counts.n_rules() == 0
        assert state.wal_segments() and not state.snapshots()

    def test_record_pair_before_recover_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="recover"):
            fresh_state(tmp_path).record_pair(1, 2)

    def test_checkpoint_before_recover_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="recover"):
            fresh_state(tmp_path).checkpoint(rules().make_counts())

    def test_wal_only_recovery(self, tmp_path):
        state = fresh_state(tmp_path)
        counts, _ = state.recover(rules())
        for source, replier in PAIRS:
            counts.push(source, replier)
            state.record_pair(source, replier)
        live = fingerprint_counts(counts)
        state.close()

        twin_state = fresh_state(tmp_path)
        twin, info = twin_state.recover(rules())
        assert not info.restored  # no snapshot was ever taken
        assert info.records_replayed == len(PAIRS)
        assert info.fingerprint == live
        assert fingerprint_counts(twin) == live
        twin_state.close()

    def test_snapshot_plus_tail_recovery(self, tmp_path):
        state = fresh_state(tmp_path)
        counts, _ = state.recover(rules())
        for source, replier in PAIRS[:40]:
            counts.push(source, replier)
            state.record_pair(source, replier)
        state.checkpoint(counts)
        for source, replier in PAIRS[40:]:
            counts.push(source, replier)
            state.record_pair(source, replier)
        live = fingerprint_counts(counts)
        state.close()

        twin_state = fresh_state(tmp_path)
        twin, info = twin_state.recover(rules())
        assert info.restored
        assert info.records_replayed == len(PAIRS) - 40  # only the tail
        assert fingerprint_counts(twin) == live
        twin_state.close()

    def test_checkpoint_rotates_and_compacts(self, tmp_path):
        state = fresh_state(tmp_path)
        counts, _ = state.recover(rules())
        for source, replier in PAIRS:
            counts.push(source, replier)
            state.record_pair(source, replier)
        state.checkpoint(counts)
        state.checkpoint(counts)
        # steady state: exactly one snapshot, one (fresh) WAL segment
        snaps = state.snapshots()
        segments = state.wal_segments()
        assert len(snaps) == 1 and len(segments) == 1
        assert segments[0][0] == snaps[0][0] + 1  # WAL seq follows snapshot


class TestDamageTolerance:
    def _populated(self, tmp_path):
        state = fresh_state(tmp_path)
        counts, _ = state.recover(rules())
        for source, replier in PAIRS:
            counts.push(source, replier)
            state.record_pair(source, replier)
        state.close()
        return fingerprint_counts(counts), state.wal_segments()

    def test_torn_tail_truncated_physically(self, tmp_path):
        _live, segments = self._populated(tmp_path)
        _seq, path = segments[-1]
        torn_size = os.path.getsize(path) - 5
        os.truncate(path, torn_size)

        state = fresh_state(tmp_path)
        twin, info = state.recover(rules())
        assert info.truncated
        assert info.records_replayed == len(PAIRS) - 1
        # the torn bytes are gone from disk, not just skipped
        assert os.path.getsize(path) == torn_size - (RECORD_BYTES - 5)
        state.close()

        # a second recovery over the repaired log is clean and identical
        state2 = fresh_state(tmp_path)
        twin2, info2 = state2.recover(rules())
        assert not info2.truncated
        assert info2.fingerprint == info.fingerprint
        state2.close()

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        state = fresh_state(tmp_path)
        counts, _ = state.recover(rules())
        for source, replier in PAIRS[:30]:
            counts.push(source, replier)
            state.record_pair(source, replier)
        old_fingerprint = fingerprint_counts(counts)
        state.checkpoint(counts)
        old_snap = state.snapshots()[0][1]
        keep = open(old_snap, "rb").read()
        for source, replier in PAIRS[30:]:
            counts.push(source, replier)
            state.record_pair(source, replier)
        state.checkpoint(counts)
        state.close()
        # resurrect the older snapshot, then corrupt the newest one
        with open(old_snap, "wb") as fh:
            fh.write(keep)
        newest = state.snapshots()[-1][1]
        data = bytearray(open(newest, "rb").read())
        data[-1] ^= 0xFF
        open(newest, "wb").write(bytes(data))

        twin_state = fresh_state(tmp_path)
        twin, info = twin_state.recover(rules())
        assert info.restored
        assert info.snapshot_seq == state.snapshots()[0][0]
        # WAL covered by the bad snapshot was compacted away, so the
        # fallback restores exactly the older checkpoint's state.
        assert fingerprint_counts(twin) == old_fingerprint
        twin_state.close()

    def test_all_snapshots_invalid_means_cold_start(self, tmp_path):
        state = fresh_state(tmp_path)
        write_snapshot(
            os.path.join(state.state_dir, "snap-00000001.snap"),
            rules().make_counts(),
        )
        bad = os.path.join(state.state_dir, "snap-00000002.snap")
        with open(bad, "wb") as fh:
            fh.write(b"junk")
        counts, info = state.recover(rules())
        assert info.restored  # seq 1 is still fine
        assert info.snapshot_seq == 1
        state.close()


class TestMetricsAndInspect:
    def test_metrics_flow_through_registry(self, tmp_path):
        registry = MetricsRegistry()
        state = fresh_state(tmp_path, label="n0", registry=registry)
        counts, _ = state.recover(rules())
        for source, replier in PAIRS:
            counts.push(source, replier)
            state.record_pair(source, replier)
        state.checkpoint(counts)
        state.close()
        assert registry.total("repro_persist_wal_records_total") == len(PAIRS)
        assert registry.total("repro_persist_checkpoints_total") == 1
        assert registry.total("repro_persist_wal_bytes_total") == (
            len(PAIRS) * RECORD_BYTES
        )

    def test_inspect_state_dir(self, tmp_path):
        state = fresh_state(tmp_path)
        counts, _ = state.recover(rules())
        for source, replier in PAIRS:
            counts.push(source, replier)
            state.record_pair(source, replier)
        state.checkpoint(counts)
        state.record_pair(9, 9)
        state.close()
        report = inspect_state_dir(state.state_dir)
        assert len(report["snapshots"]) == 1
        assert report["snapshots"][0]["n_rules"] == counts.n_rules()
        assert len(report["wal_segments"]) == 1
        assert report["wal_segments"][0]["records"] == 1

    def test_inspect_reports_bad_snapshot_instead_of_raising(self, tmp_path):
        state = fresh_state(tmp_path)
        bad = os.path.join(state.state_dir, "snap-00000001.snap")
        with open(bad, "wb") as fh:
            fh.write(b"nope")
        report = inspect_state_dir(state.state_dir)
        assert "error" in report["snapshots"][0]

    def test_close_is_idempotent(self, tmp_path):
        state = fresh_state(tmp_path)
        state.recover(rules())
        state.close()
        state.close()
        assert state.closed
