#!/usr/bin/env python
"""The paper's full data pipeline, end to end.

Replays §IV of the paper at small scale: capture query/reply records at a
monitor node (with unreplied queries and buggy duplicate GUIDs), import
them into the relational store, deduplicate by GUID keeping the first
record, join queries with replies into query–reply pairs, partition into
blocks, and drive the Sliding Window simulator — printing the counts the
paper reports at each stage (their trace: 10,514,090 queries, 3,254,274
replies, 3,254,274 pairs).

Run:  python examples/trace_pipeline.py [n_pairs]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.core.strategies import SlidingWindow
from repro.store.database import Database
from repro.trace.blocks import partition_pairs
from repro.trace.dedup import dedup_queries, dedup_replies
from repro.trace.io import read_queries, write_queries
from repro.trace.pairing import build_pair_table
from repro.trace.records import QUERY_COLUMNS, REPLY_COLUMNS, render_ip
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator


def main() -> None:
    n_pairs = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    config = MonitorTraceConfig(
        block_size=2_000,
        n_neighbors=60,
        duplicate_guid_rate=0.005,
    )
    generator = MonitorTraceGenerator(config, seed=1)

    print(f"1. capturing trace at the monitor node ({n_pairs:,} replied queries)...")
    t0 = time.time()
    db = Database("gnutella_trace")
    queries = db.create_table("queries", QUERY_COLUMNS)
    replies = db.create_table("replies", REPLY_COLUMNS)
    for query, reply in generator.iter_events(n_pairs):
        queries.append(query.as_row())
        if reply is not None:
            replies.append(reply.as_row())
    print(
        f"   captured {len(queries):,} query and {len(replies):,} reply "
        f"records in {time.time() - t0:.1f}s"
    )
    sample = queries.row_dict(0)
    print(
        f"   sample query: t={sample['time']:.2f}s guid={sample['guid']:x} "
        f"from {render_ip(sample['source'])} \"{sample['query_string']}\""
    )

    print("\n2. persisting and re-reading the raw query trace (I/O roundtrip)...")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "queries.tsv"
        from repro.trace.records import QueryRecord

        write_queries(
            path, (QueryRecord(*row) for row in queries.iter_rows())
        )
        reread = read_queries(path)
        assert len(reread) == len(queries)
        print(f"   {path.stat().st_size / 1e6:.1f} MB on disk, {len(reread):,} rows back")

    print("\n3. removing duplicate GUIDs (keep first, as the paper did)...")
    clean_queries = dedup_queries(queries)
    clean_replies = dedup_replies(replies)
    dupes = len(queries) - len(clean_queries)
    print(f"   dropped {dupes} duplicate-GUID query records (buggy clients)")

    print("\n4. joining queries with replies on GUID...")
    t0 = time.time()
    pairs = build_pair_table(clean_queries, clean_replies)
    print(f"   {len(pairs):,} query-reply pairs in {time.time() - t0:.1f}s")

    print(f"\n5. partitioning into blocks of {config.block_size:,} pairs...")
    blocks = partition_pairs(pairs, block_size=config.block_size)
    print(f"   {len(blocks)} full blocks")

    print("\n6. running the Sliding Window rule simulator...")
    run = SlidingWindow(min_support_count=5).run(blocks)
    print(f"   {'trial':>5} {'coverage':>9} {'success':>9} {'rules':>7}")
    for trial in run.trials:
        print(
            f"   {trial.block_index:>5} {trial.coverage:>9.3f} "
            f"{trial.success:>9.3f} {trial.ruleset_size:>7}"
        )
    print(
        f"\n   averages: coverage={run.average_coverage:.3f} "
        f"success={run.average_success:.3f}"
    )


if __name__ == "__main__":
    main()
