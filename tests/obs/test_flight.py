"""Tests for the crash flight recorder."""

import json
import os

import pytest

from repro.obs.flight import (
    FLIGHT_SUFFIX,
    FlightRecorder,
    harvest_flight_dir,
    load_flight,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestRing:
    def test_ring_keeps_only_the_last_capacity_events(self, tmp_path):
        recorder = FlightRecorder(
            str(tmp_path / "n.flight.jsonl"),
            capacity=3,
            flush_every=1000,
            clock=FakeClock(),
        )
        for i in range(10):
            recorder.record("step", i=i)
        assert len(recorder) == 3
        assert recorder.recorded == 10
        recorder.dump()
        events = load_flight(recorder.path)["events"]
        assert [e["i"] for e in events] == [7, 8, 9]

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path / "x"), capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path / "x"), flush_every=0)


class TestDump:
    def test_round_trip_with_header(self, tmp_path):
        clock = FakeClock()
        path = str(tmp_path / "deep" / "n.flight.jsonl")
        recorder = FlightRecorder(path, capacity=8, clock=clock)
        recorder.record("lifecycle", what="start", node=3)
        clock.now = 101.5
        recorder.record("trace", guid=7, event="issued")
        recorder.dump(reason="sigterm")
        report = load_flight(path)
        assert report["header"]["flight"] == 1
        assert report["header"]["reason"] == "sigterm"
        assert report["header"]["events"] == 2
        assert report["header"]["pid"] == os.getpid()
        assert report["events"][0] == {
            "ts": 100.0, "kind": "lifecycle", "what": "start", "node": 3
        }
        assert report["events"][1]["guid"] == 7

    def test_dump_is_atomic_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "n.flight.jsonl")
        recorder = FlightRecorder(path, clock=FakeClock())
        recorder.record("x")
        recorder.dump()
        recorder.record("y")
        recorder.dump()
        assert os.listdir(tmp_path) == ["n.flight.jsonl"]

    def test_periodic_flush_every_n_records(self, tmp_path):
        path = str(tmp_path / "n.flight.jsonl")
        recorder = FlightRecorder(
            path, capacity=16, flush_every=4, clock=FakeClock()
        )
        for i in range(3):
            recorder.record("step", i=i)
        assert not os.path.exists(path)  # SIGKILL here would lose 3 events
        recorder.record("step", i=3)
        assert recorder.dumps == 1
        assert load_flight(path)["header"]["reason"] == "periodic"
        for i in range(4, 8):
            recorder.record("step", i=i)
        assert recorder.dumps == 2


class TestLoad:
    def test_load_rejects_empty_and_foreign_files(self, tmp_path):
        empty = tmp_path / "empty.flight.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_flight(str(empty))
        foreign = tmp_path / "foreign.flight.jsonl"
        foreign.write_text('{"not": "a flight header"}\n')
        with pytest.raises(ValueError):
            load_flight(str(foreign))

    def test_harvest_dir_skips_unparseable(self, tmp_path):
        good = FlightRecorder(
            str(tmp_path / f"node-000{FLIGHT_SUFFIX}"), clock=FakeClock()
        )
        good.record("lifecycle", what="start")
        good.dump()
        (tmp_path / f"node-001{FLIGHT_SUFFIX}").write_text("torn{{{\n")
        (tmp_path / "unrelated.txt").write_text("ignored\n")
        recordings = harvest_flight_dir(str(tmp_path))
        assert list(recordings) == [f"node-000{FLIGHT_SUFFIX}"]
        assert harvest_flight_dir(str(tmp_path / "missing")) == {}

    def test_header_line_is_json_first(self, tmp_path):
        path = str(tmp_path / "n.flight.jsonl")
        recorder = FlightRecorder(path, clock=FakeClock())
        recorder.record("x")
        recorder.dump()
        first = open(path, encoding="utf-8").readline()
        assert json.loads(first)["flight"] == 1
