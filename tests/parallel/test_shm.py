"""Tests for the shared-memory trace transport (repro.parallel.shm)."""

import pickle

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.parallel.shm import AttachedTraceStore, SharedTraceStore, TraceHandle


def columns(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 50, size=n).astype(np.int64),
        rng.integers(100, 150, size=n).astype(np.int64),
    )


class TestSharedTraceStore:
    def test_round_trip(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            handle = store.put("spec", sources, repliers)
            assert handle.n_pairs == 100
            assert len(store) == 1
            out_sources, out_repliers = store.arrays("spec")
            np.testing.assert_array_equal(out_sources, sources)
            np.testing.assert_array_equal(out_repliers, repliers)

    def test_put_copies(self):
        """Mutating the input after put must not change the stored trace."""
        sources, repliers = columns()
        with SharedTraceStore() as store:
            store.put("spec", sources, repliers)
            sources[:] = -1
            assert store.arrays("spec")[0][0] != -1

    def test_duplicate_put_is_idempotent(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            first = store.put("spec", sources, repliers)
            second = store.put("spec", sources + 1, repliers)
            assert second is first
            assert len(store) == 1

    def test_rejects_mismatched_columns(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            with pytest.raises(ValueError):
                store.put("spec", sources, repliers[:-1])

    def test_close_unlinks_segments(self):
        sources, repliers = columns()
        store = SharedTraceStore()
        handle = store.put("spec", sources, repliers)
        store.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.shm_name)
        store.close()  # idempotent

    def test_empty_trace(self):
        empty = np.array([], dtype=np.int64)
        with SharedTraceStore() as store:
            handle = store.put("spec", empty, empty)
            assert handle.n_pairs == 0
            assert len(store.arrays("spec")[0]) == 0


class TestAttachedTraceStore:
    def test_handles_are_picklable(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            store.put("spec", sources, repliers)
            handles = pickle.loads(pickle.dumps(store.handles()))
            assert handles == {"spec": TraceHandle(handles["spec"].shm_name, 100)}

    def test_attached_arrays_match(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            store.put("spec", sources, repliers)
            attached = AttachedTraceStore(store.handles())
            try:
                assert "spec" in attached
                assert "other" not in attached
                out_sources, out_repliers = attached.arrays("spec")
                np.testing.assert_array_equal(out_sources, sources)
                np.testing.assert_array_equal(out_repliers, repliers)
                # Second call reuses the attachment.
                again, _ = attached.arrays("spec")
                np.testing.assert_array_equal(again, sources)
            finally:
                attached.close()


class TestSpillPath:
    def test_large_trace_spills_to_disk(self, tmp_path):
        sources, repliers = columns(4096)
        with SharedTraceStore(spill_dir=tmp_path, spill_threshold_bytes=1024) as store:
            handle = store.put("spec", sources, repliers)
            assert handle.shm_name is None
            assert handle.path is not None
            assert len(store) == 1
            out_sources, out_repliers = store.arrays("spec")
            np.testing.assert_array_equal(out_sources, sources)
            np.testing.assert_array_equal(out_repliers, repliers)
        assert list(tmp_path.iterdir()) == []  # close() unlinked the file

    def test_small_trace_stays_in_shm(self, tmp_path):
        sources, repliers = columns(8)
        with SharedTraceStore(spill_dir=tmp_path, spill_threshold_bytes=1 << 20) as store:
            handle = store.put("spec", sources, repliers)
            assert handle.shm_name is not None
            assert handle.path is None

    def test_no_spill_without_spill_dir(self):
        sources, repliers = columns(4096)
        with SharedTraceStore(spill_threshold_bytes=1) as store:
            handle = store.put("spec", sources, repliers)
            assert handle.path is None

    def test_empty_trace_never_spills(self, tmp_path):
        empty = np.array([], dtype=np.int64)
        with SharedTraceStore(spill_dir=tmp_path, spill_threshold_bytes=0) as store:
            handle = store.put("spec", empty, empty)
            assert handle.path is None
            assert len(store.arrays("spec")[0]) == 0

    def test_attached_store_reads_spilled_trace(self, tmp_path):
        sources, repliers = columns(2048, seed=3)
        with SharedTraceStore(spill_dir=tmp_path, spill_threshold_bytes=1024) as store:
            store.put("spec", sources, repliers)
            handles = pickle.loads(pickle.dumps(store.handles()))
            attached = AttachedTraceStore(handles)
            try:
                out_sources, out_repliers = attached.arrays("spec")
                np.testing.assert_array_equal(out_sources, sources)
                np.testing.assert_array_equal(out_repliers, repliers)
                assert isinstance(out_sources, np.memmap)
            finally:
                attached.close()

    def test_spill_put_copies(self, tmp_path):
        """The spilled file must capture the columns at put() time."""
        sources, repliers = columns(2048)
        with SharedTraceStore(spill_dir=tmp_path, spill_threshold_bytes=1024) as store:
            store.put("spec", sources, repliers)
            original_first = sources[0]
            sources[:] = -1
            assert store.arrays("spec")[0][0] == original_first

    def test_mixed_spill_and_shm_traces(self, tmp_path):
        big_s, big_r = columns(4096, seed=1)
        small_s, small_r = columns(8, seed=2)
        with SharedTraceStore(spill_dir=tmp_path, spill_threshold_bytes=1024) as store:
            big = store.put("big", big_s, big_r)
            small = store.put("small", small_s, small_r)
            assert big.path is not None and small.path is None
            assert len(store) == 2
            attached = AttachedTraceStore(store.handles())
            try:
                np.testing.assert_array_equal(attached.arrays("big")[0], big_s)
                np.testing.assert_array_equal(attached.arrays("small")[0], small_s)
            finally:
                attached.close()
