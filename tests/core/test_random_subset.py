"""Tests for ruleset_test_random_subset (§III-B.1 random forwarding)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evaluation import (
    ruleset_test,
    ruleset_test_random_subset,
    ruleset_test_random_subset_reference,
)
from repro.core.rules import Rule, RuleSet
from tests.conftest import make_block


def multi_consequent_ruleset():
    return RuleSet(
        [
            Rule(1, 10, 9),
            Rule(1, 11, 5),
            Rule(1, 12, 1),
        ]
    )


class TestRandomSubset:
    def test_k_at_least_all_equals_full_match(self):
        rs = multi_consequent_ruleset()
        block = make_block([(1, 10), (1, 11), (1, 12), (1, 99)])
        full = ruleset_test(rs, block)
        rand = ruleset_test_random_subset(rs, block, k=3, rng=0)
        assert (rand.n_covered, rand.n_successful) == (
            full.n_covered,
            full.n_successful,
        )

    def test_k1_success_rate_is_one_third_on_average(self):
        rs = multi_consequent_ruleset()
        block = make_block([(1, 10)] * 300)
        result = ruleset_test_random_subset(rs, block, k=1, rng=np.random.default_rng(5))
        # One of three consequents drawn uniformly: success ~ 1/3.
        assert 0.25 < result.success < 0.42

    def test_uncovered_source(self):
        rs = multi_consequent_ruleset()
        block = make_block([(7, 10)])
        result = ruleset_test_random_subset(rs, block, k=1, rng=1)
        assert result.n_covered == 0

    def test_deterministic_given_seed(self):
        rs = multi_consequent_ruleset()
        block = make_block([(1, 10), (1, 11)] * 20)
        a = ruleset_test_random_subset(rs, block, k=1, rng=42)
        b = ruleset_test_random_subset(rs, block, k=1, rng=42)
        assert a.n_successful == b.n_successful

    def test_validation(self):
        rs = multi_consequent_ruleset()
        with pytest.raises(ValueError):
            ruleset_test_random_subset(rs, make_block([]), k=0)

    def test_matches_reference_exactly_when_k_covers_all(self):
        """With k >= every consequent list, neither path draws randomly."""
        rs = multi_consequent_ruleset()
        block = make_block([(1, 10), (1, 11), (1, 12), (1, 99), (7, 1)] * 8)
        fast = ruleset_test_random_subset(rs, block, k=3, rng=0)
        slow = ruleset_test_random_subset_reference(rs, block, k=3, rng=0)
        assert fast == slow

    def test_random_below_topk_on_skewed_traffic(self):
        """With traffic matching the support ordering, top-k wins."""
        rs = multi_consequent_ruleset()
        # 9:5:1 traffic mirrors the rule support counts.
        pairs = [(1, 10)] * 9 + [(1, 11)] * 5 + [(1, 12)] * 1
        block = make_block(pairs * 30)
        from repro.core.generation import generate_ruleset

        topk_rs = generate_ruleset(block, min_support_count=1, top_k=1)
        topk = ruleset_test(topk_rs, block)
        rand = ruleset_test_random_subset(rs, block, k=1, rng=7)
        assert topk.success > rand.success


# Hypothesis strategies for rulesets and blocks over a small id universe,
# so covered/matched/uncovered queries all occur with high probability.
rules_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.integers(10, 15)),
    min_size=1,
    max_size=12,
    unique=True,
).map(lambda pairs: RuleSet(Rule(a, c, 1 + i) for i, (a, c) in enumerate(pairs)))

pairs_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(8, 17)), min_size=0, max_size=60
)


class TestVectorizedVsReference:
    """The vectorized path against the kept pure-Python reference loop.

    The two consume the RNG stream differently, so stochastic outcomes
    are compared distributionally; everything deterministic — coverage,
    and success whenever no random draw happens — must agree exactly.
    """

    @settings(deadline=None, max_examples=60)
    @given(rules=rules_strategy, pairs=pairs_strategy, k=st.integers(1, 4))
    def test_coverage_identical(self, rules, pairs, k):
        block = make_block(pairs)
        fast = ruleset_test_random_subset(rules, block, k=k, rng=0)
        slow = ruleset_test_random_subset_reference(rules, block, k=k, rng=0)
        assert fast.n_total == slow.n_total
        assert fast.n_covered == slow.n_covered

    @settings(deadline=None, max_examples=30)
    @given(rules=rules_strategy, pairs=pairs_strategy)
    def test_exact_equality_when_no_draw_needed(self, rules, pairs):
        """k larger than any consequent list: both paths deterministic."""
        k = max(
            (len(rules.consequents_for(a)) for a in rules.antecedents()),
            default=1,
        )
        block = make_block(pairs)
        fast = ruleset_test_random_subset(rules, block, k=k, rng=0)
        slow = ruleset_test_random_subset_reference(rules, block, k=k, rng=0)
        assert fast == slow
        # ... and both then agree with unrestricted RULESET-TEST.
        full = ruleset_test(rules, block)
        assert fast.n_successful == full.n_successful

    def test_success_distribution_matches_reference(self):
        """Mean successes over repeated trials agree between the paths.

        P(success) per matched query is k/m in both implementations; with
        300 queries x 40 trials the means must land well within 3 sigma
        of each other.
        """
        rs = multi_consequent_ruleset()
        block = make_block([(1, 10), (1, 11), (1, 12)] * 100)
        rng_fast = np.random.default_rng(123)
        rng_slow = np.random.default_rng(456)
        fast_mean = np.mean(
            [
                ruleset_test_random_subset(rs, block, k=2, rng=rng_fast).n_successful
                for _ in range(40)
            ]
        )
        slow_mean = np.mean(
            [
                ruleset_test_random_subset_reference(
                    rs, block, k=2, rng=rng_slow
                ).n_successful
                for _ in range(40)
            ]
        )
        # 300 Bernoulli(2/3) per trial: std ~ 8.2 per trial, ~1.3 on the
        # mean of 40 -> means within ~5 of each other at 3 sigma.
        assert abs(fast_mean - slow_mean) < 6.0
