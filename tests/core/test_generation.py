"""Tests for repro.core.generation (GENERATE-RULESET)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generation import generate_ruleset, pack_pair_keys
from tests.conftest import make_block


class TestPackPairKeys:
    def test_roundtrip(self):
        sources = np.array([1, 2, 3], dtype=np.int64)
        repliers = np.array([10, 20, 30], dtype=np.int64)
        keys = pack_pair_keys(sources, repliers)
        np.testing.assert_array_equal(keys >> 32, sources)
        np.testing.assert_array_equal(keys & 0xFFFFFFFF, repliers)

    def test_rejects_out_of_range_ids(self):
        big = np.array([1 << 31], dtype=np.int64)
        ok = np.array([0], dtype=np.int64)
        with pytest.raises(ValueError):
            pack_pair_keys(big, ok)
        with pytest.raises(ValueError):
            pack_pair_keys(ok, -big)

    def test_validate_false_skips_range_scan(self, monkeypatch):
        import repro.core.generation as generation

        calls = []
        monkeypatch.setattr(
            generation, "scan_id_range", lambda *args: calls.append(1)
        )
        sources = np.array([1, 2], dtype=np.int64)
        pack_pair_keys(sources, sources)
        assert len(calls) == 1
        pack_pair_keys(sources, sources, validate=False)
        assert len(calls) == 1

    def test_repeated_mining_scans_block_ids_once(self, small_block, monkeypatch):
        """Regression: the id-range scan used to run on every
        pack_pair_keys call; it is now cached per block, so re-mining the
        same block must not repeat it."""
        import repro.trace.blocks as blocks_module

        calls = []
        real_scan = blocks_module.scan_id_range
        monkeypatch.setattr(
            blocks_module,
            "scan_id_range",
            lambda *args: calls.append(1) or real_scan(*args),
        )
        for _ in range(3):
            generate_ruleset(small_block, min_support_count=1)
        assert len(calls) == 1


class TestGenerateRuleset:
    def test_counts_from_small_block(self, small_block):
        rs = generate_ruleset(small_block, min_support_count=1)
        # (1,10) x4, (1,11) x2, (2,12) x3, (2,10) x1
        assert rs.rules_for(1)[0].consequent == 10
        assert rs.rules_for(1)[0].count == 4
        assert rs.matches(2, 12)
        assert rs.matches(2, 10)
        assert len(rs) == 4

    def test_support_pruning(self, small_block):
        rs = generate_ruleset(small_block, min_support_count=3)
        assert rs.matches(1, 10)
        assert rs.matches(2, 12)
        assert not rs.matches(1, 11)  # count 2 < 3
        assert not rs.matches(2, 10)  # count 1 < 3

    def test_top_k(self, small_block):
        rs = generate_ruleset(small_block, min_support_count=1, top_k=1)
        assert rs.consequents_for(1) == [10]
        assert rs.consequents_for(2) == [12]

    def test_confidence_pruning(self, small_block):
        # Source 1 has 6 pairs: (1,10) conf 4/6, (1,11) conf 2/6.
        rs = generate_ruleset(small_block, min_support_count=1, min_confidence=0.5)
        assert rs.matches(1, 10)
        assert not rs.matches(1, 11)

    def test_empty_block(self):
        rs = generate_ruleset(make_block([]))
        assert len(rs) == 0

    def test_all_pruned(self, small_block):
        rs = generate_ruleset(small_block, min_support_count=100)
        assert len(rs) == 0

    @pytest.mark.parametrize("impl", ["numpy", "python"])
    def test_both_implementations_work(self, small_block, impl):
        rs = generate_ruleset(small_block, min_support_count=2, implementation=impl)
        assert rs.matches(1, 10)

    def test_unknown_implementation(self, small_block):
        with pytest.raises(ValueError):
            generate_ruleset(small_block, implementation="cython")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_support_count": 0},
            {"top_k": 0},
            {"min_confidence": 1.5},
        ],
    )
    def test_parameter_validation(self, small_block, kwargs):
        with pytest.raises(ValueError):
            generate_ruleset(small_block, **kwargs)


pairs_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=0, max_size=200
)


@settings(max_examples=60, deadline=None)
@given(
    pairs_strategy,
    st.integers(1, 5),
    st.sampled_from([None, 1, 2]),
    st.sampled_from([0.0, 0.3, 0.6]),
)
def test_numpy_equals_python_reference(pairs, min_support, top_k, min_conf):
    """Property: the vectorized and reference implementations agree."""
    block = make_block(pairs)
    a = generate_ruleset(
        block,
        min_support_count=min_support,
        top_k=top_k,
        min_confidence=min_conf,
        implementation="numpy",
    )
    b = generate_ruleset(
        block,
        min_support_count=min_support,
        top_k=top_k,
        min_confidence=min_conf,
        implementation="python",
    )
    assert sorted((r.antecedent, r.consequent, r.count) for r in a) == sorted(
        (r.antecedent, r.consequent, r.count) for r in b
    )
