"""Tests for the trace store's zstd codec (id 2).

The container may or may not ship a zstd binding, so the suite covers
both worlds: with a real binding the round trip runs natively; without
one, a tiny invertible fake is monkeypatched in so the codec-id-2 write
and read paths are exercised either way, and the graceful-degradation
errors are asserted exactly.
"""

import zlib

import numpy as np
import pytest

import repro.trace.store as store_module
from repro.trace.store import (
    TraceStoreError,
    TraceStoreReader,
    TraceStoreWriter,
)


def _columns(n=3000):
    rng = np.random.default_rng(7)
    # Low-cardinality ids compress well, so compressed < raw for sure.
    sources = rng.integers(0, 50, size=n, dtype=np.int64)
    repliers = rng.integers(0, 50, size=n, dtype=np.int64)
    return sources, repliers


def _fake_zstd():
    """An invertible stand-in with the same (compress, decompress) shape."""
    return (
        lambda data, level: b"FZ" + zlib.compress(data, level),
        lambda data: zlib.decompress(data[2:]),
    )


@pytest.fixture
def fake_zstd(monkeypatch):
    """Guarantee a zstd binding exists (the real one when available)."""
    if store_module._ZSTD is None:
        monkeypatch.setattr(store_module, "_ZSTD", _fake_zstd())
    return store_module._ZSTD


class TestZstdRoundTrip:
    def test_roundtrip_next_to_zlib(self, tmp_path, fake_zstd):
        sources, repliers = _columns()
        paths = {}
        for codec in ("zlib", "zstd"):
            path = tmp_path / f"trace-{codec}.rpt"
            with TraceStoreWriter(path, block_size=500, codec=codec) as writer:
                writer.append(sources, repliers)
            paths[codec] = path
        for codec, path in paths.items():
            with TraceStoreReader(path) as reader:
                assert reader.n_pairs == len(sources)
                got_src = np.concatenate(
                    [reader.columns(i)[0] for i in range(reader.n_blocks)]
                )
                got_rep = np.concatenate(
                    [reader.columns(i)[1] for i in range(reader.n_blocks)]
                )
            np.testing.assert_array_equal(got_src, sources)
            np.testing.assert_array_equal(got_rep, repliers)

    def test_zstd_blocks_carry_codec_id_2(self, tmp_path, fake_zstd):
        sources, repliers = _columns()
        path = tmp_path / "trace.rpt"
        with TraceStoreWriter(path, block_size=500, codec="zstd") as writer:
            writer.append(sources, repliers)
        with TraceStoreReader(path) as reader:
            codecs, _lengths, _payload = reader._layout(reader._entries[0])
        assert store_module._CODEC_ZSTD in codecs

    def test_blocks_identical_across_codecs(self, tmp_path, fake_zstd):
        sources, repliers = _columns(1200)
        fingerprints = {}
        for codec in (None, "zlib", "zstd"):
            path = tmp_path / f"t-{codec}.rpt"
            with TraceStoreWriter(path, block_size=400, codec=codec) as writer:
                writer.append(sources, repliers)
            with TraceStoreReader(path) as reader:
                fingerprints[codec] = [
                    reader.block(i).fingerprint() for i in range(reader.n_blocks)
                ]
        assert fingerprints[None] == fingerprints["zlib"] == fingerprints["zstd"]


class TestGracefulFallback:
    def test_writer_refuses_without_binding(self, tmp_path, monkeypatch):
        monkeypatch.setattr(store_module, "_ZSTD", None)
        with pytest.raises(TraceStoreError, match="zstd binding"):
            TraceStoreWriter(tmp_path / "t.rpt", codec="zstd")

    def test_reader_refuses_zstd_segments_without_binding(
        self, tmp_path, monkeypatch
    ):
        if store_module._ZSTD is None:
            monkeypatch.setattr(store_module, "_ZSTD", _fake_zstd())
        sources, repliers = _columns()
        path = tmp_path / "t.rpt"
        with TraceStoreWriter(path, block_size=500, codec="zstd") as writer:
            writer.append(sources, repliers)
        monkeypatch.setattr(store_module, "_ZSTD", None)
        with TraceStoreReader(path) as reader:
            with pytest.raises(TraceStoreError, match="no zstd binding"):
                reader.columns(0)

    def test_unknown_codec_still_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown codec"):
            TraceStoreWriter(tmp_path / "t.rpt", codec="lz4")


@pytest.mark.skipif(
    store_module._ZSTD is None, reason="no zstd binding in this interpreter"
)
class TestRealBinding:
    def test_native_roundtrip(self, tmp_path):
        sources, repliers = _columns()
        path = tmp_path / "t.rpt"
        with TraceStoreWriter(path, block_size=500, codec="zstd") as writer:
            writer.append(sources, repliers)
        with TraceStoreReader(path) as reader:
            got = np.concatenate(
                [reader.columns(i)[0] for i in range(reader.n_blocks)]
            )
        np.testing.assert_array_equal(got, sources)
