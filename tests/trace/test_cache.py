"""Tests for repro.trace.cache."""

import numpy as np
import pytest

from repro.trace.cache import cached_pairs, load_pairs, save_pairs
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

CFG = MonitorTraceConfig(block_size=300, n_neighbors=15, n_categories=12)


def generate(n=600, seed=1):
    return MonitorTraceGenerator(CFG, seed=seed).generate_pair_arrays(n)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.npz"
        arrays = generate()
        save_pairs(path, arrays)
        back = load_pairs(path)
        for name in ("time", "source", "replier", "category", "host"):
            np.testing.assert_array_equal(getattr(back, name), getattr(arrays, name))

    def test_reject_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError):
            load_pairs(path)


class TestCachedPairs:
    def test_generates_and_caches(self, tmp_path):
        path = tmp_path / "cache.npz"
        first = cached_pairs(path, 400, config=CFG, seed=2)
        assert path.exists()
        second = cached_pairs(path, 400, config=CFG, seed=2)
        np.testing.assert_array_equal(first.source, second.source)

    def test_prefix_slicing(self, tmp_path):
        path = tmp_path / "cache.npz"
        full = cached_pairs(path, 500, config=CFG, seed=3)
        short = cached_pairs(path, 200, config=CFG, seed=3)
        assert len(short) == 200
        np.testing.assert_array_equal(short.source, full.source[:200])

    def test_regenerates_when_too_short(self, tmp_path):
        path = tmp_path / "cache.npz"
        cached_pairs(path, 200, config=CFG, seed=4)
        longer = cached_pairs(path, 500, config=CFG, seed=4)
        assert len(longer) == 500
        # And the cache now holds the longer trace.
        assert len(load_pairs(path)) == 500

    def test_negative_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            cached_pairs(tmp_path / "x.npz", -1, config=CFG)
