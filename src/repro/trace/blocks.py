"""Blocks of query–reply pairs.

The paper's simulator operates on *blocks* — consecutive runs of (by
default) 10,000 query–reply pairs: a rule set is generated from one block
and tested against following blocks.  :class:`PairBlock` is the columnar
(numpy) representation the rule engine consumes; partitioning helpers build
blocks from either the fast-path :class:`~repro.workload.tracegen.PairArrays`
or the full pipeline's pair table.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.store.table import Table

__all__ = [
    "PairBlock",
    "partition_pairs",
    "blocks_from_arrays",
    "iter_blocks_from_arrays",
    "iter_partition_pairs",
    "blocks_from_store",
    "scan_id_range",
]

#: node ids must stay below this for (source << 32) | replier key packing.
ID_LIMIT = 1 << 31


def scan_id_range(sources: np.ndarray, repliers: np.ndarray) -> None:
    """Check both id arrays fit the packed-key id range (``[0, 2**31)``).

    This is the min/max scan that used to run inside ``pack_pair_keys`` on
    every call; callers that operate on a :class:`PairBlock` should go
    through :meth:`PairBlock.packed_keys`, which runs it once per block.
    """
    if sources.size and (
        sources.min() < 0
        or repliers.min() < 0
        or sources.max() >= ID_LIMIT
        or repliers.max() >= ID_LIMIT
    ):
        raise ValueError("node ids must be in [0, 2**31) for key packing")


@dataclass(frozen=True)
class PairBlock:
    """One block of query–reply pairs in columnar form.

    Attributes
    ----------
    sources:
        int64 array — the neighbor each query arrived from (rule
        antecedent candidates).
    repliers:
        int64 array — the neighbor each reply arrived from (rule
        consequent candidates).
    index:
        Position of this block within the trace (0-based).
    """

    sources: np.ndarray
    repliers: np.ndarray
    index: int = 0

    def __post_init__(self) -> None:
        if self.sources.shape != self.repliers.shape:
            raise ValueError("sources and repliers must have the same shape")
        if self.sources.ndim != 1:
            raise ValueError("block columns must be 1-D")

    def __len__(self) -> int:
        return len(self.sources)

    def pairs(self) -> np.ndarray:
        """(n, 2) array of [source, replier] rows (copy)."""
        return np.stack([self.sources, self.repliers], axis=1)

    # -- memoized derived views --------------------------------------------
    # A block is immutable, so its packed keys, id-range check, and content
    # fingerprint are computed at most once and cached on the instance.
    # Replay sweeps hit the same blocks dozens of times (every strategy and
    # sweep point re-mines / re-tests them), so these were measurable
    # per-call costs on the hot path.

    def validate_ids(self) -> None:
        """Check ids fit the packed-key range; runs the scan once per block."""
        if "_ids_validated" not in self.__dict__:
            scan_id_range(
                np.asarray(self.sources, dtype=np.int64),
                np.asarray(self.repliers, dtype=np.int64),
            )
            object.__setattr__(self, "_ids_validated", True)

    def packed_keys(self) -> np.ndarray:
        """Memoized ``(source << 32) | replier`` int64 keys for this block.

        All key packing funnels through
        :func:`repro.core.generation.pack_pair_keys` (resolved at call
        time so tests can install a counting hook); store-resident
        blocks arrive with this memo pre-seeded from the file's packed
        segment and never pack at all.
        """
        cached = self.__dict__.get("_packed_keys")
        if cached is None:
            from repro.core.generation import pack_pair_keys

            self.validate_ids()
            cached = pack_pair_keys(self.sources, self.repliers, validate=False)
            object.__setattr__(self, "_packed_keys", cached)
        return cached

    def fingerprint(self) -> str:
        """Content address of this block (hash of both id columns).

        Two blocks with identical (source, replier) columns share a
        fingerprint regardless of their ``index``, which is what makes
        the ruleset cache content-addressed rather than positional.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(
                np.ascontiguousarray(self.sources, dtype=np.int64).tobytes()
            )
            digest.update(
                np.ascontiguousarray(self.repliers, dtype=np.int64).tobytes()
            )
            cached = digest.hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached


def iter_blocks_from_arrays(
    sources: np.ndarray,
    repliers: np.ndarray,
    *,
    block_size: int,
    drop_partial: bool = True,
) -> Iterator[PairBlock]:
    """Lazily split parallel source/replier arrays into consecutive blocks.

    Blocks are views of the input arrays, yielded one at a time — the
    generator form the streaming strategies consume (with memmap-backed
    inputs nothing beyond the current block need be resident).
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    sources = np.asarray(sources, dtype=np.int64)
    repliers = np.asarray(repliers, dtype=np.int64)
    if sources.shape != repliers.shape:
        raise ValueError("sources and repliers must have the same shape")
    n = len(sources)
    for b, start in enumerate(range(0, n, block_size)):
        stop = min(start + block_size, n)
        if drop_partial and stop - start < block_size:
            break
        yield PairBlock(
            sources=sources[start:stop],
            repliers=repliers[start:stop],
            index=b,
        )


def blocks_from_arrays(
    sources: np.ndarray,
    repliers: np.ndarray,
    *,
    block_size: int,
    drop_partial: bool = True,
) -> list[PairBlock]:
    """Split parallel source/replier arrays into consecutive blocks.

    Parameters
    ----------
    block_size:
        Pairs per block (paper default: 10,000).
    drop_partial:
        Whether to discard a trailing block shorter than ``block_size``
        (the paper's fixed-size blocks imply this; keep it for analyses
        that must not lose data).
    """
    return list(
        iter_blocks_from_arrays(
            sources, repliers, block_size=block_size, drop_partial=drop_partial
        )
    )


def _pair_table_columns(pair_table: Table) -> tuple[np.ndarray, np.ndarray]:
    sources = np.fromiter(pair_table.column("source"), dtype=np.int64)
    repliers = np.fromiter(pair_table.column("replier"), dtype=np.int64)
    return sources, repliers


def iter_partition_pairs(
    pair_table: Table, *, block_size: int, drop_partial: bool = True
) -> Iterator[PairBlock]:
    """Lazily partition a pipeline pair table into :class:`PairBlock` views."""
    sources, repliers = _pair_table_columns(pair_table)
    return iter_blocks_from_arrays(
        sources, repliers, block_size=block_size, drop_partial=drop_partial
    )


def partition_pairs(
    pair_table: Table, *, block_size: int, drop_partial: bool = True
) -> list[PairBlock]:
    """Partition a pipeline pair table into :class:`PairBlock` objects."""
    return list(
        iter_partition_pairs(
            pair_table, block_size=block_size, drop_partial=drop_partial
        )
    )


def blocks_from_store(path_or_reader) -> Iterator[PairBlock]:
    """Stream blocks from an on-disk trace store (path or open reader).

    The store-backed twin of :func:`iter_blocks_from_arrays`: each block
    is a zero-copy ``np.memmap`` view with packed keys and fingerprint
    pre-seeded, so evaluation over a disk-resident trace keeps O(block)
    memory.  See :mod:`repro.trace.store`.

    When given a *path* this function opens its own reader and closes it
    once the stream is exhausted (or the generator is closed); a caller
    that passes an open reader keeps ownership of its lifetime.
    """
    from repro.trace.store import TraceStoreReader

    reader = path_or_reader
    if hasattr(reader, "iter_blocks"):
        yield from reader.iter_blocks()
        return
    reader = TraceStoreReader(reader)
    try:
        yield from reader.iter_blocks()
    finally:
        reader.close()
