"""Machine-readable benchmark output.

Every bench module's timings land in a ``BENCH_<name>.json`` so CI can
upload them as artifacts (and trend them) without scraping terminal
text.  Files are written to ``$BENCH_OUTPUT_DIR`` when set, else the
current directory.

Two producers share this helper:

* ``benchmarks/conftest.py`` groups the pytest-benchmark results by
  bench module after a run and emits one file per module
  (``bench_mining.py`` -> ``BENCH_mining.json``).
* ``python -m benchmarks.bench_mining`` (the serial-vs-parallel replay
  gate) emits ``BENCH_mining_gate.json`` directly.
"""

from __future__ import annotations

import json
import os

__all__ = ["bench_output_dir", "emit_bench_json"]


def bench_output_dir() -> str:
    """Directory BENCH_*.json files are written to."""
    return os.environ.get("BENCH_OUTPUT_DIR") or os.getcwd()


def emit_bench_json(name: str, payload: dict) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` must be JSON-serialisable apart from stray objects, which
    are stringified rather than rejected — a bench run should never die
    on its own reporting.
    """
    path = os.path.join(bench_output_dir(), f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"name": name, **payload}, fh, indent=2, default=str)
        fh.write("\n")
    return path
