"""Super-peer community rule tables — tier-2 association routing.

The paper's flat design mines ``{upstream} -> {downstream}`` rules from
one node's reply history (:class:`~repro.routing.association.NeighborRuleTable`).
At the super-peer tier the same machinery sees far more evidence: a
super-peer observes every query its community issues and every reply
that comes back, so it mines ``{query category} -> {replying
super-peer}`` rules over 20–50 leaves' worth of traffic instead of
one node's.

:class:`SuperPeerRules` is that table.  It counts (category,
replier-super-peer) pairs with the lossy-counting sketch
(:class:`~repro.mining.streaming.StreamingPairCounter`, the paper's
future-work streaming miner), answers routing lookups with the top-k
consequent super-peers per category, and periodically *publishes* a
compact, epoch-versioned digest of its strongest rules for neighbor
super-peers to merge (:mod:`repro.network.hier.digest`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mining.streaming import StreamingPairCounter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.network.hier.digest import RuleDigest

__all__ = ["SuperPeerRules"]


class SuperPeerRules:
    """One super-peer's mined ``{category} -> {super-peer}`` rule table."""

    name = "superpeer-rules"

    def __init__(
        self,
        superpeer_id: int,
        *,
        epsilon: float = 0.005,
        top_k: int = 3,
        min_support_count: int = 2,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if min_support_count < 1:
            raise ValueError("min_support_count must be >= 1")
        self.superpeer_id = int(superpeer_id)
        self.top_k = top_k
        self.min_support_count = min_support_count
        self.epsilon = epsilon
        self._counter = StreamingPairCounter(epsilon)
        #: bumped on every publish; receivers keep the highest per origin.
        self.epoch = 0

    @property
    def n_observations(self) -> int:
        return self._counter.n_seen

    # -- learning -------------------------------------------------------------
    def observe(self, category: int, replier_superpeer: int) -> None:
        """Record one resolved query: its category and who answered."""
        self._counter.push(int(category), int(replier_superpeer))

    # -- routing lookup ---------------------------------------------------------
    def consequents(self, category: int, k: int | None = None) -> list[int]:
        """Super-peers the rules point at for ``category``, best first.

        Only pairs at or above the support floor qualify as rules —
        the same pruning semantics as the offline GENERATE-RULESET and
        the per-node online table.
        """
        limit = self.top_k if k is None else k
        return [
            int(replier)
            for replier, count in self._counter.top_repliers(int(category), limit)
            if count >= self.min_support_count
        ]

    def rule_stats(self, category: int, consequent: int) -> tuple[int, float]:
        """``(support, confidence)`` of one rule from the sketch."""
        support = self._counter.estimate(int(category), int(consequent))
        if not support:
            return 0, 0.0
        return support, support / self._counter.n_seen

    # -- digest exchange -----------------------------------------------------
    def publish(self, top_k: int | None = None) -> "RuleDigest":
        """Snapshot the strongest rules as a new-epoch digest.

        Per category, the ``top_k`` consequents by support (ties to the
        smaller super-peer id) that clear the support floor.  The digest
        carries the raw counts plus the observation total, so receivers
        recompute confidence exactly.
        """
        # Imported lazily: repro.network.hier.network imports this module,
        # so a module-level import would be circular.
        from repro.network.hier.digest import DigestEntry, RuleDigest

        limit = self.top_k if top_k is None else top_k
        per_category: dict[int, list[tuple[int, int]]] = {}
        for (category, replier), count in self._counter.pairs_over_count(
            self.min_support_count
        ).items():
            per_category.setdefault(category, []).append((int(replier), count))
        entries = []
        for category, repliers in per_category.items():
            repliers.sort(key=lambda rc: (-rc[1], rc[0]))
            entries.extend(
                DigestEntry(int(category), replier, count)
                for replier, count in repliers[:limit]
            )
        self.epoch += 1
        return RuleDigest(
            self.superpeer_id, self.epoch, self._counter.n_seen, entries
        )

    def reset(self) -> None:
        self._counter = StreamingPairCounter(self.epsilon)
