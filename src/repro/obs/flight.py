"""Crash flight recorder: a bounded ring of recent per-worker events.

Chaos soaks and hard kills leave no evidence: a SIGKILL'd worker cannot
run a crash handler, and a worker that died on an unexpected exception
took its recent routing decisions with it.  :class:`FlightRecorder`
keeps the last ``capacity`` events (control commands, trace spans,
lifecycle marks) in a fixed-size ring and writes them to disk in two
ways:

* **periodically** — every ``flush_every`` records the ring is dumped,
  so even a SIGKILL (which runs nothing) leaves the last flushed window
  on disk for the supervisor to harvest;
* **on demand** — the worker's SIGTERM handler and fatal-exception path
  call :meth:`dump` with a reason, capturing the final moments exactly.

Dumps are atomic in the :mod:`repro.persist` idiom — write a ``.tmp``
sibling, fsync, ``os.replace`` — so a harvest never reads a torn file:
it sees the previous complete dump or the new one, nothing in between.

The on-disk format is JSON lines: a header line (pid, dump reason,
counters), then one line per retained event, oldest first.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Callable

__all__ = ["FlightRecorder", "harvest_flight_dir", "load_flight"]

FLIGHT_SUFFIX = ".flight.jsonl"


class FlightRecorder:
    """Fixed-size ring of recent events, dumped atomically to one file."""

    def __init__(
        self,
        path: str,
        *,
        capacity: int = 256,
        flush_every: int = 64,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = path
        self.capacity = capacity
        self.flush_every = flush_every
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0
        self.dumps = 0
        self._since_flush = 0
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    def record(self, kind: str, **fields) -> None:
        """Append one event; auto-dumps every ``flush_every`` records."""
        entry = {"ts": self._clock(), "kind": kind}
        entry.update(fields)
        self._ring.append(entry)
        self.recorded += 1
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self.dump(reason="periodic")

    def dump(self, *, reason: str = "manual") -> str:
        """Atomically write the ring to :attr:`path`; returns the path."""
        header = {
            "flight": 1,
            "pid": os.getpid(),
            "reason": reason,
            "dumped_at": self._clock(),
            "recorded": self.recorded,
            "capacity": self.capacity,
            "events": len(self._ring),
        }
        lines = [json.dumps(header, separators=(",", ":"))]
        lines.extend(
            json.dumps(entry, separators=(",", ":")) for entry in self._ring
        )
        payload = "\n".join(lines) + "\n"
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._since_flush = 0
        self.dumps += 1
        return self.path

    def __len__(self) -> int:
        return len(self._ring)


def load_flight(path: str) -> dict:
    """Parse one recording into ``{"header": ..., "events": [...]}``."""
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"empty flight recording {path!r}")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or "flight" not in header:
        raise ValueError(f"not a flight recording {path!r}")
    return {
        "header": header,
        "events": [json.loads(line) for line in lines[1:]],
    }


def harvest_flight_dir(root: str) -> dict[str, dict]:
    """Every parseable ``*.flight.jsonl`` under ``root``, by filename.

    Unparseable or torn files are skipped, not fatal — a postmortem
    sweep should surface every recording it *can* read.
    """
    recordings: dict[str, dict] = {}
    if not os.path.isdir(root):
        return recordings
    for name in sorted(os.listdir(root)):
        if not name.endswith(FLIGHT_SUFFIX):
            continue
        try:
            recordings[name] = load_flight(os.path.join(root, name))
        except (OSError, ValueError, json.JSONDecodeError):
            continue
    return recordings
