"""Bench `fig3`: Lazy Sliding Window over time (regen every 10 blocks).

Paper Fig. 3: values start high after each regeneration and taper;
average coverage = average success = 0.59.
"""

from benchmarks.conftest import run_and_report


def test_fig3_lazy_sliding_window(benchmark):
    result = run_and_report(benchmark, "fig3")
    # Sawtooth shape: the first trial after regeneration beats the last
    # trial of the previous span.
    success = result.series["success"]
    laziness = 10
    for start in range(laziness, len(success) - 1, laziness):
        assert success[start] > success[start - 1]
