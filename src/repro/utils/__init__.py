"""Shared low-level utilities.

This subpackage holds the plumbing used by every other part of the
reproduction: deterministic random-number handling (:mod:`repro.utils.rng`),
Gnutella-style globally-unique identifiers including the paper's observed
buggy-client GUID reuse (:mod:`repro.utils.guid`), running/summary statistics
(:mod:`repro.utils.stats`), argument validation helpers
(:mod:`repro.utils.validation`) and simulated-time helpers
(:mod:`repro.utils.timeline`).
"""

from repro.utils.guid import GuidAllocator
from repro.utils.rng import as_generator, spawn_child
from repro.utils.stats import (
    RollingMean,
    RunningStats,
    SeriesSummary,
    summarize_series,
)
from repro.utils.timeline import SimClock

__all__ = [
    "GuidAllocator",
    "RollingMean",
    "RunningStats",
    "SeriesSummary",
    "SimClock",
    "as_generator",
    "spawn_child",
    "summarize_series",
]
