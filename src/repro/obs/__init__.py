"""Observability: metrics, structured logging, and query tracing.

The paper's premise is that a node watches its own traffic; this package
makes that watching operational for the whole stack:

* :mod:`repro.obs.registry` — dependency-free labeled counters, gauges
  and fixed-bucket histograms with a Prometheus text-format writer and a
  no-op :class:`~repro.obs.registry.NullRegistry` for the disabled path;
* :mod:`repro.obs.instruments` — per-node pre-bound metric handles used
  by the live daemon (hot-path histograms, scrape-time counter syncs);
* :mod:`repro.obs.logging` — JSON-lines structured logging with ambient
  node/peer contextvars and per-key rate limiting;
* :mod:`repro.obs.tracing` — GUID-keyed hop-by-hop query traces with
  TTL-bounded retention;
* :mod:`repro.obs.http` — an asyncio ``/metrics`` + ``/healthz`` +
  ``/trace`` endpoint servable from a running
  :class:`~repro.live.node.LiveServent`;
* :mod:`repro.obs.scrape` — the inverse of the registry's renderer:
  parse Prometheus text exposition (counters, gauges *and* histogram
  ``le`` buckets) back into samples and aggregate them across many
  ``/metrics`` endpoints (the cross-process ``grand_totals()`` used by
  :mod:`repro.scale`);
* :mod:`repro.obs.collect` — the cluster-wide trace collector: merge
  per-node ``/trace`` spans by GUID into query trees and fold counters
  into rolling live α/ρ/traffic-per-query windows;
* :mod:`repro.obs.flight` — the crash flight recorder: a bounded ring
  of recent events dumped atomically on SIGTERM/fatal error and
  periodically, harvested by the cluster supervisor after hard kills.

See ``docs/observability.md`` for metric names, label conventions and
the trace lifecycle.
"""

from repro.obs.collect import (
    ClusterTraceCollector,
    format_cluster_rollup,
    format_trace_tree,
    merge_spans,
    parse_spans,
    quality_measures,
)
from repro.obs.flight import FlightRecorder, harvest_flight_dir, load_flight
from repro.obs.http import ObsHttpServer
from repro.obs.instruments import NodeInstruments
from repro.obs.logging import (
    JsonFormatter,
    PlainFormatter,
    RateLimiter,
    bind_node,
    bind_peer,
    configure_logging,
    get_logger,
    node_id_var,
    peer_id_var,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    get_global_registry,
    reset_global_registry,
)
from repro.obs.scrape import (
    histogram_quantile,
    merge_histograms,
    parse_histograms,
    parse_labels,
    parse_samples,
    scrape_text,
    scrape_totals,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    QueryTrace,
    QueryTracer,
    TraceEvent,
    format_trace,
    traced_guid,
)

__all__ = [
    "ClusterTraceCollector",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "JsonFormatter",
    "MetricsRegistry",
    "NodeInstruments",
    "NullRegistry",
    "NullTracer",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "ObsHttpServer",
    "PlainFormatter",
    "QueryTrace",
    "QueryTracer",
    "RateLimiter",
    "TraceEvent",
    "bind_node",
    "bind_peer",
    "configure_logging",
    "format_cluster_rollup",
    "format_trace",
    "format_trace_tree",
    "get_global_registry",
    "get_logger",
    "harvest_flight_dir",
    "histogram_quantile",
    "load_flight",
    "merge_histograms",
    "merge_spans",
    "node_id_var",
    "parse_histograms",
    "parse_labels",
    "parse_samples",
    "parse_spans",
    "peer_id_var",
    "quality_measures",
    "reset_global_registry",
    "scrape_text",
    "scrape_totals",
    "traced_guid",
]
