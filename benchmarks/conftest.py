"""Benchmark-harness plumbing.

Every bench regenerates one paper artifact through
:mod:`repro.experiments` inside a pytest-benchmark measurement, asserts
its acceptance bands, and registers its paper-vs-measured table here; the
tables are printed in the terminal summary (so they land in
``bench_output.txt`` even under output capture).
"""

from __future__ import annotations

_REPORTS: list[str] = []


def register_report(text: str) -> None:
    _REPORTS.append(text)


def run_and_report(benchmark, experiment_id: str, **kwargs):
    """Run a registered experiment once under the benchmark timer."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, **kwargs), rounds=1, iterations=1
    )
    register_report(result.report())
    for key, value in result.extras.items():
        benchmark.extra_info[key] = str(value)
    assert result.all_within_band, f"out-of-band rows:\n{result.report()}"
    return result


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper-vs-measured reproduction tables")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
