"""Tests for repro.experiments.results (ExperimentResult utilities)."""

import pytest

from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow


def make_result(series=None):
    return ExperimentResult(
        experiment_id="x",
        title="Test",
        rows=[ComparisonRow("m", 0.5, 0.5, band=(0.0, 1.0))],
        series=series if series is not None else {},
    )


class TestAllWithinBand:
    def test_true_when_in_band(self):
        assert make_result().all_within_band

    def test_false_on_miss(self):
        result = ExperimentResult(
            "x", "t", [ComparisonRow("m", 0.5, 2.0, band=(0.0, 1.0))]
        )
        assert not result.all_within_band

    def test_unbanded_rows_ignored(self):
        result = ExperimentResult("x", "t", [ComparisonRow("m", "-", 99.0)])
        assert result.all_within_band


class TestSaveSeries:
    def test_csv_roundtrip(self, tmp_path):
        result = make_result({"coverage": [0.8, 0.7], "success": [0.75, 0.7]})
        path = tmp_path / "series.csv"
        n = result.save_series(path)
        assert n == 2
        lines = path.read_text().splitlines()
        assert lines[0] == "trial,coverage,success"
        assert lines[1] == "1,0.800000,0.750000"
        assert lines[2] == "2,0.700000,0.700000"

    def test_uneven_series_padded(self, tmp_path):
        result = make_result({"a": [0.1], "b": [0.2, 0.3]})
        path = tmp_path / "series.csv"
        assert result.save_series(path) == 2
        lines = path.read_text().splitlines()
        assert lines[2] == "2,,0.300000"

    def test_requires_series(self, tmp_path):
        with pytest.raises(ValueError):
            make_result().save_series(tmp_path / "x.csv")
