"""Tests for repro.metrics.traffic."""

from repro.metrics.traffic import QueryOutcome, TrafficStats


def outcome(messages=10, hits=1, hops=2, duplicates=1, qid=1):
    return QueryOutcome(
        query_id=qid,
        messages=messages,
        hits=hits,
        first_hit_hops=hops if hits else None,
        duplicates=duplicates,
    )


class TestQueryOutcome:
    def test_succeeded(self):
        assert outcome(hits=1).succeeded
        assert not outcome(hits=0).succeeded


class TestTrafficStats:
    def test_empty(self):
        stats = TrafficStats()
        assert stats.success_rate == 0.0
        assert stats.messages_per_query == 0.0

    def test_aggregation(self):
        stats = TrafficStats()
        stats.record(outcome(messages=10, hits=1, hops=2))
        stats.record(outcome(messages=30, hits=0))
        assert stats.n_queries == 2
        assert stats.n_succeeded == 1
        assert stats.success_rate == 0.5
        assert stats.messages_per_query == 20.0
        assert stats.total_duplicates == 2

    def test_hop_stats_only_for_hits(self):
        stats = TrafficStats()
        stats.record(outcome(hits=1, hops=3))
        stats.record(outcome(hits=0))
        assert stats.mean_first_hit_hops == 3.0

    def test_str(self):
        stats = TrafficStats()
        stats.record(outcome())
        text = str(stats)
        assert "queries=1" in text
