"""Loopback clusters of live servents for tests, benchmarks and demos.

:class:`LiveCluster` boots one :class:`~repro.live.node.LiveServent` per
node of a :class:`~repro.network.topology.Topology` on ephemeral
localhost ports, dials every edge (the lower node id dials the higher),
injects workloads, and reads back per-node counters — the live-socket
twin of :class:`~repro.network.wirenet.WireNetwork`, suitable for
comparing rule routing against flooding over *real* TCP.

Quiescence detection exploits the node's accounting discipline: a
handled frame's outputs are enqueued (counted in ``frames_out``) before
the frame itself is counted in ``frames_in``, so when every send queue
is empty and cluster-wide ``frames_out == frames_in`` no descriptor can
still be in flight.  After a peer kill that balance can be permanently
off (bytes lost in dead sockets), so a stability fallback — counters
unchanged across consecutive polls — keeps :meth:`quiesce` sound.
"""

from __future__ import annotations

import asyncio
import os

from repro.live.connection import ConnectionConfig
from repro.live.node import LiveServent
from repro.live.stats import NodeStats, combine_stats
from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import QueryTracer, format_trace
from repro.network.servent import SharedFile
from repro.network.topology import Topology
from repro.utils.rng import as_generator
from repro.workload.zipf import ZipfSampler

__all__ = [
    "LiveCluster",
    "harness_config",
    "interest_plan",
    "make_vocabulary",
]

_log = get_logger("live.cluster")


def harness_config(**overrides) -> ConnectionConfig:
    """A :class:`ConnectionConfig` tuned for loopback harnesses: no
    keepalives or idle drops (they add frames mid-measurement) and fast,
    bounded reconnect backoff so kill/reconnect tests run in seconds."""
    defaults = dict(
        keepalive_interval=0.0,
        idle_timeout=0.0,
        connect_timeout=2.0,
        handshake_timeout=2.0,
        retry_initial_delay=0.05,
        retry_backoff=2.0,
        retry_max_delay=1.0,
    )
    defaults.update(overrides)
    return ConnectionConfig(**defaults)


def make_vocabulary(n_terms: int) -> list[str]:
    """Fixed-width keyword terms (no term is a substring of another, so
    conjunctive filename matching cannot cross-match)."""
    if n_terms < 1:
        raise ValueError("n_terms must be >= 1")
    width = max(4, len(str(n_terms - 1)))
    return [f"kw{i:0{width}d}" for i in range(n_terms)]


def interest_plan(
    n_nodes: int,
    vocabulary: list[str],
    n_queries: int,
    rng,
    *,
    exponent: float = 1.2,
    origins: list[int] | None = None,
) -> list[tuple[int, str]]:
    """A query plan with per-node interest locality.

    Every origin draws term *ranks* from one shared bounded Zipf
    distribution, but reads them through its own rotation of the
    vocabulary — so each node's queries concentrate on a few terms (and
    therefore a few provider nodes) that differ node to node.  That is
    the locality the paper's rules exploit; a uniform plan would leave
    nothing to learn.
    """
    rng = as_generator(rng)
    sampler = ZipfSampler(len(vocabulary), exponent)
    pool = origins if origins is not None else list(range(n_nodes))
    if not pool:
        raise ValueError("need at least one origin node")
    plan: list[tuple[int, str]] = []
    for _ in range(n_queries):
        node = pool[int(rng.integers(0, len(pool)))]
        rank = sampler.sample(rng)
        term = vocabulary[(rank + node * 7919) % len(vocabulary)]
        plan.append((node, term))
    return plan


class LiveCluster:
    """N live servents wired along a topology over loopback TCP."""

    def __init__(
        self,
        topology: Topology,
        *,
        rule_routed: bool = False,
        top_k: int = 2,
        max_ttl: int = 7,
        host: str = "127.0.0.1",
        config: ConnectionConfig | None = None,
        rule_kwargs: dict | None = None,
        observe: bool = False,
        registry: MetricsRegistry | None = None,
        tracer: QueryTracer | None = None,
        fault_controller=None,
        state_dir: str | None = None,
        checkpoint_interval: float = 30.0,
        fsync: str = "interval",
    ) -> None:
        if state_dir is not None and not rule_routed:
            raise ValueError(
                "state_dir persists learned rule state; it requires "
                "rule_routed=True"
            )
        self.topology = topology
        self.host = host
        self.config = config or harness_config()
        self.rule_routed = rule_routed
        #: root of per-node durable-state dirs (``node-NNN/``), or None.
        self.state_dir = state_dir
        self._checkpoint_interval = checkpoint_interval
        self._fsync = fsync
        #: a :class:`repro.faults.transport.FaultController` (or None).
        #: Every node dials through the controller's transport opener, so
        #: link faults and partitions act at the socket boundary.
        self.fault_controller = fault_controller
        # One registry and one tracer shared by every node: per-node
        # series are separated by the `node` label, and a query's trace
        # accumulates events from every node it crosses — which is what
        # makes hop-by-hop reconstruction possible.
        if observe:
            registry = registry if registry is not None else MetricsRegistry()
            tracer = tracer if tracer is not None else QueryTracer()
        self.registry = registry
        self.tracer = tracer
        self._node_kwargs = dict(
            rule_routed=rule_routed,
            top_k=top_k,
            max_ttl=max_ttl,
            config=self.config,
            registry=registry,
            tracer=tracer,
        )
        self._rule_kwargs = dict(rule_kwargs or {})
        #: GUIDs of queries issued through :meth:`query`, in issue order.
        self.issued: list[tuple[int, str, int]] = []
        #: final counter snapshots of nodes replaced by :meth:`restart` —
        #: cross-restart accounting (:meth:`grand_totals`) needs them.
        self.retired_stats: list[dict[str, int]] = []
        self.nodes: list[LiveServent] = [
            self._make_node(node) for node in range(topology.n_nodes)
        ]

    def _make_node(self, node_id: int, port: int = 0) -> LiveServent:
        rules = None
        if self.rule_routed:
            from repro.core.streaming import StreamingRules

            rules = StreamingRules(
                **{
                    "min_support_count": 2,
                    "window_pairs": 512,
                    **self._rule_kwargs,
                }
            )
        open_transport = None
        if self.fault_controller is not None:
            open_transport = self.fault_controller.opener(node_id)
        persist_kwargs = {}
        if self.state_dir is not None:
            persist_kwargs = dict(
                state_dir=self.node_state_dir(node_id),
                checkpoint_interval=self._checkpoint_interval,
                fsync=self._fsync,
            )
        return LiveServent(
            node_id,
            host=self.host,
            port=port,
            rules=rules,
            open_transport=open_transport,
            **persist_kwargs,
            **self._node_kwargs,
        )

    def node_state_dir(self, node_id: int) -> str:
        """One node's durable-state directory under :attr:`state_dir`."""
        if self.state_dir is None:
            raise RuntimeError("cluster built without a state_dir")
        return os.path.join(self.state_dir, f"node-{node_id:03d}")

    # -- lifecycle --------------------------------------------------------
    async def start(self, *, ready_timeout: float = 10.0) -> None:
        """Listen everywhere, dial every edge, wait for full wiring."""
        for node in self.nodes:
            await node.start()
        if self.fault_controller is not None:
            # openers need the node ↔ port map before the first dial.
            self.fault_controller.bind_ports(
                {node.node_id: node.port for node in self.nodes}
            )
        for u, v in self.topology.edges():
            self.nodes[u].add_peer(self.host, self.nodes[v].port, peer_id=v)
        await self.wait_connected(timeout=ready_timeout)

    async def wait_connected(self, *, timeout: float = 10.0) -> None:
        """Block until every edge has a live connection on both ends."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            wired = all(
                node.closed
                or node.connected_peers
                >= set(self.topology.neighbors(node.node_id))
                for node in self.nodes
            )
            if wired:
                return
            if loop.time() > deadline:
                raise TimeoutError("cluster did not finish wiring up")
            await asyncio.sleep(0.01)

    async def close(self) -> None:
        await asyncio.gather(*(node.close() for node in self.nodes))

    async def __aenter__(self) -> "LiveCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- failure injection ------------------------------------------------
    async def kill(self, node_id: int, *, hard: bool = False) -> None:
        """Stop one node (server + every connection + supervisors).

        Dialing neighbors notice the dead link and begin re-dialing with
        backoff; their ``dial_failures`` counters record the attempts.

        ``hard=True`` is the crash simulation for nodes with a state
        directory: the final checkpoint is skipped, so a subsequent
        :meth:`restart` must recover through the WAL tail — exactly
        what a SIGKILL'd daemon would face.  Without persistence the
        flag changes nothing.
        """
        await self.nodes[node_id].close(checkpoint=not hard)

    async def restart(self, node_id: int) -> LiveServent:
        """Bring a killed node back on its old port with its old library.

        Two distinct behaviors, by configuration:

        * **cold** (no ``state_dir``): learned rule state is *not*
          restored — the restarted servent relearns from live traffic,
          re-flooding until its streaming window refills;
        * **warm** (cluster built with ``state_dir``): the new
          incarnation recovers its predecessor's counts from the latest
          snapshot plus the WAL tail before serving its first query.

        The returned :class:`LiveServent` carries the recovery record:
        ``node.recovery`` is a :class:`~repro.persist.state.RecoveryInfo`
        with the restored rule count, replayed WAL records and state
        fingerprint (None on a cold restart), so callers can audit what
        came back instead of the state being silently discarded.
        """
        old = self.nodes[node_id]
        if not old.closed:
            raise RuntimeError(f"node {node_id} is still running")
        self.retired_stats.append(old.snapshot())
        node = self._make_node(node_id, port=old.port)
        node.servent.library = list(old.servent.library)
        self.nodes[node_id] = node
        if node.recovery is not None:
            _log.info(
                "warm restart",
                extra={"node": node_id, **node.recovery.as_dict()},
            )
        await node.start()
        for neighbor in self.topology.neighbors(node_id):
            if node_id < neighbor and not self.nodes[neighbor].closed:
                # This node was the dialer for the edge; resume that role
                # (the other direction's supervisors are already retrying).
                node.add_peer(
                    self.host, self.nodes[neighbor].port, peer_id=neighbor
                )
        return node

    # -- libraries --------------------------------------------------------
    def stock_libraries(self, catalog: dict[int, list[SharedFile]]) -> None:
        for node_id, files in catalog.items():
            self.nodes[node_id].servent.library = list(files)

    def stock_partitioned_library(self, vocabulary: list[str]) -> None:
        """Deal terms round-robin: node ``i`` is the unique provider of
        ``vocabulary[i::n]`` — every query has exactly one answering node,
        which makes routing quality directly legible in the counters."""
        n = len(self.nodes)
        for i, node in enumerate(self.nodes):
            node.servent.library = [
                SharedFile(index=j, name=f"{term} track{j}.mp3", size=1 << 20)
                for j, term in enumerate(vocabulary[i::n])
            ]

    def owner_of(self, term: str) -> int | None:
        """The node sharing a file that matches ``term``, if any."""
        for node in self.nodes:
            if any(f.matches(term) for f in node.servent.library):
                return node.node_id
        return None

    # -- accounting -------------------------------------------------------
    def _activity(self) -> tuple[int, int, int, int]:
        frames_in = frames_out = dropped = pending = 0
        for node in self.nodes:
            frames_in += node.stats.frames_in
            frames_out += node.stats.frames_out
            dropped += node.stats.frames_dropped
            pending += node.pending_frames
        return frames_in, frames_out, dropped, pending

    async def quiesce(self, *, timeout: float = 5.0) -> bool:
        """Wait until no descriptor is in flight anywhere in the cluster."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        prev: tuple[int, int, int, int] | None = None
        stable = 0
        while loop.time() < deadline:
            snap = self._activity()
            frames_in, frames_out, _dropped, pending = snap
            balanced = pending == 0 and frames_out == frames_in
            if snap == prev:
                stable += 1
                if (balanced and stable >= 1) or stable >= 4:
                    return True
            else:
                prev = snap
                stable = 0
            await asyncio.sleep(0.003)
        return False

    def node_stats(self) -> dict[int, dict[str, int]]:
        return {node.node_id: node.snapshot() for node in self.nodes}

    # -- observability ----------------------------------------------------
    def render_metrics(self) -> str:
        """The whole cluster's metrics (Prometheus text), freshly synced.

        Every node shares one registry, so one render covers the cluster
        with per-node series separated by the ``node`` label.  Raises
        ``RuntimeError`` unless the cluster was built with
        ``observe=True`` (or an explicit registry).
        """
        if self.registry is None:
            raise RuntimeError("cluster built without a metrics registry")
        for node in self.nodes:
            node.sync_metrics()
        return self.registry.render()

    def trace(self, guid: int):
        """The :class:`~repro.obs.tracing.QueryTrace` for one GUID."""
        if self.tracer is None:
            raise RuntimeError("cluster built without a tracer")
        return self.tracer.trace(guid)

    def format_trace(self, guid: int) -> str:
        """Human-readable hop-by-hop path of one query."""
        trace = self.trace(guid)
        if trace is None:
            return f"no trace for guid {guid:#x}"
        return format_trace(trace)

    def totals(self) -> dict[str, int]:
        per_node = {
            node.node_id: NodeStats(**node.snapshot()) for node in self.nodes
        }
        return combine_stats(per_node)

    def grand_totals(self) -> dict[str, int]:
        """Cluster totals *including* nodes retired by :meth:`restart`.

        A restarted node starts from zero counters, so plain
        :meth:`totals` under-counts one side of every frame the old
        incarnation exchanged — conservation checks (``frames_in <=
        frames_out``) need the retired snapshots folded back in.
        """
        totals = self.totals()
        for snapshot in self.retired_stats:
            for name, value in snapshot.items():
                totals[name] += value
        return totals

    # -- workloads --------------------------------------------------------
    async def query(
        self, node_id: int, term: str, *, quiesce_timeout: float = 5.0
    ) -> int:
        """Issue one query and wait out the traffic; returns hits received."""
        node = self.nodes[node_id]
        before = len(node.results)
        guid = node.issue_query(term)
        self.issued.append((node_id, term, guid))
        await self.quiesce(timeout=quiesce_timeout)
        hits = len(node.results) - before
        if hits == 0 and self.tracer is not None:
            self.tracer.record(guid, node_id, "timeout")
        return hits

    async def run_plan(
        self,
        plan: list[tuple[int, str]],
        *,
        quiesce_timeout: float = 5.0,
    ) -> dict[str, float]:
        """Drive a (node, term) plan; returns cluster-level traffic stats.

        ``frames`` counts every descriptor accepted for sending anywhere
        in the cluster while the plan ran — queries, forwards and hits —
        the live analogue of the simulators' message counts.
        """
        before = self.totals()
        answered = 0
        hits = 0
        for node_id, term in plan:
            n_hits = await self.query(
                node_id, term, quiesce_timeout=quiesce_timeout
            )
            hits += n_hits
            if n_hits:
                answered += 1
        after = self.totals()
        frames = after["frames_out"] - before["frames_out"]
        n = len(plan)
        return {
            "n_queries": float(n),
            "answered": float(answered),
            "answer_rate": answered / n if n else 0.0,
            "hits": float(hits),
            "frames": float(frames),
            "frames_per_query": frames / n if n else 0.0,
            "frames_per_answered": frames / answered if answered else float("inf"),
        }
