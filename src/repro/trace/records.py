"""Trace record types and their table schemas.

Field-for-field these follow the paper's methodology section: for queries,
"the query string, the time of the query, the IP address of the node that
forwarded the query, and a globally-unique identifier"; for replies, "the
time the reply was received, the GUID of the query, the neighbor from which
the reply was sent, the host of the matching file, and the name of the
file".  Neighbor identities are integer ids in this reproduction (rendered
as synthetic IPs only for display).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.store.table import Column

__all__ = [
    "QueryRecord",
    "ReplyRecord",
    "QueryReplyPair",
    "QUERY_COLUMNS",
    "REPLY_COLUMNS",
    "PAIR_COLUMNS",
    "render_ip",
]


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """A query message observed at the monitor node."""

    time: float
    guid: int
    source: int  # neighbor that forwarded the query to the monitor
    query_string: str

    def as_row(self) -> tuple:
        return (self.time, self.guid, self.source, self.query_string)


@dataclass(frozen=True, slots=True)
class ReplyRecord:
    """A reply message observed at the monitor node."""

    time: float
    guid: int
    replier: int  # neighbor that sent the reply back to the monitor
    host: int  # remote node actually sharing the file
    file_name: str

    def as_row(self) -> tuple:
        return (self.time, self.guid, self.replier, self.host, self.file_name)


@dataclass(frozen=True, slots=True)
class QueryReplyPair:
    """One joined query–reply pair: the unit the rule simulator consumes."""

    guid: int
    query_time: float
    source: int
    query_string: str
    reply_time: float
    replier: int
    host: int

    def as_row(self) -> tuple:
        return (
            self.guid,
            self.query_time,
            self.source,
            self.query_string,
            self.reply_time,
            self.replier,
            self.host,
        )


QUERY_COLUMNS = (
    Column("time", float),
    Column("guid", int),
    Column("source", int),
    Column("query_string", str),
)

REPLY_COLUMNS = (
    Column("time", float),
    Column("guid", int),
    Column("replier", int),
    Column("host", int),
    Column("file_name", str),
)

PAIR_COLUMNS = (
    Column("guid", int),
    Column("query_time", float),
    Column("source", int),
    Column("query_string", str),
    Column("reply_time", float),
    Column("replier", int),
    Column("host", int),
)


def render_ip(node_id: int) -> str:
    """Render an integer node id as a stable synthetic IPv4 address."""
    if node_id < 0:
        raise ValueError("node id must be non-negative")
    x = (node_id * 2654435761) % (1 << 32)  # Knuth multiplicative hash
    return f"{10}.{(x >> 16) & 0xFF}.{(x >> 8) & 0xFF}.{x & 0xFF}"
