"""Streaming and summary statistics.

The strategy drivers produce long per-trial series of coverage/success
values; these helpers compute rolling means (used by the Adaptive Sliding
Window thresholds), Welford-style running statistics (used by traffic
accounting in the online simulator, where materializing per-message samples
would be wasteful) and compact series summaries for the experiment reports.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["RollingMean", "RunningStats", "SeriesSummary", "summarize_series"]


class RollingMean:
    """Mean over the most recent ``window`` observations.

    This is the threshold calculator suggested by the paper for Adaptive
    Sliding Window ("use the mean of the previous N values").  Before any
    observation arrives :meth:`value` returns ``default``.
    """

    def __init__(self, window: int, default: float = 0.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self.default = float(default)
        self._values: deque[float] = deque(maxlen=self.window)
        self._total = 0.0

    def push(self, value: float) -> None:
        """Add an observation, evicting the oldest if the window is full."""
        value = float(value)
        if len(self._values) == self.window:
            self._total -= self._values[0]
        self._values.append(value)
        self._total += value

    def value(self) -> float:
        """Current rolling mean (``default`` when empty)."""
        if not self._values:
            return self.default
        return self._total / len(self._values)

    def __len__(self) -> int:
        return len(self._values)


class RunningStats:
    """Welford online mean/variance accumulator.

    Numerically stable single-pass statistics; avoids keeping per-sample
    arrays in the hot loops of the network simulator.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values) -> None:
        for v in values:
            self.push(v)

    @property
    def mean(self) -> float:
        return self._mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); ``nan`` with fewer than two samples."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else float("nan")

    @property
    def minimum(self) -> float:
        return self._min if self.count else float("nan")

    @property
    def maximum(self) -> float:
        return self._max if self.count else float("nan")

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (Chan et al. parallel merge)."""
        if not isinstance(other, RunningStats):
            raise TypeError("can only merge RunningStats")
        out = RunningStats()
        out.count = self.count + other.count
        if out.count == 0:
            return out
        delta = other._mean - self._mean
        out._mean = self._mean + delta * other.count / out.count
        out._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / out.count
        )
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out


@dataclass(frozen=True)
class SeriesSummary:
    """Compact description of a numeric series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return (
            f"n={self.count} mean={self.mean:.4f} std={self.std:.4f} "
            f"min={self.minimum:.4f} med={self.median:.4f} max={self.maximum:.4f}"
        )


def summarize_series(values) -> SeriesSummary:
    """Summarize a series of floats into a :class:`SeriesSummary`."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return SeriesSummary(0, nan, nan, nan, nan, nan)
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return SeriesSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )
