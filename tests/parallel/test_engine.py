"""Tests for the parallel experiment engine (repro.parallel.engine).

The expensive guarantees — bit-identical results versus the serial path,
in-process and pooled — are exercised on real registered experiments at
the default scale, so a few of these tests take seconds.  The
serial-vs-parallel gate (``python -m benchmarks.bench_mining``) covers
the full trace-driven suite; here a representative pair of experiments
keeps the suite fast.
"""

import pytest

from repro.experiments.config import DEFAULT_SEED
from repro.experiments.registry import run_experiment
from repro.parallel.cache import ruleset_cache
from repro.parallel.engine import (
    ExperimentTask,
    ParallelExperimentEngine,
    TaskOutcome,
    _aggregate_cache,
    _trace_specs,
    run_experiments,
)
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator


class TestTaskPlumbing:
    def test_task_seed_default(self):
        assert ExperimentTask("fig1").seed == DEFAULT_SEED
        assert ExperimentTask("fig1", {"seed": 7}).seed == 7

    def test_trace_specs(self):
        cfg = MonitorTraceConfig()
        (spec,) = _trace_specs(ExperimentTask("fig1"))
        assert spec[0] == cfg and spec[1] == DEFAULT_SEED
        (static_spec,) = _trace_specs(ExperimentTask("static"))
        assert static_spec[2] > spec[2]  # static consumes a longer trace
        assert _trace_specs(ExperimentTask("fig2"))
        # Overlay-driven experiments generate no monitor trace.
        assert _trace_specs(ExperimentTask("churn-sensitivity")) == []

    def test_trace_specs_follow_task_seed(self):
        (spec,) = _trace_specs(ExperimentTask("fig1", {"seed": 99}))
        assert spec[1] == 99

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            ParallelExperimentEngine(-1)


class TestAggregateCache:
    def _outcome(self, pid, stats):
        return TaskOutcome("x", None, 0.0, pid, stats)

    def test_sums_last_snapshot_per_pid(self):
        # Counters are cumulative per process: the second snapshot from
        # pid 1 supersedes the first rather than adding to it.
        outcomes = [
            self._outcome(1, {"hits": 2, "misses": 10, "evictions": 0}),
            self._outcome(1, {"hits": 5, "misses": 12, "evictions": 0}),
            self._outcome(2, {"hits": 3, "misses": 8, "evictions": 1}),
        ]
        totals = _aggregate_cache(outcomes)
        assert totals["hits"] == 8
        assert totals["misses"] == 20
        assert totals["evictions"] == 1
        assert totals["hit_rate"] == pytest.approx(8 / 28)

    def test_handles_missing_stats(self):
        totals = _aggregate_cache([self._outcome(1, None)])
        assert totals["hit_rate"] == 0.0


class TestStrategyCacheEquality:
    """All four strategies produce identical runs cached and uncached."""

    @pytest.fixture(scope="class")
    def blocks(self):
        from repro.trace.blocks import blocks_from_arrays

        arrays = MonitorTraceGenerator(
            MonitorTraceConfig(), seed=11
        ).generate_pair_arrays(6000)
        return blocks_from_arrays(arrays.source, arrays.replier, block_size=1000)

    @pytest.mark.parametrize(
        "strategy_name",
        ["StaticRuleset", "SlidingWindow", "LazySlidingWindow", "AdaptiveSlidingWindow"],
    )
    def test_cached_run_identical(self, blocks, strategy_name):
        import repro.core.strategies as strategies

        make = getattr(strategies, strategy_name)
        plain = make(min_support_count=3).run(blocks)
        with ruleset_cache() as cache:
            cached = make(min_support_count=3).run(blocks)
            # The sweep revisits nothing within one run except Adaptive's
            # regenerations, so hits are strategy-dependent — but every
            # block mined must have gone through the cache.
            assert cache.misses > 0
        assert cached.coverage_series == plain.coverage_series
        assert cached.success_series == plain.success_series
        assert cached.n_generations == plain.n_generations


class TestEngineEquality:
    """Engine runs return bit-identical payloads to plain serial runs."""

    @pytest.fixture(scope="class")
    def serial(self):
        return {
            experiment_id: run_experiment(experiment_id)
            for experiment_id in ("fig1", "topk-ablation")
        }

    def test_in_process_engine_matches_serial(self, serial):
        run = run_experiments(["fig1", "topk-ablation"], workers=1)
        for outcome in run.outcomes:
            assert (
                outcome.result.payload() == serial[outcome.experiment_id].payload()
            )
        # Both experiments consume the same trace spec: generated once.
        assert run.shared_traces == 1
        # topk-ablation's random-subset replay re-mines blocks its own
        # sweep already mined -> the content-addressed cache must hit.
        assert run.cache["hits"] > 0

    def test_pooled_engine_matches_serial(self, serial):
        run = run_experiments(["fig1", "topk-ablation"], workers=2)
        assert run.workers == 2
        assert run.shared_traces == 1
        for outcome in run.outcomes:
            assert (
                outcome.result.payload() == serial[outcome.experiment_id].payload()
            )
        assert run.cache["hits"] > 0

class TestSeedSweepWorkers:
    def test_sweep_identical_serial_and_engine(self):
        from repro.experiments.multi import run_seed_sweep

        seeds = (DEFAULT_SEED, DEFAULT_SEED + 1)
        plain = run_seed_sweep("topk-ablation", seeds=seeds)
        engine = run_seed_sweep("topk-ablation", seeds=seeds, workers=1)
        assert engine == plain
