"""Tests for GUID-keyed query tracing."""

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    QueryTracer,
    format_trace,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRecording:
    def test_events_accumulate_in_order(self):
        tracer = QueryTracer(clock=FakeClock())
        tracer.record(0xAB, 0, "issued", info="kw1")
        tracer.record(0xAB, 0, "rule_routed", peer=1)
        tracer.record(0xAB, 1, "received", peer=0)
        trace = tracer.trace(0xAB)
        assert trace.kinds() == ["issued", "rule_routed", "received"]
        assert trace.events[0].info == "kw1"
        assert trace.events[1].peer == 1

    def test_unknown_guid(self):
        tracer = QueryTracer()
        assert tracer.trace(0x99) is None
        assert "no trace" in tracer.format(0x99)

    def test_answered_and_hops(self):
        tracer = QueryTracer()
        tracer.record(1, 0, "issued")
        tracer.record(1, 1, "received", peer=0)
        tracer.record(1, 1, "hit")
        assert not tracer.trace(1).answered
        assert tracer.trace(1).hops == 2
        tracer.record(1, 0, "delivered", peer=1)
        assert tracer.trace(1).answered
        assert tracer.answered_guids() == [1]

    def test_guids_oldest_first(self):
        tracer = QueryTracer()
        tracer.record(2, 0, "issued")
        tracer.record(1, 0, "issued")
        assert tracer.guids() == [2, 1]
        assert len(tracer) == 2


class TestRetention:
    def test_max_traces_evicts_oldest(self):
        tracer = QueryTracer(max_traces=2)
        for guid in (1, 2, 3):
            tracer.record(guid, 0, "issued")
        assert tracer.guids() == [2, 3]

    def test_ttl_expires_stale_traces(self):
        clock = FakeClock()
        tracer = QueryTracer(ttl=10.0, clock=clock)
        tracer.record(1, 0, "issued")
        clock.now = 5.0
        tracer.record(2, 0, "issued")  # 1 is 5s stale: kept
        assert tracer.trace(1) is not None
        clock.now = 14.0
        tracer.record(3, 0, "issued")  # 1 is 14s stale: expired; 2 is 9s: kept
        assert tracer.trace(1) is None
        assert tracer.trace(2) is not None

    def test_activity_refreshes_ttl(self):
        clock = FakeClock()
        tracer = QueryTracer(ttl=10.0, clock=clock)
        tracer.record(1, 0, "issued")
        clock.now = 8.0
        tracer.record(1, 1, "received", peer=0)  # last_event := 8.0
        clock.now = 15.0
        tracer.record(2, 0, "issued")
        assert tracer.trace(1) is not None

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            QueryTracer(max_traces=0)
        with pytest.raises(ValueError):
            QueryTracer(ttl=0.0)


class TestFormatting:
    def test_format_shows_path_and_outcome(self):
        clock = FakeClock()
        tracer = QueryTracer(clock=clock)
        tracer.record(0xFF, 3, "issued", info="kw2")
        clock.now = 0.25
        tracer.record(0xFF, 0, "received", peer=3, info="ttl=7 hops=0")
        clock.now = 0.5
        tracer.record(0xFF, 3, "delivered", peer=0)
        text = tracer.format(0xFF)
        assert "query 0xff:" in text
        assert "(answered)" in text
        assert "issued" in text and "[kw2]" in text
        assert "<- 3" in text  # received renders an inbound arrow
        assert "+  0.2500s" in text
        assert text == format_trace(tracer.trace(0xFF))

    def test_outbound_arrow_for_forwarding_kinds(self):
        tracer = QueryTracer()
        tracer.record(1, 0, "flooded", peer=4)
        assert "-> 4" in tracer.format(1)
        assert "(unanswered)" in tracer.format(1)


class TestNullTracer:
    def test_noop_everything(self):
        tracer = NullTracer()
        tracer.record(1, 0, "issued")
        assert tracer.trace(1) is None
        assert tracer.guids() == []
        assert tracer.answered_guids() == []
        assert len(tracer) == 0
        assert tracer.format(1) == "tracing disabled"
        assert NULL_TRACER.enabled is False
        assert QueryTracer().enabled is True
