"""Discrete unstructured-overlay simulator.

The paper's own evaluation is trace-driven, but its motivation — and its
§VI claims — are about live networks: selectively forwarding queries
should dramatically reduce flooded messages while still locating content.
This subpackage provides the overlay substrate to test that end-to-end:

* :mod:`~repro.network.topology` — from-scratch topology generators
  (random regular, Erdős–Rényi with connectivity repair,
  Barabási–Albert power-law) over a compact adjacency-list
  :class:`~repro.network.topology.Topology`;
* :mod:`~repro.network.node` — per-peer state: shared library, interest
  profile, and the node's routing policy instance;
* :mod:`~repro.network.messages` — Gnutella-style ``Query`` descriptors;
* :mod:`~repro.network.engine` — hop-synchronous query propagation with
  per-node GUID duplicate suppression, TTL handling, hit detection and
  reverse-path reply feedback (the signal association routing learns
  from);
* :mod:`~repro.network.overlay` — assembles topology + content + policies
  into a runnable network, with optional churn between queries.
"""

from repro.network.discrete_event import (
    DiscreteEventConfig,
    DiscreteEventNetwork,
    LatencyReport,
)
from repro.network.dynamic import DynamicTopology
from repro.network.engine import QueryEngine
from repro.network.hier import HIER_MODES, HierConfig, HierNetwork
from repro.network.messages import Query
from repro.network.node import PeerNode
from repro.network.overlay import Overlay, OverlayConfig
from repro.network.servent import (
    MonitorServent,
    RuleRoutedServent,
    Servent,
    SharedFile,
)
from repro.network.superpeer import SuperPeerConfig, SuperPeerNetwork
from repro.network.wirenet import WireNetwork
from repro.network.topology import (
    Topology,
    barabasi_albert,
    erdos_renyi,
    random_regular,
)

__all__ = [
    "DiscreteEventConfig",
    "DiscreteEventNetwork",
    "DynamicTopology",
    "HIER_MODES",
    "HierConfig",
    "HierNetwork",
    "LatencyReport",
    "MonitorServent",
    "Overlay",
    "OverlayConfig",
    "PeerNode",
    "Query",
    "QueryEngine",
    "RuleRoutedServent",
    "Servent",
    "SharedFile",
    "SuperPeerConfig",
    "SuperPeerNetwork",
    "Topology",
    "WireNetwork",
    "barabasi_albert",
    "erdos_renyi",
    "random_regular",
]
