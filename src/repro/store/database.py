"""A named collection of tables.

A :class:`Database` can be round-tripped through a JSON-lines file with
:meth:`Database.save` / :meth:`Database.load`: one header line naming the
database, then for each table a schema line followed by one line per row.
Hash indexes are derived state and are not persisted — recreate them with
:meth:`~repro.store.table.Table.create_index` after loading.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.store.table import Column, Table

__all__ = ["Database"]


class Database:
    """Container for the trace pipeline's tables.

    Mirrors the paper's relational database: a ``queries`` table, a
    ``replies`` table, the joined ``pairs`` table and assorted temporary
    tables created by the simulator all live in one of these.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[Column | str]) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists in database {self.name!r}")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def add_table(self, table: Table) -> Table:
        """Register an externally constructed table (e.g. a join result)."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r} in database {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> Iterable[str]:
        return tuple(self._tables)

    def total_rows(self) -> int:
        return sum(len(t) for t in self._tables.values())

    # -- persistence ------------------------------------------------------
    def save(self, path: str | os.PathLike) -> int:
        """Write the database to ``path`` as JSON lines; return rows written.

        Layout: a ``{"database": ...}`` header, then for each table a
        ``{"table": ..., "columns": [...]}`` schema line followed by one
        ``{"table": ..., "row": [...]}`` line per row.  Only columns whose
        dtype is JSON-nameable (int/float/str/bool, or untyped) can be
        saved; anything else raises :class:`ValueError` before any output
        is written.
        """
        lines = [json.dumps({"database": self.name, "tables": list(self._tables)})]
        written = 0
        for table in self._tables.values():
            specs = [col.spec() for col in table.columns]
            lines.append(json.dumps({"table": table.name, "columns": specs}))
            for row in table.iter_rows():
                lines.append(json.dumps({"table": table.name, "row": list(row)}))
                written += 1
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        return written

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Database":
        """Rebuild a database saved by :meth:`save`."""
        db: Database | None = None
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    entry = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
                if "database" in entry:
                    if db is not None:
                        raise ValueError(f"{path}:{lineno}: duplicate database header")
                    db = cls(entry["database"])
                elif db is None:
                    raise ValueError(f"{path}:{lineno}: missing database header line")
                elif "columns" in entry:
                    columns = [Column.from_spec(spec) for spec in entry["columns"]]
                    db.create_table(entry["table"], columns)
                elif "row" in entry:
                    db.table(entry["table"]).append(entry["row"])
                else:
                    raise ValueError(f"{path}:{lineno}: unrecognized entry {entry!r}")
        if db is None:
            raise ValueError(f"{path}: empty file, no database header")
        return db

    def __repr__(self) -> str:  # pragma: no cover
        return f"Database({self.name!r}, tables={list(self._tables)})"
