"""Transaction datasets for frequent-itemset mining.

A *transaction* is a set of items (a market basket; in the routing
application, the pair {query-source, reply-source} observed for one
query–reply event).  :class:`TransactionDataset` normalizes arbitrary
hashable items into dense integer ids so the miners can work on small
``frozenset[int]`` objects, and provides per-item support counts used for
the miners' first pass.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Sequence

__all__ = ["TransactionDataset"]


class TransactionDataset:
    """An immutable collection of transactions over an item vocabulary."""

    def __init__(self, transactions: Iterable[Iterable[Hashable]]) -> None:
        self._item_to_id: dict[Hashable, int] = {}
        self._id_to_item: list[Hashable] = []
        encoded: list[frozenset[int]] = []
        for raw in transactions:
            tx = frozenset(self._encode_item(item) for item in raw)
            if tx:
                encoded.append(tx)
        self._transactions: tuple[frozenset[int], ...] = tuple(encoded)
        counts: Counter[int] = Counter()
        for tx in self._transactions:
            counts.update(tx)
        self._item_counts = counts

    def _encode_item(self, item: Hashable) -> int:
        iid = self._item_to_id.get(item)
        if iid is None:
            iid = len(self._id_to_item)
            self._item_to_id[item] = iid
            self._id_to_item.append(item)
        return iid

    # -- vocabulary --------------------------------------------------------
    @property
    def n_items(self) -> int:
        return len(self._id_to_item)

    def item(self, item_id: int) -> Hashable:
        """Original item for an internal id."""
        return self._id_to_item[item_id]

    def item_id(self, item: Hashable) -> int:
        """Internal id for an original item (KeyError if unseen)."""
        return self._item_to_id[item]

    def decode_itemset(self, itemset: frozenset[int]) -> frozenset:
        """Map an internal itemset back to original items."""
        return frozenset(self._id_to_item[i] for i in itemset)

    # -- transactions ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    @property
    def transactions(self) -> Sequence[frozenset[int]]:
        return self._transactions

    def item_count(self, item_id: int) -> int:
        """Number of transactions containing ``item_id``."""
        return self._item_counts.get(item_id, 0)

    def item_counts(self) -> Counter:
        return Counter(self._item_counts)

    def support_count(self, itemset: Iterable[int]) -> int:
        """Exact support count of an itemset by a full scan (reference path).

        Linear in the dataset; the miners avoid calling this in their inner
        loops, but tests use it as ground truth.
        """
        items = frozenset(itemset)
        if not items:
            return len(self._transactions)
        return sum(1 for tx in self._transactions if items <= tx)

    def support(self, itemset: Iterable[int]) -> float:
        """Fractional support of an itemset (0 when the dataset is empty)."""
        if not self._transactions:
            return 0.0
        return self.support_count(itemset) / len(self._transactions)
