"""Tests for repro.workload.churn."""

import numpy as np
import pytest

from repro.workload.churn import LogNormalSessions, ParetoSessions


class TestParetoSessions:
    def test_samples_positive(self, rng):
        dist = ParetoSessions(alpha=1.5, mean=100.0)
        assert all(dist.sample(rng) > 0 for _ in range(100))

    def test_samples_at_least_xm(self, rng):
        dist = ParetoSessions(alpha=2.0, mean=100.0)
        assert all(dist.sample(rng) >= dist.xm for _ in range(100))

    def test_empirical_mean(self):
        rng = np.random.default_rng(0)
        dist = ParetoSessions(alpha=3.0, mean=50.0)  # alpha high => low variance
        samples = [dist.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(50.0, rel=0.1)

    def test_xm_consistent_with_mean(self):
        dist = ParetoSessions(alpha=2.0, mean=100.0)
        assert dist.xm == pytest.approx(50.0)

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(ValueError):
            ParetoSessions(alpha=1.0, mean=10.0)

    def test_rejects_non_positive_mean(self):
        with pytest.raises(ValueError):
            ParetoSessions(alpha=2.0, mean=0.0)


class TestLogNormalSessions:
    def test_samples_positive(self, rng):
        dist = LogNormalSessions(median=100.0, sigma=1.0)
        assert all(dist.sample(rng) > 0 for _ in range(100))

    def test_empirical_median(self):
        rng = np.random.default_rng(1)
        dist = LogNormalSessions(median=200.0, sigma=1.5)
        samples = sorted(dist.sample(rng) for _ in range(20_000))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(200.0, rel=0.1)

    def test_heavy_tail_with_large_sigma(self):
        rng = np.random.default_rng(2)
        dist = LogNormalSessions(median=10.0, sigma=2.0)
        samples = [dist.sample(rng) for _ in range(10_000)]
        assert max(samples) > 50 * 10.0  # tail reaches far beyond the median

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormalSessions(median=0.0)
        with pytest.raises(ValueError):
            LogNormalSessions(median=1.0, sigma=0.0)
