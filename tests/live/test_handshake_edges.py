"""Handshake robustness against malformed, hostile or fragmented peers."""

import asyncio
import gc

import pytest

from repro.live.connection import (
    ConnectionConfig,
    HandshakeError,
    accept_handshake,
    dial_peer,
)


def run(coro, timeout=20.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def offer_raw(chunks, *, pause=0.0):
    """Feed raw bytes to an accepting servent; returns the outcome dict
    with either ``peer`` (the learned node id) or ``error``."""
    outcome = {}
    done = asyncio.Event()

    async def on_accept(reader, writer):
        try:
            outcome["peer"] = await asyncio.wait_for(
                accept_handshake(reader, writer, 5), 5.0
            )
            outcome["reply"] = True
        except Exception as exc:
            outcome["error"] = exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            done.set()

    server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for chunk in chunks:
        writer.write(chunk)
        await writer.drain()
        if pause:
            await asyncio.sleep(pause)
    writer.write_eof()
    await asyncio.wait_for(done.wait(), 5.0)
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    server.close()
    await server.wait_closed()
    return outcome


class TestAcceptHandshakeEdges:
    def test_oversized_handshake_rejected(self):
        blob = b"GNUTELLA CONNECT/0.4\nX-Pad: " + b"x" * 600 + b"\n\n"
        outcome = run(offer_raw([blob]))
        assert isinstance(outcome["error"], HandshakeError)
        assert "oversized" in str(outcome["error"])

    def test_missing_node_header_rejected(self):
        outcome = run(offer_raw([b"GNUTELLA CONNECT/0.4\n\n"]))
        assert isinstance(outcome["error"], HandshakeError)

    def test_negative_node_id_rejected(self):
        outcome = run(offer_raw([b"GNUTELLA CONNECT/0.4\nNode: -3\n\n"]))
        assert isinstance(outcome["error"], HandshakeError)

    def test_non_integer_node_id_rejected(self):
        outcome = run(offer_raw([b"GNUTELLA CONNECT/0.4\nNode: seven\n\n"]))
        assert isinstance(outcome["error"], HandshakeError)

    def test_garbage_first_line_rejected(self):
        outcome = run(offer_raw([b"HELLO WORLD\nNode: 3\n\n"]))
        assert isinstance(outcome["error"], HandshakeError)
        assert "CONNECT" in str(outcome["error"])

    def test_closed_mid_handshake_rejected(self):
        outcome = run(offer_raw([b"GNUTELLA CONNECT/0.4\nNode"]))
        assert isinstance(outcome["error"], HandshakeError)

    def test_handshake_split_across_segments_accepted(self):
        chunks = [b"GNUTELLA CON", b"NECT/0.4\nNo", b"de: 12\n", b"\n"]
        outcome = run(offer_raw(chunks, pause=0.02))
        assert outcome.get("peer") == 12


class TestDialerCleanup:
    @pytest.mark.filterwarnings("error::ResourceWarning")
    def test_dial_peer_closes_transport_on_bad_handshake(self):
        async def body():
            async def on_accept(reader, writer):
                await reader.readuntil(b"\n\n")
                writer.write(b"NOT GNUTELLA\nNode: 1\n\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            config = ConnectionConfig(
                connect_timeout=2.0, handshake_timeout=2.0
            )
            for _ in range(5):
                with pytest.raises(HandshakeError):
                    await dial_peer("127.0.0.1", port, 0, config)
            server.close()
            await server.wait_closed()

        run(body())
        gc.collect()  # an unclosed dialer transport would warn here
