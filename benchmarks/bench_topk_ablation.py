"""Bench `topk-ablation`: §III-B.1 — forwarding to the top-k consequents.

Paper: "future queries can either be sent to a random subset of
neighbors as with k-random walks, or sent to the k neighbors with the
highest support."  The sweep quantifies how much success each extra
consequent buys.
"""

from benchmarks.conftest import run_and_report


def test_topk_ablation(benchmark):
    result = run_and_report(benchmark, "topk-ablation")
    successes = result.extras["successes"]
    # k=1 must sacrifice meaningful success (the category-rules experiment
    # exists because of this gap).
    assert successes["1"] < successes["all"] - 0.1
