"""Property-based invariants of the propagation engine on random overlays."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.network.engine import QueryEngine
from repro.network.messages import Query
from repro.network.topology import Topology
from tests.network.test_engine import StubOverlay, flood_select


@st.composite
def random_overlays(draw):
    """A small random connected overlay with random libraries."""
    n = draw(st.integers(3, 14))
    # Random spanning tree guarantees connectivity; extra edges add cycles.
    edges = set()
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.add((u, v))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    holders = draw(st.sets(st.integers(0, n - 1), max_size=n))
    libraries = {h: {5} for h in holders}
    topo = Topology(n, edges)
    origin = draw(st.integers(0, n - 1))
    ttl = draw(st.integers(1, 6))
    return StubOverlay(topo, libraries), origin, ttl, holders


@settings(max_examples=80, deadline=None)
@given(random_overlays())
def test_broadcast_invariants(setup):
    overlay, origin, ttl, holders = setup
    engine = QueryEngine(overlay)
    query = Query(guid=1, origin=origin, file_id=5, category=0, ttl=ttl)
    out = engine.broadcast(query, flood_select(overlay))

    # Counts are consistent.
    assert out.messages >= 0
    assert 0 <= out.duplicates <= out.messages
    assert out.hits >= 0
    if out.hits:
        assert out.first_hit_hops is not None
        assert 0 <= out.first_hit_hops <= ttl
    else:
        assert out.first_hit_hops is None

    # Completeness: a full flood must find every provider within TTL
    # (that is flooding's defining guarantee, which the paper trades off).
    reachable_hits = sum(
        1
        for h in holders
        if h != origin
        and (d := overlay.topology.shortest_path_length(origin, h)) is not None
        and d <= ttl
    )
    if origin in holders:
        assert out.hits == 1 and out.messages == 0
    else:
        assert out.hits == reachable_hits

    # Correct hop count for the nearest provider.
    if out.hits and origin not in holders:
        nearest = min(
            overlay.topology.shortest_path_length(origin, h)
            for h in holders
            if overlay.topology.shortest_path_length(origin, h) is not None
        )
        assert out.first_hit_hops == nearest


@settings(max_examples=50, deadline=None)
@given(random_overlays(), st.integers(1, 4), st.integers(0, 2**31 - 1))
def test_walk_invariants(setup, n_walkers, seed):
    overlay, origin, ttl, holders = setup
    engine = QueryEngine(overlay)
    query = Query(guid=1, origin=origin, file_id=5, category=0, ttl=ttl)
    out = engine.walk(query, n_walkers=n_walkers, rng=np.random.default_rng(seed))
    assert out.messages <= n_walkers * ttl
    assert 0 <= out.duplicates <= out.messages
    if origin in holders:
        assert out.messages == 0 and out.hits == 1
    # A walk can never find more providers than exist.
    assert out.hits <= max(len(holders), 1)
