"""Partitioned parallel evaluation over an on-disk trace store.

PR 8's ``.rptrace`` store made the paper's 10.5M-query regime fit in
flat RSS, but evaluating one store was still serial.  This module splits
a store's footer index into contiguous *block-range shards*, runs the
strategy over each shard in a separate process (each worker opens the
store read-only and maps one block at a time), and reassembles the
partial :class:`~repro.core.runner.StrategyRun` objects with
:func:`~repro.core.runner.merge_runs` — **bit-identical** to the serial
streaming run for every strategy.

The subtlety is warm-up: a strategy's rule set at block ``b`` is mined
from earlier blocks, so a shard scoring ``[start, stop)`` must first
replay the prefix blocks that determine the serial state at ``start``.
Each strategy knows its own minimal prefix
(:meth:`~repro.core.strategies.RulesetStrategy.partition_warmup`):

========  ==========================  =====================================
strategy  warm-up blocks              why
========  ==========================  =====================================
static    ``(0,)``                    the only rule set ever mined
sliding   ``(start-1,)``              rules always come from the previous
                                      block
lazy      last schedule point → start the regeneration schedule is fixed
                                      (every ``laziness`` trials), so at
                                      most ``laziness`` blocks
adaptive  ``0 → start``               rolling thresholds depend on every
                                      prior trial — full prefix (no
                                      wall-clock win; see
                                      docs/performance.md)
exact     window tail → start         the sliding pair-window *is* the
streaming                             state; replay blocks covering
                                      ``window_pairs``
========  ==========================  =====================================

Workers therefore redo a bounded amount of mining (the warm-up overlap)
in exchange for scoring their ranges concurrently; with cheap warm-up
(static/sliding/lazy) a 4-way partition approaches 4x throughput while
per-process RSS stays O(block).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.runner import StrategyRun, merge_runs
from repro.trace.blocks import PairBlock
from repro.trace.store import TraceStoreReader

__all__ = [
    "BlockShard",
    "plan_shards",
    "run_shard",
    "evaluate_store",
    "evaluate_store_partitioned",
]


@dataclass(frozen=True)
class BlockShard:
    """One worker's slice of a store: warm-up prefix + scored range.

    ``warmup`` lists the block indices replayed (in order) to rebuild
    the serial strategy state at ``scored_start``; blocks
    ``[scored_start, scored_stop)`` are then tested and contribute
    trials.  Warm-up blocks never contribute trials — they overlap with
    a neighboring shard's scored range.
    """

    warmup: tuple[int, ...]
    scored_start: int
    scored_stop: int

    def __post_init__(self) -> None:
        if not 1 <= self.scored_start < self.scored_stop:
            raise ValueError("shard needs scored_start >= 1 and a non-empty range")
        if not self.warmup:
            raise ValueError("shard needs at least one warm-up block")
        if any(b >= self.scored_start for b in self.warmup):
            raise ValueError("warm-up blocks must precede the scored range")

    @property
    def n_scored(self) -> int:
        return self.scored_stop - self.scored_start

    @property
    def n_warmup(self) -> int:
        return len(self.warmup)

    def block_indices(self) -> Iterator[int]:
        """All block indices the shard reads, in stream order."""
        yield from self.warmup
        yield from range(self.scored_start, self.scored_stop)


def plan_shards(
    strategy,
    n_blocks: int,
    n_shards: int,
    *,
    block_pairs: Sequence[int] | None = None,
) -> list[BlockShard]:
    """Split ``[1, n_blocks)`` into near-equal contiguous scored ranges.

    Block 0 only ever trains, so the scored universe is the remaining
    ``n_blocks - 1`` blocks; ``n_shards`` is clamped to that (asking for
    more workers than scoreable blocks degrades gracefully to one block
    per shard, never to empty shards).  Each shard's warm-up prefix
    comes from ``strategy.partition_warmup`` — ``block_pairs`` (per-block
    pair counts, e.g. :meth:`TraceStoreReader.block_pairs`) lets
    pair-windowed strategies bound their replay exactly.

    The union of scored ranges is exactly ``[1, n_blocks)`` with no
    overlap, which is what makes the merged run serial-identical.
    """
    if n_blocks < 2:
        raise ValueError(
            f"partitioned evaluation needs >= 2 blocks, store has {n_blocks} "
            "(block 0 only trains)"
        )
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    n_scored = n_blocks - 1
    n_shards = min(n_shards, n_scored)
    base, extra = divmod(n_scored, n_shards)
    shards: list[BlockShard] = []
    start = 1
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        warmup = tuple(strategy.partition_warmup(start, block_pairs))
        shards.append(BlockShard(warmup, start, stop))
        start = stop
    return shards


def run_shard(
    reader: TraceStoreReader, strategy, shard: BlockShard
) -> StrategyRun:
    """Run ``strategy`` over one shard of an open store.

    Streams warm-up then scored blocks through the strategy's
    ``run_partition``, which drops warm-up trials and attributes
    generations exactly as the serial loop would inside the scored
    range.  O(block) resident memory — blocks are mapped one at a time.
    """

    def blocks() -> Iterator[PairBlock]:
        for index in shard.block_indices():
            yield reader.block(index)

    return strategy.run_partition(blocks(), shard.scored_start)


def _shard_task(path: str, strategy, shard: BlockShard) -> StrategyRun:
    """Worker entry point: open read-only, run one shard, close."""
    with TraceStoreReader(path) as reader:
        return run_shard(reader, strategy, shard)


def evaluate_store(path: str | os.PathLike, strategy) -> StrategyRun:
    """Serial reference evaluation: stream the whole store in-process."""
    with TraceStoreReader(path) as reader:
        return strategy.run(reader.iter_blocks())


def evaluate_store_partitioned(
    path: str | os.PathLike,
    strategy,
    *,
    workers: int,
    block_pairs: Sequence[int] | None = None,
) -> StrategyRun:
    """Evaluate a stored trace across ``workers`` processes and merge.

    Plans one shard per worker (clamped to the scoreable block count),
    fans :func:`_shard_task` out over a ``ProcessPoolExecutor``, and
    merges the partials in block order.  The result is bit-identical to
    :func:`evaluate_store` — same trials, same ``n_generations`` — for
    every strategy that implements the partition contract.

    ``workers <= 1`` short-circuits to the serial path (no pool, no
    warm-up overlap): it *is* the reference run.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    path = os.fspath(path)
    if workers <= 1:
        return evaluate_store(path, strategy)
    if block_pairs is None:
        with TraceStoreReader(path) as reader:
            n_blocks = reader.n_blocks
            block_pairs = reader.block_pairs()
    else:
        n_blocks = len(block_pairs)
    shards = plan_shards(strategy, n_blocks, workers, block_pairs=block_pairs)
    if len(shards) == 1:
        return evaluate_store(path, strategy)
    with ProcessPoolExecutor(max_workers=len(shards)) as pool:
        futures = [
            pool.submit(_shard_task, path, strategy, shard) for shard in shards
        ]
        partials = [future.result() for future in futures]
    return merge_runs(partials)
