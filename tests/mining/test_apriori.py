"""Tests for repro.mining.apriori."""

import pytest

from repro.mining.apriori import apriori
from repro.mining.transactions import TransactionDataset


def make_market():
    return TransactionDataset(
        [
            {"bread", "milk"},
            {"bread", "diapers", "beer", "eggs"},
            {"milk", "diapers", "beer", "cola"},
            {"bread", "milk", "diapers", "beer"},
            {"bread", "milk", "diapers", "cola"},
        ]
    )


def decode(ds, frequent):
    return {ds.decode_itemset(itemset): count for itemset, count in frequent.items()}


class TestApriori:
    def test_singletons(self):
        ds = make_market()
        out = decode(ds, apriori(ds, min_support_count=3))
        assert out[frozenset({"bread"})] == 4
        assert out[frozenset({"milk"})] == 4
        assert out[frozenset({"diapers"})] == 4
        assert out[frozenset({"beer"})] == 3
        assert frozenset({"eggs"}) not in out

    def test_known_pairs(self):
        ds = make_market()
        out = decode(ds, apriori(ds, min_support_count=3))
        assert out[frozenset({"diapers", "beer"})] == 3
        assert out[frozenset({"bread", "milk"})] == 3
        assert frozenset({"milk", "beer"}) not in out  # support 2

    def test_counts_match_exact_scan(self):
        ds = make_market()
        for itemset, count in apriori(ds, min_support_count=2).items():
            assert ds.support_count(itemset) == count

    def test_anti_monotone_closure(self):
        ds = make_market()
        frequent = apriori(ds, min_support_count=2)
        for itemset in frequent:
            for item in itemset:
                assert (itemset - {item}) in frequent or len(itemset) == 1

    def test_max_size_limits_cardinality(self):
        ds = make_market()
        frequent = apriori(ds, min_support_count=1, max_size=2)
        assert max(len(s) for s in frequent) == 2

    def test_min_support_one_enumerates_everything_in_small_data(self):
        ds = TransactionDataset([{"a", "b"}, {"a"}])
        out = decode(ds, apriori(ds, min_support_count=1))
        assert out == {
            frozenset({"a"}): 2,
            frozenset({"b"}): 1,
            frozenset({"a", "b"}): 1,
        }

    def test_empty_dataset(self):
        assert apriori(TransactionDataset([]), min_support_count=1) == {}

    def test_threshold_above_everything(self):
        ds = make_market()
        assert apriori(ds, min_support_count=100) == {}

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_bad_threshold(self, bad):
        with pytest.raises(ValueError):
            apriori(make_market(), min_support_count=bad)

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValueError):
            apriori(make_market(), min_support_count=1, max_size=0)
