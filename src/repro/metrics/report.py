"""Paper-vs-measured comparison reporting.

Every benchmark prints its results through these helpers so the
paper-reported value, the measured value, and whether the measurement
falls inside the accepted band line up in one table (mirrored into
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComparisonRow", "format_table"]


@dataclass(frozen=True)
class ComparisonRow:
    """One reproduced quantity."""

    label: str
    paper: float | str
    measured: float
    band: tuple[float, float] | None = None  # acceptance interval

    @property
    def within_band(self) -> bool | None:
        if self.band is None:
            return None
        lo, hi = self.band
        return lo <= self.measured <= hi

    def cells(self) -> tuple[str, str, str, str]:
        paper = (
            f"{self.paper:.3f}" if isinstance(self.paper, float) else str(self.paper)
        )
        measured = f"{self.measured:.3f}"
        if self.band is None:
            verdict = "-"
        else:
            verdict = "OK" if self.within_band else "MISS"
        band = f"[{self.band[0]:.2f}, {self.band[1]:.2f}]" if self.band else "-"
        return (self.label, paper, measured, f"{band} {verdict}")


def format_table(title: str, rows: list[ComparisonRow]) -> str:
    """Render comparison rows as an aligned text table."""
    header = ("metric", "paper", "measured", "band")
    body = [row.cells() for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(4)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    for cells in body:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)))
    return "\n".join(lines)
