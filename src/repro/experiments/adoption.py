"""Incremental-deployment experiment (paper §III-B).

"A secondary benefit of this approach is that all nodes in the network do
not need to support this routing method in order for one node to use it,
although the benefits increase as the number of nodes using this routing
technique increases."

The sweep deploys association routing on a growing fraction of peers
(the rest run vanilla flooding — `dispatch_select` already routes each
per-node decision to that node's own policy) and measures network-wide
traffic.  The claim to verify: messages per query fall monotonically with
adoption, and partial adoption already helps.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED, current_scale
from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow
from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.association import AssociationRoutingPolicy
from repro.routing.flooding import FloodingPolicy
from repro.utils.rng import as_generator

__all__ = ["run_adoption_sweep"]


def run_adoption_sweep(
    *, seed: int = DEFAULT_SEED, fractions: tuple = (0.0, 0.25, 0.5, 1.0)
) -> ExperimentResult:
    """Traffic vs fraction of peers running association routing."""
    scale = current_scale()
    stats = {}
    rows = []
    for fraction in fractions:
        overlay = Overlay(OverlayConfig(n_nodes=scale.overlay_nodes), seed=seed)
        # Deterministic adopter set, independent of the workload stream.
        picker = as_generator(seed + 17)
        adopters = set(
            picker.choice(
                overlay.n_nodes,
                size=int(round(fraction * overlay.n_nodes)),
                replace=False,
            ).tolist()
        )

        def factory(node_id, ov, _adopters=adopters):
            if node_id in _adopters:
                return AssociationRoutingPolicy(node_id, ov, window=2048)
            return FloodingPolicy(node_id, ov)

        overlay.install_policies(factory)
        stats[fraction] = overlay.run_workload(
            scale.overlay_queries, warmup=scale.overlay_warmup
        )
        rows.append(
            ComparisonRow(
                f"msgs/query @ {int(fraction * 100)}% adoption",
                "falls with adoption",
                stats[fraction].messages_per_query,
            )
        )
    ordered = [stats[f].messages_per_query for f in fractions]
    # Allow small non-monotonic wiggles from workload randomness.
    monotone = all(a >= b - 0.05 * ordered[0] for a, b in zip(ordered, ordered[1:]))
    rows.append(
        ComparisonRow(
            "traffic non-increasing in adoption (paper: benefits increase)",
            "monotone",
            1.0 if monotone else 0.0,
            band=(1.0, 1.0),
        )
    )
    rows.append(
        ComparisonRow(
            "full vs zero adoption message ratio",
            ">1.5x",
            ordered[0] / ordered[-1] if ordered[-1] else float("inf"),
            band=(1.5, 1000.0),
        )
    )
    rows.append(
        ComparisonRow(
            "half adoption already saves traffic",
            ">1.1x",
            ordered[0] / stats[0.5].messages_per_query,
            band=(1.1, 1000.0),
        )
    )
    rows.append(
        ComparisonRow(
            "hit rate at full adoption vs pure flooding",
            "~equal",
            stats[fractions[-1]].success_rate - stats[0.0].success_rate,
            band=(-0.08, 1.0),
        )
    )
    return ExperimentResult(
        experiment_id="adoption",
        title="Incremental deployment sweep (paper §III-B)",
        rows=rows,
        extras={f"{int(f*100)}%": str(s) for f, s in stats.items()},
    )
