"""Peer session-length (churn) models.

Measured Gnutella session times are heavy-tailed: most peers stay minutes,
a few stay days.  That tail is what keeps Static Ruleset's coverage around
0.4 for a while (long-lived neighbors keep issuing queries) even as its
success collapses (the reply paths behind them churn much faster).
"""

from __future__ import annotations

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["ParetoSessions", "LogNormalSessions"]


class ParetoSessions:
    """Pareto(alpha, xm) session durations with a finite-mean guarantee.

    ``mean = alpha * xm / (alpha - 1)`` for alpha > 1; we parameterize by
    (alpha, mean) because the mean is what calibration reasons about.
    """

    def __init__(self, alpha: float = 1.5, mean: float = 3600.0) -> None:
        self.alpha = check_positive("alpha", alpha)
        if self.alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a finite mean")
        self.mean = check_positive("mean", mean)
        self.xm = self.mean * (self.alpha - 1.0) / self.alpha

    def sample(self, rng) -> float:
        """One session duration in seconds."""
        rng = as_generator(rng)
        # Inverse-transform: xm / U^(1/alpha).
        u = rng.random()
        # rng.random() is in [0, 1); guard the u == 0 corner.
        while u == 0.0:  # pragma: no cover - probability ~2^-53
            u = rng.random()
        return self.xm / u ** (1.0 / self.alpha)


class LogNormalSessions:
    """Log-normal session durations, parameterized by median and sigma."""

    def __init__(self, median: float = 1800.0, sigma: float = 1.0) -> None:
        self.median = check_positive("median", median)
        self.sigma = check_positive("sigma", sigma)

    def sample(self, rng) -> float:
        rng = as_generator(rng)
        import math

        return float(self.median * math.exp(self.sigma * rng.standard_normal()))
