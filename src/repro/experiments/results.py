"""Experiment result container."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.metrics.report import ComparisonRow, format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Output of one registered experiment."""

    experiment_id: str
    title: str
    rows: list[ComparisonRow]
    series: dict[str, list[float]] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def all_within_band(self) -> bool:
        """True when every banded row is inside its acceptance band."""
        return all(row.within_band is not False for row in self.rows)

    def payload(self) -> dict:
        """Fully comparable snapshot of everything this result carries.

        Used to assert that serial and parallel (engine) runs of the same
        experiment are bit-identical: rows, series values, and extras
        (repr'd, since extras may hold arbitrary objects) all participate.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": [
                (row.label, row.paper, row.measured, row.band)
                for row in self.rows
            ],
            "series": {name: list(values) for name, values in self.series.items()},
            "extras": {name: repr(value) for name, value in self.extras.items()},
        }

    def report(self) -> str:
        return format_table(f"{self.experiment_id}: {self.title}", self.rows)

    def save_series(self, path: str | os.PathLike) -> int:
        """Write the plotted series as CSV (one column per series).

        Lets users regenerate the paper's figures with their own plotting
        stack; returns the number of data rows written.  Series of
        unequal length are padded with empty cells.
        """
        if not self.series:
            raise ValueError(f"experiment {self.experiment_id!r} has no series")
        names = sorted(self.series)
        length = max(len(self.series[n]) for n in names)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("trial," + ",".join(names) + "\n")
            for i in range(length):
                cells = [
                    f"{self.series[n][i]:.6f}" if i < len(self.series[n]) else ""
                    for n in names
                ]
                fh.write(f"{i + 1}," + ",".join(cells) + "\n")
        return length

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return self.report()
