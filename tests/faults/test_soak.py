"""The chaos-soak harness end to end: invariants + bit-identical replay."""

import gc
import json

import pytest

from repro.faults.plan import CRASH, PARTITION, RESTART, FaultEvent, FaultPlan
from repro.faults.soak import chaos_soak, expected_min_reconnects, make_plan
from repro.network.topology import Topology


class TestExpectedMinReconnects:
    TOPOLOGY = Topology(4, [(0, 1), (1, 2), (2, 3), (0, 3)])

    def test_crash_counts_surviving_dialers(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=0.1, kind=CRASH, node=2),
                FaultEvent(time=0.5, kind=RESTART, node=2),
            ),
            duration=1.0,
        )
        # node 2's neighbors are 1 and 3; only node 1 dials it (1 < 2)
        assert expected_min_reconnects(self.TOPOLOGY, plan) == 1

    def test_partition_counts_cross_edges(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=0.1, kind=PARTITION, groups=((0, 1), (2, 3))
                ),
                FaultEvent(time=0.5, kind="heal"),
            ),
            duration=1.0,
        )
        # cross edges: (1, 2) and (0, 3)
        assert expected_min_reconnects(self.TOPOLOGY, plan) == 2

    def test_unapplied_log_entries_are_skipped(self):
        log = [
            {"time": 0.1, "kind": "reset", "link": [0, 1], "applied": True},
            {"time": 0.2, "kind": "corrupt", "link": [1, 2], "applied": False},
        ]
        assert expected_min_reconnects(self.TOPOLOGY, log) == 1


class TestMakePlan:
    def test_unknown_name_raises(self):
        topology = Topology(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        with pytest.raises(ValueError):
            make_plan("meteor-strike", topology)


@pytest.mark.live
class TestChaosSoak:
    @pytest.mark.filterwarnings("error::ResourceWarning")
    def test_mixed_soak_passes_and_replays_bit_identically(self):
        first = chaos_soak("mixed", n_nodes=6, seed=5)
        second = chaos_soak("mixed", n_nodes=6, seed=5)
        assert first.ok, first.format()
        assert second.ok, second.format()
        assert first.fingerprint() == second.fingerprint()
        assert json.dumps(first.events) == json.dumps(second.events)
        assert first.observed["leaked_tasks"] == 0
        gc.collect()  # leaked transports would raise ResourceWarning here

    @pytest.mark.filterwarnings("error::ResourceWarning")
    def test_crash_restart_soak_holds_every_invariant(self):
        report = chaos_soak("crash-restart", n_nodes=6, seed=3)
        assert report.ok, report.format()
        assert (
            report.observed["reconnects"]
            >= report.observed["expected_min_reconnects"]
        )
        gc.collect()

    def test_report_fingerprint_ignores_timing_noise(self):
        report = chaos_soak("partition-heal", n_nodes=6, seed=9)
        assert report.ok, report.format()
        before = report.fingerprint()
        report.observed["frames_in"] += 1234.0  # timing-noisy, not hashed
        assert report.fingerprint() == before
        data = json.loads(report.to_json())
        assert data["fingerprint"] == before
        assert data["ok"] is True
