"""Tests for repro.core.streaming (the streaming strategy)."""

import pytest

from repro.core.streaming import StreamingRules, _ExactWindowCounts
from tests.conftest import make_block


def stationary_blocks(n_blocks, pairs_per_block=40):
    pairs = [(1, 10), (2, 20)] * (pairs_per_block // 2)
    return [make_block(pairs, index=i) for i in range(n_blocks)]


def drifting_blocks(n_blocks, pairs_per_block=40):
    return [
        make_block([(1, 100 + i)] * pairs_per_block, index=i)
        for i in range(n_blocks)
    ]


class TestExactWindowCounts:
    def test_threshold_crossing(self):
        counts = _ExactWindowCounts(window_pairs=100, min_support_count=3)
        for _ in range(2):
            counts.push(1, 10)
        assert not counts.covers(1)
        counts.push(1, 10)
        assert counts.covers(1)
        assert counts.matches(1, 10)
        assert not counts.matches(1, 11)

    def test_window_eviction_uncovers(self):
        counts = _ExactWindowCounts(window_pairs=4, min_support_count=3)
        for _ in range(3):
            counts.push(1, 10)
        assert counts.covers(1)
        # Push unrelated pairs to evict the old ones.
        for _ in range(4):
            counts.push(2, 20)
        assert not counts.covers(1)
        assert counts.covers(2)

    def test_n_rules(self):
        counts = _ExactWindowCounts(window_pairs=100, min_support_count=2)
        counts.push(1, 10)
        counts.push(1, 10)
        counts.push(1, 11)
        assert counts.n_rules() == 1


class TestStreamingRules:
    def test_near_perfect_on_stationary(self):
        run = StreamingRules(min_support_count=2, window_pairs=100).run(
            stationary_blocks(5)
        )
        assert run.average_coverage == 1.0
        assert run.average_success == 1.0
        assert run.n_generations == 0

    def test_adapts_quickly_to_drift(self):
        # Replier changes each block; streaming picks the new pair up after
        # min_support_count observations within the block, so success is
        # high even though batch sliding would score 0.
        run = StreamingRules(min_support_count=2, window_pairs=100).run(
            drifting_blocks(5)
        )
        assert run.average_success > 0.85

    def test_lossy_backend_close_to_exact(self):
        blocks = stationary_blocks(5)
        exact = StreamingRules(min_support_count=2, backend="exact").run(blocks)
        lossy = StreamingRules(min_support_count=2, backend="lossy").run(blocks)
        assert abs(exact.average_coverage - lossy.average_coverage) < 0.1
        assert abs(exact.average_success - lossy.average_success) < 0.1

    def test_requires_two_blocks(self):
        with pytest.raises(ValueError):
            StreamingRules().run(stationary_blocks(1))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_support_count": 0},
            {"window_pairs": 0},
            {"backend": "exotic"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StreamingRules(**kwargs)

    def test_trials_aligned_with_batch_strategies(self):
        blocks = stationary_blocks(4)
        run = StreamingRules(min_support_count=2).run(blocks)
        assert run.n_trials == 3  # first block is warmup, like training
        assert [t.block_index for t in run.trials] == [1, 2, 3]
