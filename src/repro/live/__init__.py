"""The paper's servent as a deployable asyncio network service.

The reproduction's other subsystems exercise the Gnutella substrate
in-process; this one puts it on the wire.  A :class:`LiveServent` is a
real TCP daemon — asyncio server, supervised outbound links with
reconnect backoff, incremental frame reassembly, bounded-queue write
backpressure — around the exact codec and forwarding state machine of
:mod:`repro.network`, with the paper's association routing maintained
online by :class:`repro.core.streaming.StreamingRules`.

* :mod:`~repro.live.framing` — chunk-boundary-safe descriptor decoding;
* :mod:`~repro.live.connection` — per-peer connection lifecycle;
* :mod:`~repro.live.node` — the servent daemon itself;
* :mod:`~repro.live.cluster` — loopback N-node harness + workloads;
* :mod:`~repro.live.stats` — per-node operational counters.

Observability (see :mod:`repro.obs` and ``docs/observability.md``): a
node built with a metrics registry exports Prometheus series and can
serve ``/metrics`` + ``/healthz`` over HTTP (``obs_port=``); a cluster
built with ``observe=True`` shares one registry and one query tracer
across its nodes, so ``render_metrics()`` scrapes everything at once and
``format_trace(guid)`` reconstructs a query's hop-by-hop path.

Run one node with ``python -m repro live-node``; race rule routing
against flooding over real sockets with ``python -m repro live-cluster``.
"""

from repro.live.cluster import (
    LiveCluster,
    harness_config,
    interest_plan,
    make_vocabulary,
)
from repro.live.connection import ConnectionConfig, PeerConnection
from repro.live.framing import StreamDecoder
from repro.live.node import LiveServent, StreamingRuleServent
from repro.live.stats import NodeStats, combine_stats

__all__ = [
    "ConnectionConfig",
    "LiveCluster",
    "LiveServent",
    "NodeStats",
    "PeerConnection",
    "StreamDecoder",
    "StreamingRuleServent",
    "combine_stats",
    "harness_config",
    "interest_plan",
    "make_vocabulary",
]
