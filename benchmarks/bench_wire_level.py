"""Wire-level bench: the paper's routing as deployed Gnutella software.

Runs keyword workloads over byte-framed servent networks — vanilla
flooding vs :class:`RuleRoutedServent` — and reports frames per query.
This is the §I deployment story end to end: "it can be deployed in nodes
in current systems without requiring that all nodes support this method."
"""

import numpy as np
import pytest

from benchmarks.conftest import register_report
from repro.network.topology import random_regular
from repro.network.wirenet import WireNetwork

VOCAB = [
    "alpha", "bravo", "cedar", "delta", "ember", "flint", "gale", "harbor",
]


def _run(rule_routed: bool, seed: int = 11, n_nodes: int = 40):
    topo = random_regular(n_nodes, 4, rng=np.random.default_rng(seed))
    net = WireNetwork(topo, rule_routed=rule_routed)
    net.stock_random_libraries(np.random.default_rng(seed + 1), vocabulary=VOCAB)
    if rule_routed:
        net.run_workload(
            np.random.default_rng(seed + 2), vocabulary=VOCAB, n_queries=250
        )
    return net.run_workload(
        np.random.default_rng(seed + 3), vocabulary=VOCAB, n_queries=120
    )


def test_wire_level_rule_routing(benchmark):
    def compare():
        vanilla = _run(rule_routed=False)
        routed = _run(rule_routed=True)
        return vanilla, routed

    vanilla, routed = benchmark.pedantic(compare, rounds=1, iterations=1)
    register_report(
        "wire-level deployment (byte-framed servents, 40 nodes)\n"
        "------------------------------------------------------\n"
        f"vanilla flooding : frames/query={vanilla['frames_per_query']:.1f} "
        f"answer_rate={vanilla['answer_rate']:.3f}\n"
        f"rule-routed      : frames/query={routed['frames_per_query']:.1f} "
        f"answer_rate={routed['answer_rate']:.3f}\n"
        f"frame reduction  : {vanilla['frames_per_query'] / routed['frames_per_query']:.2f}x"
    )
    assert routed["frames_per_query"] < vanilla["frames_per_query"]
    assert routed["answer_rate"] > vanilla["answer_rate"] - 0.25
