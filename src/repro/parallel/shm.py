"""Shared-memory (and spill-to-disk) transport for trace pair columns.

The experiment engine fans tasks out to ``ProcessPoolExecutor`` workers.
A full-scale trace is tens of megabytes of int64 columns; pickling it
into every task would dominate the task cost, so the parent writes each
generated trace's ``(source, replier)`` columns into one
``multiprocessing.shared_memory`` segment and ships workers a tiny
picklable :class:`TraceHandle` instead.  Workers map the segment and
build zero-copy numpy views — and the :class:`~repro.trace.blocks.PairBlock`
slices the experiments consume are views of those views.

Traces past paper scale do not fit a shm segment comfortably (shm is
RAM), so the store can **spill**: given a ``spill_dir``, any trace at or
above ``spill_threshold_bytes`` is written once as an on-disk columnar
trace store (:mod:`repro.trace.store`) instead, and both the parent and
every worker attach zero-copy ``np.memmap`` views directly to the file's
column segments — same array contents, so pooled results stay
bit-identical to serial; the OS shares the page cache across processes
the way shm shares the segment.

Lifecycle: the parent (:class:`SharedTraceStore`) owns every segment and
spill file and unlinks them in :meth:`close`; workers only attach.
Worker-side shm attachments are deliberately unregistered from the
multiprocessing resource tracker — the parent's unlink is authoritative,
and without the unregister every worker exit would log spurious leak
warnings.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "TraceHandle",
    "SharedTraceStore",
    "AttachedTraceStore",
    "DEFAULT_SPILL_THRESHOLD",
]

_ITEMSIZE = np.dtype(np.int64).itemsize

#: default spill cutoff with a spill_dir configured: traces at/above this
#: many bytes (both columns) go to disk instead of shared memory.
DEFAULT_SPILL_THRESHOLD = 256 * 1024 * 1024


@dataclass(frozen=True)
class TraceHandle:
    """Picklable reference to one trace's columns.

    Shared-memory traces carry the segment name (``n_pairs`` int64
    sources followed by ``n_pairs`` int64 repliers); spilled traces
    carry the trace-store ``path`` instead (``shm_name`` is None).
    """

    shm_name: str | None
    n_pairs: int
    path: str | None = None


def _views(buf, n_pairs: int) -> tuple[np.ndarray, np.ndarray]:
    sources = np.ndarray((n_pairs,), dtype=np.int64, buffer=buf, offset=0)
    repliers = np.ndarray(
        (n_pairs,), dtype=np.int64, buffer=buf, offset=n_pairs * _ITEMSIZE
    )
    return sources, repliers


def _open_spill(path: str):
    """Open a single-block spill store file for column memmaps."""
    from repro.trace.store import TraceStoreReader

    return TraceStoreReader(path)


class SharedTraceStore:
    """Parent-side owner of shared trace segments, keyed by trace spec.

    With ``spill_dir`` set, traces whose columns total at least
    ``spill_threshold_bytes`` are written once to disk as a single-block
    trace store instead of copied into shm; workers memmap the file's
    column segments directly.
    """

    def __init__(
        self,
        *,
        spill_dir: str | os.PathLike | None = None,
        spill_threshold_bytes: int = DEFAULT_SPILL_THRESHOLD,
    ) -> None:
        self._segments: dict[object, shared_memory.SharedMemory] = {}
        self._handles: dict[object, TraceHandle] = {}
        self._spill_paths: dict[object, str] = {}
        self._spill_readers: dict[object, object] = {}
        self._spill_dir = os.fspath(spill_dir) if spill_dir is not None else None
        self._spill_threshold = int(spill_threshold_bytes)
        self._spill_counter = 0

    def _spill(self, key: object, sources: np.ndarray, repliers: np.ndarray) -> TraceHandle:
        from repro.trace.store import TraceStoreWriter

        assert self._spill_dir is not None
        os.makedirs(self._spill_dir, exist_ok=True)
        path = os.path.join(
            self._spill_dir, f"trace-{os.getpid()}-{self._spill_counter}.rptrace"
        )
        self._spill_counter += 1
        n_pairs = len(sources)
        # One block holding the whole trace: attach is a single memmap
        # per column; the packed-key segment is skipped because workers
        # re-slice the columns into evaluation blocks anyway.
        with TraceStoreWriter(path, block_size=n_pairs, include_packed=False) as writer:
            writer.append(sources, repliers)
        self._spill_paths[key] = path
        handle = TraceHandle(shm_name=None, n_pairs=n_pairs, path=path)
        self._handles[key] = handle
        return handle

    def put(self, key: object, sources: np.ndarray, repliers: np.ndarray) -> TraceHandle:
        """Store one trace's columns (shared segment, or disk when spilling)."""
        if key in self._handles:
            return self._handles[key]
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        repliers = np.ascontiguousarray(repliers, dtype=np.int64)
        if sources.shape != repliers.shape or sources.ndim != 1:
            raise ValueError("trace columns must be matching 1-D arrays")
        n_pairs = len(sources)
        if (
            self._spill_dir is not None
            and n_pairs > 0
            and 2 * n_pairs * _ITEMSIZE >= self._spill_threshold
        ):
            return self._spill(key, sources, repliers)
        shm = shared_memory.SharedMemory(
            create=True, size=max(2 * n_pairs * _ITEMSIZE, 1)
        )
        src_view, rep_view = _views(shm.buf, n_pairs)
        src_view[:] = sources
        rep_view[:] = repliers
        self._segments[key] = shm
        handle = TraceHandle(shm_name=shm.name, n_pairs=n_pairs)
        self._handles[key] = handle
        return handle

    def arrays(self, key: object) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy views of a stored trace (parent-side reuse)."""
        handle = self._handles[key]
        if handle.path is not None:
            # One cached reader per spilled trace: repeated lookups reuse
            # its mappings instead of leaking a fresh fd pair per call,
            # and close() can release them deterministically.
            reader = self._spill_readers.get(key)
            if reader is None:
                reader = _open_spill(handle.path)
                self._spill_readers[key] = reader
            return reader.columns(0)
        shm = self._segments[key]
        return _views(shm.buf, handle.n_pairs)

    def handles(self) -> dict[object, TraceHandle]:
        """Picklable {trace key: handle} map for worker initializers."""
        return dict(self._handles)

    def __len__(self) -> int:
        return len(self._handles)

    def close(self) -> None:
        """Release and unlink every owned segment and spill file.

        Idempotent: a second close finds everything already cleared.
        Spill readers close *before* their files are unlinked so the
        deletes succeed even on platforms that lock mapped files.
        """
        for shm in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # already unlinked (double close)
                pass
        for reader in self._spill_readers.values():
            reader.close()
        for path in self._spill_paths.values():
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._spill_readers.clear()
        self._spill_paths.clear()
        self._handles.clear()

    def __enter__(self) -> "SharedTraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AttachedTraceStore:
    """Worker-side view of the parent's shared trace segments.

    Attachments (shm segments, spill-store readers) are cached per trace
    key and released by :meth:`close` — idempotent, and usable as a
    context manager for workers with bounded lifetimes.
    """

    def __init__(self, handles: dict[object, TraceHandle]) -> None:
        self._handles = dict(handles)
        self._attached: dict[object, shared_memory.SharedMemory] = {}
        self._spill_readers: dict[object, object] = {}

    def keys(self):
        return self._handles.keys()

    def __contains__(self, key: object) -> bool:
        return key in self._handles

    def arrays(self, key: object) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy (sources, repliers) views for one trace key."""
        handle = self._handles[key]
        if handle.path is not None:
            # Spilled trace: memmap the column segments straight off the
            # parent's store file — no shm segment exists for this key.
            # The reader is cached so every lookup reuses one fd + two
            # mappings instead of accreting new ones over a long run.
            reader = self._spill_readers.get(key)
            if reader is None:
                reader = _open_spill(handle.path)
                self._spill_readers[key] = reader
            return reader.columns(0)
        shm = self._attached.get(key)
        if shm is None:
            shm = shared_memory.SharedMemory(name=handle.shm_name)
            # The parent owns the segment.  Under spawn/forkserver each
            # worker runs its own resource tracker, which would unlink the
            # segment when the worker exits — out from under the parent —
            # so the attachment must be unregistered.  Under fork the
            # tracker process is shared with the parent and unregistering
            # here would instead drop the parent's own registration.
            if multiprocessing.get_start_method(allow_none=True) != "fork":
                try:
                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:  # pragma: no cover - tracker internals
                    pass
            self._attached[key] = shm
        return _views(shm.buf, handle.n_pairs)

    def close(self) -> None:
        """Detach every cached segment and spill reader (double-close safe)."""
        for shm in self._attached.values():
            shm.close()
        for reader in self._spill_readers.values():
            reader.close()
        self._attached.clear()
        self._spill_readers.clear()

    def __enter__(self) -> "AttachedTraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
