"""Append-oriented typed tables.

A :class:`Table` stores rows column-wise in plain Python lists, with an
optional declared Python type per column that is checked on insert.  Columnar
storage keeps the trace pipeline cache-friendly when a whole column (e.g.
every GUID) is scanned, and lets :mod:`repro.core.generation` lift columns
straight into numpy arrays for the vectorized rule-counting fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

__all__ = ["Column", "Table"]

#: dtypes the JSON-lines round trip (:meth:`Database.save` /
#: :meth:`Database.load`) can name; everything the trace pipeline's
#: schemas use is here.
DTYPE_NAMES: dict[type, str] = {int: "int", float: "float", str: "str", bool: "bool"}
DTYPES_BY_NAME: dict[str, type] = {name: t for t, name in DTYPE_NAMES.items()}


@dataclass(frozen=True)
class Column:
    """Schema entry: a column name and an optional expected Python type."""

    name: str
    dtype: type | None = None

    def check(self, value: Any) -> None:
        if self.dtype is not None and not isinstance(value, self.dtype):
            raise TypeError(
                f"column {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__}: {value!r}"
            )

    def spec(self) -> dict:
        """JSON-able schema entry (inverse of :meth:`from_spec`)."""
        if self.dtype is None:
            return {"name": self.name, "dtype": None}
        if self.dtype not in DTYPE_NAMES:
            raise ValueError(
                f"column {self.name!r} dtype {self.dtype.__name__} has no "
                f"JSON name; serializable dtypes: "
                f"{sorted(DTYPES_BY_NAME)}"
            )
        return {"name": self.name, "dtype": DTYPE_NAMES[self.dtype]}

    @classmethod
    def from_spec(cls, spec: dict) -> "Column":
        dtype_name = spec.get("dtype")
        if dtype_name is None:
            return cls(spec["name"])
        if dtype_name not in DTYPES_BY_NAME:
            raise ValueError(
                f"unknown column dtype name {dtype_name!r}; expected one "
                f"of {sorted(DTYPES_BY_NAME)}"
            )
        return cls(spec["name"], DTYPES_BY_NAME[dtype_name])


class Table:
    """A named, schema-checked, append-only columnar table."""

    def __init__(self, name: str, columns: Sequence[Column | str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(
            c if isinstance(c, Column) else Column(c) for c in columns
        )
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {names}")
        self._order = {c.name: i for i, c in enumerate(self.columns)}
        self._data: list[list[Any]] = [[] for _ in self.columns]
        self._indexes: dict[str, "HashIndex"] = {}

    # -- shape ------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def __len__(self) -> int:
        return len(self._data[0])

    def column(self, name: str) -> list[Any]:
        """Return the backing list for ``name`` (treat as read-only)."""
        return self._data[self._col_index(name)]

    def _col_index(self, name: str) -> int:
        try:
            return self._order[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    # -- mutation ---------------------------------------------------------
    def append(self, row: Sequence[Any]) -> int:
        """Append one row (positional, matching the schema); return its id."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{len(self.columns)} columns"
            )
        for col, value in zip(self.columns, row):
            col.check(value)
        rowid = len(self)
        for store, value in zip(self._data, row):
            store.append(value)
        for index in self._indexes.values():
            index.notify_append(rowid)
        return rowid

    def append_dict(self, row: dict) -> int:
        """Append one row given as a mapping from column name to value."""
        return self.append([row[c.name] for c in self.columns])

    def extend(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; return the number appended."""
        n = 0
        for row in rows:
            self.append(row)
            n += 1
        return n

    # -- access -----------------------------------------------------------
    def row(self, rowid: int) -> tuple:
        """Return row ``rowid`` as a tuple in schema order."""
        if not 0 <= rowid < len(self):
            raise IndexError(f"row {rowid} out of range for table {self.name!r}")
        return tuple(store[rowid] for store in self._data)

    def row_dict(self, rowid: int) -> dict:
        return dict(zip(self.column_names, self.row(rowid)))

    def iter_rows(self) -> Iterator[tuple]:
        for rowid in range(len(self)):
            yield self.row(rowid)

    def to_rows(self) -> list[dict]:
        """Return every row as a dict, in insertion order."""
        return [self.row_dict(i) for i in range(len(self))]

    def select(self, predicate: Callable[[dict], bool]) -> list[int]:
        """Return ids of rows whose dict form satisfies ``predicate``."""
        return [i for i in range(len(self)) if predicate(self.row_dict(i))]

    def project(self, names: Sequence[str]) -> list[tuple]:
        """Return all rows restricted to ``names`` (in the given order)."""
        cols = [self.column(n) for n in names]
        return list(zip(*cols)) if cols and len(self) else []

    # -- indexing ---------------------------------------------------------
    def create_index(self, column_name: str) -> "HashIndex":
        """Create (or return an existing) hash index on ``column_name``.

        Mirrors the paper's note that simulations only became practical
        "after creating indices to frequently-searched fields".
        """
        from repro.store.index import HashIndex

        if column_name in self._indexes:
            return self._indexes[column_name]
        index = HashIndex(self, column_name)
        self._indexes[column_name] = index
        return index

    def index(self, column_name: str) -> "HashIndex | None":
        return self._indexes.get(column_name)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Table({self.name!r}, rows={len(self)}, cols={self.column_names})"
