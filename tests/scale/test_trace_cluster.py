"""Cross-process tracing, the collector, and the flight recorder, live.

The acceptance path for the observability layer: a query issued through
the multi-process ``ClusterSupervisor`` must yield ONE merged trace via
``repro.obs.collect`` — issued, rule-routed/flooded with the matched
rule's antecedent/consequent/confidence, hit, delivered — and the
collector's live quality measures must agree with the servents' own
counters.  Hard kills must leave a harvestable flight recording.
"""

import time

import pytest

from repro.network.servent import LOCAL
from repro.network.topology import Topology
from repro.obs.collect import format_cluster_rollup, format_trace_tree
from repro.scale.supervisor import ClusterSupervisor, partitioned_specs

VOCAB = ["alpha", "bravo", "charlie", "delta"]


def wait_until(predicate, *, timeout=20.0, interval=0.1, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    pytest.fail(f"timed out waiting for {message}")


def traced_supervisor(tmp_path, **spec_overrides):
    specs = partitioned_specs(
        2,
        VOCAB,
        trace_sample=1,
        flight_dir=str(tmp_path / "flight"),
        flight_flush_every=1,
        **spec_overrides,
    )
    return ClusterSupervisor(specs, topology=Topology(2, [(0, 1)]))


@pytest.mark.live
class TestTracedCluster:
    def test_merged_cross_node_trace_with_explainability(self, tmp_path):
        with traced_supervisor(tmp_path) as sup:
            wait_until(
                lambda: all(
                    payload["connected_peers"]
                    for payload in sup.stats().values()
                ),
                message="peers to connect",
            )
            # "bravo" lives on node 1; issue from node 0 so every query
            # crosses the process boundary.  Sequential waits let rules
            # learn between queries: the first queries flood, and once
            # the (LOCAL -> peer) pair reaches min_support_count=2 the
            # later ones rule-route.
            for i in range(4):
                sup.issue_query(0, "bravo")
                wait_until(
                    lambda want=i + 1: (
                        sup.stats()[0]["counters"]["hits_received"] >= want
                    ),
                    message=f"hit {i + 1}",
                )

            collector = sup.collector()
            collector.poll()

            # one merged trace per query, spanning both processes.
            assert len(collector.traces) == 4
            answered = collector.answered_guids()
            assert answered
            trace = collector.traces[collector.best_guid()]
            kinds = trace.kinds()
            assert kinds[0] == "issued"
            assert "hit" in kinds and "delivered" in kinds
            assert {e.node for e in trace.events} == {0, 1}
            assert trace.answered

            # every forwarding decision carries its explanation.
            forwards = [
                e
                for t in collector.traces.values()
                for e in t.events
                if e.kind in ("rule_routed", "flooded")
            ]
            assert forwards
            assert all(
                e.reason == "no_covering_rule"
                for e in forwards
                if e.kind == "flooded"
            )
            rule_routed = [e for e in forwards if e.kind == "rule_routed"]
            assert rule_routed, "warmup queries never promoted a rule"
            origin_rules = [e for e in rule_routed if e.antecedent == LOCAL]
            assert origin_rules
            assert all(e.consequent is not None for e in rule_routed)
            assert all(
                e.support >= 2 and 0.0 < e.confidence <= 1.0
                for e in origin_rules
            )

            # the rendered artifacts exist and carry the story.
            tree = format_trace_tree(trace)
            assert "answered" in tree and "node 1" in tree
            rollup = format_cluster_rollup(collector)
            assert "**cluster**" in rollup

    def test_collector_quality_matches_servent_counters(self, tmp_path):
        with traced_supervisor(tmp_path) as sup:
            wait_until(
                lambda: all(
                    payload["connected_peers"]
                    for payload in sup.stats().values()
                ),
                message="peers to connect",
            )
            for i in range(3):
                sup.issue_query(0, "bravo")
                wait_until(
                    lambda want=i + 1: (
                        sup.stats()[0]["counters"]["hits_received"] >= want
                    ),
                    message=f"hit {i + 1}",
                )
            collector = sup.collector()
            collector.poll()
            totals = sup.totals()
            assert collector.cluster["issued"] == pytest.approx(
                totals["queries_issued"]
            )
            assert collector.cluster["hits"] == pytest.approx(
                totals["hits_received"]
            )
            assert collector.cluster["rule"] == pytest.approx(
                totals["queries_rule_routed"]
            )
            assert collector.cluster["flood"] == pytest.approx(
                totals["queries_flooded"]
            )
            quality = collector.live_quality()
            decisions = (
                totals["queries_rule_routed"] + totals["queries_flooded"]
            )
            assert quality["alpha"] == pytest.approx(
                totals["queries_rule_routed"] / decisions
            )
            assert quality["rho"] == pytest.approx(
                totals["hits_received"] / totals["queries_issued"]
            )

    def test_hard_kill_leaves_harvestable_flight_recording(self, tmp_path):
        with traced_supervisor(tmp_path) as sup:
            wait_until(
                lambda: all(
                    payload["connected_peers"]
                    for payload in sup.stats().values()
                ),
                message="peers to connect",
            )
            sup.issue_query(0, "bravo")
            wait_until(
                lambda: sup.stats()[0]["counters"]["hits_received"] >= 1,
                message="a cross-process hit",
            )
            sup.kill(0)
            # SIGKILL ran no handlers; kill() harvested the recorder's
            # last periodic flush.
            report = sup.flight_reports.get(0)
            assert report is not None
            assert report["header"]["flight"] == 1
            kinds = {event["kind"] for event in report["events"]}
            assert "lifecycle" in kinds
            assert "trace" in kinds or "control" in kinds
            # the survivor's recording is harvestable too (it dumps a
            # final ring on graceful stop at context exit).
        recordings = sup.flight_recordings()
        assert 1 in recordings
