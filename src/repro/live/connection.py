"""One live TCP link to a peer servent.

:class:`PeerConnection` owns a connected stream pair and runs three
tasks:

* **reader** — reads chunks, feeds the incremental
  :class:`~repro.live.framing.StreamDecoder`, and hands every completed
  descriptor to the node synchronously (so output frames are enqueued
  before the input frame is accounted as handled).  A peer that sends
  malformed bytes is dropped; a peer silent for ``idle_timeout`` seconds
  is presumed dead and dropped.
* **writer** — drains a *bounded* send queue through
  ``StreamWriter.drain()``.  The queue bound is the backpressure valve:
  when a peer reads slower than we route to it, frames are dropped (and
  counted) instead of buffering without limit — the standard live-P2P
  trade, and the same drop-under-pressure behaviour the paper's servents
  inherited from real Gnutella clients.
* **keepalive** — periodically sends a TTL-1 Ping so half-dead NAT/idle
  paths are detected by both ends.

Dialing is a free function (:func:`dial_peer`) with connect + handshake
timeouts; reconnect policy (exponential backoff via
:func:`backoff_delays`) is driven by the owning
:class:`~repro.live.node.LiveServent`'s per-peer supervisor task.

The handshake is Gnutella 0.4's, extended with a ``Node:`` header so
both ends learn the peer's overlay node id (connection ids must be
stable across reconnects for learned routing rules to stay valid):

.. code-block:: text

    dialer   ->  GNUTELLA CONNECT/0.4\\nNode: <id>\\n\\n
    acceptor ->  GNUTELLA OK\\nNode: <id>\\n\\n
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Awaitable, Callable, Iterator

from repro.live.framing import DEFAULT_MAX_PAYLOAD, StreamDecoder
from repro.live.stats import NodeStats
from repro.obs.instruments import NodeInstruments
from repro.obs.logging import RateLimiter, get_logger
from repro.network.protocol import DescriptorHeader, ProtocolError

__all__ = [
    "ConnectionConfig",
    "HandshakeError",
    "PeerConnection",
    "accept_handshake",
    "aclose_writer",
    "backoff_delays",
    "dial_peer",
    "offer_handshake",
]

#: Anything that opens a (reader, writer) stream pair the way
#: ``asyncio.open_connection`` does.  Fault-injection harnesses (see
#: :mod:`repro.faults.transport`) substitute an opener that wraps the
#: real streams, so faults apply at the socket boundary without the
#: protocol code knowing.
TransportOpener = Callable[
    [str, int],
    Awaitable[tuple[asyncio.StreamReader, asyncio.StreamWriter]],
]

_CONNECT_LINE = b"GNUTELLA CONNECT/0.4"
_OK_LINE = b"GNUTELLA OK"
_HANDSHAKE_LIMIT = 512

_log = get_logger("live.connection")
#: Protocol errors and send-queue drops are peer-triggered, so a broken
#: or hostile peer must not be able to flood the log: one line per peer
#: per window, with the suppressed count reported when the key re-opens.
_log_limiter = RateLimiter(5.0)


class HandshakeError(ProtocolError):
    """The peer did not speak the expected handshake."""


@dataclass(frozen=True)
class ConnectionConfig:
    """Timeouts, limits and retry policy for live connections."""

    #: seconds to establish a TCP connection before giving up.
    connect_timeout: float = 5.0
    #: seconds for the handshake exchange on a fresh connection.
    handshake_timeout: float = 5.0
    #: drop a peer silent for this long; 0 disables the idle check.
    idle_timeout: float = 60.0
    #: keepalive Ping cadence; 0 disables keepalives.
    keepalive_interval: float = 10.0
    #: bounded send queue (frames) — the write backpressure valve.
    send_queue_limit: int = 256
    #: exponential backoff for outbound re-dials.
    retry_initial_delay: float = 0.5
    retry_backoff: float = 2.0
    retry_max_delay: float = 15.0
    #: give up re-dialing after this many consecutive failures
    #: (None retries forever — the daemon default).
    max_retries: int | None = None
    #: largest descriptor payload accepted from a peer.
    max_payload_length: int = DEFAULT_MAX_PAYLOAD
    #: a write drain slower than this counts as a stall (metrics only;
    #: a stalling peer is backpressure, not an error).
    drain_stall_threshold: float = 0.1
    #: fraction of each backoff delay randomised away (0 = the old pure
    #: exponential; 1 = full jitter).  Without jitter, every supervisor
    #: that lost its link at the same instant — a healed partition, a
    #: restarted hub — re-dials on the same schedule (thundering herd).
    retry_jitter: float = 0.0
    #: seed for the jitter stream; combined with a per-peer salt so
    #: different supervisors draw different (but replayable) delays.
    #: None draws from OS entropy (non-reproducible).
    retry_jitter_seed: int | None = None
    #: how long a graceful ``aclose(flush=True)`` waits for queued
    #: frames to drain before falling back to a hard close.
    close_flush_timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.send_queue_limit < 1:
            raise ValueError("send_queue_limit must be >= 1")
        if self.retry_initial_delay <= 0 or self.retry_max_delay <= 0:
            raise ValueError("retry delays must be positive")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1.0")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be >= 0 or None")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError("retry_jitter must be in [0, 1]")
        if self.close_flush_timeout <= 0:
            raise ValueError("close_flush_timeout must be positive")


def backoff_delays(config: ConnectionConfig, *, salt: int = 0) -> Iterator[float]:
    """Exponential retry delays: initial * backoff^n, capped at max.

    With ``config.retry_jitter`` > 0, each yielded delay keeps a
    ``1 - jitter`` deterministic floor and randomises the rest over
    ``[0, jitter * base)`` — full jitter at 1.0 — so supervisors that
    lost their links simultaneously spread their re-dials instead of
    thundering back in lock-step.  The stream is seeded from
    ``config.retry_jitter_seed`` combined with ``salt`` (callers pass a
    per-peer value), so runs replay exactly while peers still decorrelate.
    """
    jitter = config.retry_jitter
    rng: random.Random | None = None
    if jitter > 0.0:
        if config.retry_jitter_seed is not None:
            seed = ((config.retry_jitter_seed & 0xFFFFFFFF) << 32) ^ (
                salt & 0xFFFFFFFF
            )
            rng = random.Random(seed)
        else:
            rng = random.Random()
    delay = config.retry_initial_delay
    while True:
        if rng is None:
            yield delay
        else:
            yield delay * (1.0 - jitter) + rng.random() * delay * jitter
        delay = min(delay * config.retry_backoff, config.retry_max_delay)


# ---------------------------------------------------------------------------
# handshake


async def _read_handshake(reader: asyncio.StreamReader) -> tuple[bytes, int]:
    try:
        blob = await reader.readuntil(b"\n\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
        raise HandshakeError("connection closed during handshake") from exc
    if len(blob) > _HANDSHAKE_LIMIT:
        raise HandshakeError("oversized handshake")
    lines = blob[:-2].split(b"\n")
    node_id: int | None = None
    for line in lines[1:]:
        key, _, value = line.partition(b":")
        if key.strip().lower() == b"node":
            try:
                node_id = int(value.strip())
            except ValueError as exc:
                raise HandshakeError(f"bad Node header {value!r}") from exc
    if node_id is None or node_id < 0:
        raise HandshakeError("handshake missing a valid Node header")
    return lines[0], node_id


async def offer_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    node_id: int,
) -> int:
    """Dialer side: send CONNECT, await OK; returns the peer's node id."""
    writer.write(_CONNECT_LINE + b"\nNode: %d\n\n" % node_id)
    await writer.drain()
    first, peer_id = await _read_handshake(reader)
    if first != _OK_LINE:
        raise HandshakeError(f"expected GNUTELLA OK, got {first!r}")
    return peer_id


async def accept_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    node_id: int,
) -> int:
    """Acceptor side: await CONNECT, send OK; returns the peer's node id."""
    first, peer_id = await _read_handshake(reader)
    if first != _CONNECT_LINE:
        raise HandshakeError(f"expected GNUTELLA CONNECT/0.4, got {first!r}")
    writer.write(_OK_LINE + b"\nNode: %d\n\n" % node_id)
    await writer.drain()
    return peer_id


async def aclose_writer(writer: asyncio.StreamWriter) -> None:
    """Close a bare stream writer and await its transport's teardown.

    ``writer.close()`` alone only *schedules* the close; abandoning the
    writer before ``wait_closed()`` leaks the transport (surfacing as
    ``ResourceWarning`` under rapid reconnects).  Errors are swallowed —
    this runs on paths where the connection is already broken.
    """
    try:
        writer.close()
        await writer.wait_closed()
    except Exception:
        pass


async def dial_peer(
    host: str,
    port: int,
    node_id: int,
    config: ConnectionConfig,
    *,
    open_transport: TransportOpener | None = None,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter, int]:
    """Connect + handshake with timeouts; returns (reader, writer, peer id).

    Raises ``OSError`` on dial failure and :class:`HandshakeError` /
    ``asyncio.TimeoutError`` on a broken handshake; the caller's
    supervisor turns any of these into a backoff retry.

    ``open_transport`` substitutes for ``asyncio.open_connection``:
    fault-injection harnesses pass an opener returning wrapped streams so
    faults act at the socket boundary (including during the handshake).
    """
    opener = open_transport if open_transport is not None else asyncio.open_connection
    reader, writer = await asyncio.wait_for(
        opener(host, port), config.connect_timeout
    )
    try:
        peer_id = await asyncio.wait_for(
            offer_handshake(reader, writer, node_id), config.handshake_timeout
        )
    except BaseException:
        await aclose_writer(writer)
        raise
    return reader, writer, peer_id


# ---------------------------------------------------------------------------
# the connection proper


class PeerConnection:
    """A framed, backpressured, keepalive-monitored link to one peer."""

    def __init__(
        self,
        peer_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        config: ConnectionConfig,
        stats: NodeStats,
        on_message: Callable[[int, DescriptorHeader, object], None],
        on_close: Callable[["PeerConnection"], None] | None = None,
        make_keepalive: Callable[[], bytes | None] | None = None,
        instruments: NodeInstruments | None = None,
    ) -> None:
        self.peer_id = peer_id
        self._reader = reader
        self._writer = writer
        self._config = config
        self._stats = stats
        self._instr = instruments
        self._timed = instruments is not None and instruments.enabled
        self._on_message = on_message
        self._on_close = on_close
        self._make_keepalive = make_keepalive
        self._queue: asyncio.Queue[bytes | None] = asyncio.Queue(
            maxsize=config.send_queue_limit
        )
        self._decoder = StreamDecoder(max_payload_length=config.max_payload_length)
        self._tasks: list[asyncio.Task] = []
        self._write_task: asyncio.Task | None = None
        self._closed = asyncio.Event()
        self._closing = False
        self._draining = False
        #: frames this link refused (queue full / closing) — the
        #: per-connection view of overload shedding; the owning node
        #: folds refusals into ``frames_dropped`` / ``queries_shed``.
        self.sends_rejected = 0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Spawn the reader / writer / keepalive tasks."""
        self._write_task = asyncio.create_task(self._write_loop())
        self._tasks = [
            asyncio.create_task(self._read_loop()),
            self._write_task,
        ]
        if self._config.keepalive_interval > 0 and self._make_keepalive:
            self._tasks.append(asyncio.create_task(self._keepalive_loop()))

    @property
    def closed(self) -> bool:
        return self._closing

    async def wait_closed(self) -> None:
        await self._closed.wait()

    def close(self) -> None:
        """Begin *hard* teardown (idempotent); safe from any task.

        Queued frames are dropped and the loop tasks are cancelled — the
        right response to a peer-initiated drop, where the link is
        already useless.  For a clean local shutdown use
        :meth:`aclose` with ``flush=True``, which drains the send queue
        first; and note this method only *begins* teardown: an owner
        that never awaits :meth:`aclose` leaks the cancelled tasks and
        the transport until the event loop exits.
        """
        if self._closing:
            return
        self._closing = True
        for task in self._tasks:
            task.cancel()
        try:
            self._writer.close()
        except Exception:
            pass
        self._closed.set()
        if self._on_close is not None:
            self._on_close(self)

    async def aclose(self, *, flush: bool = False) -> None:
        """Async teardown: close, then await tasks and transport.

        With ``flush=True`` (clean *local* shutdown) the ``None``
        sentinel is enqueued and the write loop drains every frame
        already accepted before closing — bounded by
        ``config.close_flush_timeout``, after which the hard close drops
        whatever is left (a peer that stopped reading must not pin our
        shutdown).  Idempotent, and safe to call from the supervisor
        after :meth:`wait_closed`: it reaps the cancelled reader /
        writer / keepalive tasks and awaits the transport's
        ``wait_closed()``, so rapid reconnect cycles leak neither tasks
        nor transports.
        """
        if flush and not self._closing and not self._draining:
            self._draining = True  # refuse new frames; drain what's queued
            write_task = self._write_task
            if write_task is not None and not write_task.done():
                try:
                    self._queue.put_nowait(None)
                except asyncio.QueueFull:
                    pass  # saturated queue: fall through to the hard close
                else:
                    await asyncio.wait(
                        {write_task}, timeout=self._config.close_flush_timeout
                    )
        self.close()
        current = asyncio.current_task()
        tasks = [t for t in self._tasks if t is not current]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    # -- sending ----------------------------------------------------------
    def send(self, frame: bytes) -> bool:
        """Enqueue one frame; False (frame dropped) if closed or backed up.

        The queue bound is deliberate overload policy, not an internal
        limit: a peer reading slower than we route to it sheds frames
        *here*, at enqueue time, keeping per-link memory and queueing
        delay bounded while the refusal is visible to the caller (the
        node counts it; Query forwards land in ``queries_shed``).
        """
        if self._closing or self._draining:
            self.sends_rejected += 1
            return False
        try:
            self._queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.sends_rejected += 1
            return False
        return True

    @property
    def pending_frames(self) -> int:
        return self._queue.qsize()

    # -- internal loops ---------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                if self._config.idle_timeout > 0:
                    chunk = await asyncio.wait_for(
                        self._reader.read(65536), self._config.idle_timeout
                    )
                else:
                    chunk = await self._reader.read(65536)
                if not chunk:
                    break  # EOF: peer went away
                self._stats.bytes_in += len(chunk)
                if self._timed:
                    t0 = perf_counter()
                    frames = self._decoder.feed(chunk)
                    self._instr.observe_decode(perf_counter() - t0)
                else:
                    frames = self._decoder.feed(chunk)
                for header, payload in frames:
                    self._on_message(self.peer_id, header, payload)
                    self._stats.frames_in += 1
        except ProtocolError as exc:
            self._stats.protocol_errors += 1
            suppressed = _log_limiter.allow(("protocol_error", self.peer_id))
            if suppressed is not None:
                _log.warning(
                    "dropping peer after protocol error",
                    extra={
                        "peer": self.peer_id,
                        "error": str(exc),
                        "suppressed": suppressed,
                    },
                )
        except (asyncio.TimeoutError, OSError, asyncio.CancelledError):
            pass
        finally:
            self.close()

    async def _write_loop(self) -> None:
        try:
            while True:
                frame = await self._queue.get()
                if frame is None:
                    break  # aclose(flush=True)'s sentinel: drained, stop cleanly
                self._writer.write(frame)
                self._stats.bytes_out += len(frame)
                if self._timed:
                    t0 = perf_counter()
                    await self._writer.drain()
                    if (
                        perf_counter() - t0
                        > self._config.drain_stall_threshold
                    ):
                        self._instr.drain_stalls.inc()
                else:
                    await self._writer.drain()
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            self.close()

    async def _keepalive_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self._config.keepalive_interval)
                frame = self._make_keepalive()
                if frame is not None and self.send(frame):
                    self._stats.pings_sent += 1
                    self._stats.frames_out += 1
        except asyncio.CancelledError:
            pass
