"""Tests for repro.core.rules."""

import numpy as np
import pytest

from repro.core.rules import Rule, RuleSet


def make_ruleset():
    return RuleSet(
        [
            Rule(1, 10, 5),
            Rule(1, 11, 8),
            Rule(1, 12, 2),
            Rule(2, 10, 3),
        ]
    )


class TestRule:
    def test_requires_positive_count(self):
        with pytest.raises(ValueError):
            Rule(1, 2, 0)

    def test_str(self):
        assert str(Rule(1, 2, 3)) == "{1} -> {2} (n=3)"


class TestRuleSet:
    def test_len_counts_rules(self):
        assert len(make_ruleset()) == 4

    def test_n_antecedents(self):
        assert make_ruleset().n_antecedents == 2

    def test_covers(self):
        rs = make_ruleset()
        assert rs.covers(1)
        assert rs.covers(2)
        assert not rs.covers(3)

    def test_consequents_sorted_by_support(self):
        rs = make_ruleset()
        assert rs.consequents_for(1) == [11, 10, 12]

    def test_consequents_top_k(self):
        rs = make_ruleset()
        assert rs.consequents_for(1, k=2) == [11, 10]

    def test_consequents_for_unknown(self):
        assert make_ruleset().consequents_for(99) == []

    def test_consequents_k_validation(self):
        with pytest.raises(ValueError):
            make_ruleset().consequents_for(1, k=0)

    def test_matches(self):
        rs = make_ruleset()
        assert rs.matches(1, 11)
        assert rs.matches(2, 10)
        assert not rs.matches(1, 99)
        assert not rs.matches(99, 10)

    def test_iteration_yields_all_rules(self):
        rules = list(make_ruleset())
        assert len(rules) == 4
        assert all(isinstance(r, Rule) for r in rules)

    def test_ties_broken_by_consequent_id(self):
        rs = RuleSet([Rule(1, 20, 5), Rule(1, 10, 5)])
        assert rs.consequents_for(1) == [10, 20]

    def test_duplicate_consequent_rejected(self):
        with pytest.raises(ValueError):
            RuleSet([Rule(1, 10, 5), Rule(1, 10, 2)])

    def test_from_counts(self):
        rs = RuleSet.from_counts({(1, 10): 4, (2, 11): 7})
        assert rs.matches(1, 10)
        assert rs.rules_for(2)[0].count == 7

    def test_empty(self):
        rs = RuleSet.empty()
        assert len(rs) == 0
        assert not rs.covers(1)
        assert rs.pair_key_array.size == 0

    def test_pair_key_array_sorted(self):
        keys = make_ruleset().pair_key_array
        assert np.all(np.diff(keys) > 0)

    def test_antecedent_array_contents(self):
        antes = set(make_ruleset().antecedent_array.tolist())
        assert antes == {1, 2}

    def test_antecedents_frozenset(self):
        assert make_ruleset().antecedents() == frozenset({1, 2})
