"""Trace (de)serialization.

Tab-separated persistence for query and reply tables, so traces can be
generated once and replayed across experiment runs (the paper's 2.6 GB
database served the same purpose).  The format is line-oriented and
append-friendly; strings are the last field so they may contain spaces.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.store.table import Table
from repro.trace.records import (
    QUERY_COLUMNS,
    REPLY_COLUMNS,
    QueryRecord,
    ReplyRecord,
)

__all__ = ["write_queries", "read_queries", "write_replies", "read_replies"]

_QUERY_HEADER = "time\tguid\tsource\tquery_string"
_REPLY_HEADER = "time\tguid\treplier\thost\tfile_name"


def write_queries(path: str | os.PathLike, records: Iterable[QueryRecord]) -> int:
    """Write query records; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_QUERY_HEADER + "\n")
        for rec in records:
            if "\t" in rec.query_string or "\n" in rec.query_string:
                raise ValueError("query strings may not contain tabs or newlines")
            fh.write(f"{rec.time!r}\t{rec.guid}\t{rec.source}\t{rec.query_string}\n")
            n += 1
    return n


def read_queries(path: str | os.PathLike) -> Table:
    """Read query records into a fresh ``queries`` table."""
    table = Table("queries", QUERY_COLUMNS)
    with open(path, encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n")
        if header != _QUERY_HEADER:
            raise ValueError(f"not a query trace file: header {header!r}")
        for line in fh:
            time_s, guid_s, source_s, qs = line.rstrip("\n").split("\t", 3)
            table.append((float(time_s), int(guid_s), int(source_s), qs))
    return table


def write_replies(path: str | os.PathLike, records: Iterable[ReplyRecord]) -> int:
    """Write reply records; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_REPLY_HEADER + "\n")
        for rec in records:
            if "\t" in rec.file_name or "\n" in rec.file_name:
                raise ValueError("file names may not contain tabs or newlines")
            fh.write(
                f"{rec.time!r}\t{rec.guid}\t{rec.replier}\t{rec.host}\t{rec.file_name}\n"
            )
            n += 1
    return n


def read_replies(path: str | os.PathLike) -> Table:
    """Read reply records into a fresh ``replies`` table."""
    table = Table("replies", REPLY_COLUMNS)
    with open(path, encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n")
        if header != _REPLY_HEADER:
            raise ValueError(f"not a reply trace file: header {header!r}")
        for line in fh:
            time_s, guid_s, replier_s, host_s, fname = line.rstrip("\n").split("\t", 4)
            table.append(
                (float(time_s), int(guid_s), int(replier_s), int(host_s), fname)
            )
    return table
