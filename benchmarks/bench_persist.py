"""Durability micro-benchmarks: WAL append, checkpoint, and recovery.

Not a paper artifact — these benches size the cost of making rule state
durable (``docs/persistence.md``): how fast pairs journal at each fsync
policy, how long a checkpoint (snapshot + rotate + compact) takes, and
how long a crashed servent spends in recovery before serving again.

Run directly (``python -m benchmarks.bench_persist``) this module times
checkpoint and recovery latency across state sizes and emits
``BENCH_persist.json`` via :func:`benchmarks._emit.emit_bench_json`.
"""

import argparse
import os
import shutil
import tempfile
from time import perf_counter

import pytest

from repro.core.streaming import StreamingRules
from repro.persist import PersistentState, WalWriter, read_wal

from benchmarks._emit import emit_bench_json


def make_pairs(n: int) -> list[tuple[int, int]]:
    # 40 sources x 8 repliers: dense enough that rules actually form.
    return [(i % 40, (i * 7) % 8) for i in range(n)]


def populated_state(root: str, pairs, *, fsync: str = "never"):
    state = PersistentState(os.path.join(root, "node"), fsync=fsync)
    counts, _ = state.recover(StreamingRules(min_support_count=2, window_pairs=4096))
    for source, replier in pairs:
        counts.push(source, replier)
        state.record_pair(source, replier)
    return state, counts


# -- pytest-benchmark entry points ----------------------------------------


@pytest.fixture()
def state_dir(tmp_path):
    return str(tmp_path)


@pytest.mark.parametrize("fsync", ["never", "interval"])
def test_wal_append_throughput(benchmark, state_dir, fsync):
    writer = WalWriter(os.path.join(state_dir, f"{fsync}.wal"), fsync=fsync)
    pairs = make_pairs(2000)

    def append_all():
        for source, replier in pairs:
            writer.append(source, replier)

    benchmark.extra_info["pairs"] = len(pairs)
    benchmark(append_all)
    writer.close()
    assert writer.records >= len(pairs)


def test_checkpoint_latency(benchmark, state_dir):
    state, counts = populated_state(state_dir, make_pairs(10_000))
    benchmark.extra_info["pairs"] = 10_000
    header = benchmark(state.checkpoint, counts)
    state.close()
    assert header["n_rules"] > 0


def test_recovery_latency(benchmark, state_dir):
    state, counts = populated_state(state_dir, make_pairs(10_000))
    state.checkpoint(counts)
    state.close()
    rules = StreamingRules(min_support_count=2, window_pairs=4096)

    def recover():
        twin = PersistentState(state.state_dir, fsync="never")
        counts2, info = twin.recover(rules)
        twin.close()
        return info

    info = benchmark(recover)
    assert info.restored and info.n_rules == counts.n_rules()


# -- direct gate: python -m benchmarks.bench_persist ----------------------


def _time_scale(n_pairs: int, fsync: str) -> dict:
    root = tempfile.mkdtemp(prefix="bench-persist-")
    try:
        pairs = make_pairs(n_pairs)
        t0 = perf_counter()
        state, counts = populated_state(root, pairs, fsync=fsync)
        journal_seconds = perf_counter() - t0

        t0 = perf_counter()
        state.checkpoint(counts)
        checkpoint_seconds = perf_counter() - t0

        # leave a WAL tail so recovery exercises both paths
        tail = make_pairs(n_pairs // 10)
        for source, replier in tail:
            counts.push(source, replier)
            state.record_pair(source, replier)
        state.close()

        t0 = perf_counter()
        twin = PersistentState(state.state_dir, fsync="never")
        _counts, info = twin.recover(
            StreamingRules(min_support_count=2, window_pairs=4096)
        )
        twin.close()
        recovery_seconds = perf_counter() - t0

        segment = read_wal(
            os.path.join(state.state_dir, sorted(
                f for f in os.listdir(state.state_dir) if f.endswith(".wal")
            )[0])
        )
        return {
            "pairs": n_pairs,
            "fsync": fsync,
            "journal_seconds": journal_seconds,
            "journal_pairs_per_second": n_pairs / journal_seconds,
            "checkpoint_seconds": checkpoint_seconds,
            "recovery_seconds": recovery_seconds,
            "recovered_rules": info.n_rules,
            "wal_tail_records": len(segment.pairs),
            "records_replayed": info.records_replayed,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time checkpoint + recovery latency; emit BENCH_persist.json"
    )
    parser.add_argument(
        "--sizes",
        default="1000,10000,50000",
        help="comma-separated journal sizes in pairs",
    )
    parser.add_argument(
        "--fsync",
        default="never",
        choices=["always", "interval", "never"],
        help="fsync policy while journaling (default: never, pure CPU cost)",
    )
    args = parser.parse_args(argv)
    sizes = [int(s) for s in args.sizes.split(",") if s]

    results = [_time_scale(n, args.fsync) for n in sizes]
    print(f"{'pairs':>8} {'journal/s':>12} {'checkpoint':>11} {'recovery':>10} {'rules':>6}")
    for row in results:
        print(
            f"{row['pairs']:>8} {row['journal_pairs_per_second']:>12.0f}"
            f" {row['checkpoint_seconds'] * 1e3:>9.2f}ms"
            f" {row['recovery_seconds'] * 1e3:>8.2f}ms"
            f" {row['recovered_rules']:>6}"
        )
    path = emit_bench_json("persist", {"fsync": args.fsync, "scales": results})
    print(f"wrote {path}")
    # sanity gates, not perf assertions: every run must recover state
    for row in results:
        if row["recovered_rules"] <= 0 or row["records_replayed"] <= 0:
            print("FAIL: a scale recovered no state")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
