"""Pre-resolved metric handles for one live node.

:class:`NodeInstruments` binds every metric the live stack emits to one
``node`` label value at construction time, so hot paths (frame decode,
write drain, rule promotion) hold direct child references and never
touch the registry's family/label lookup machinery per event.

Two cost tiers, by design:

* **hot-path instruments** (`observe_decode`, `observe_rule_regeneration`,
  `drain_stalls`, `set_backoff`) are updated where the event happens;
  built on a :class:`~repro.obs.registry.NullRegistry` they dispatch to
  no-op children, and ``enabled`` is False so callers also skip the
  clock reads that exist only to feed them;
* **snapshot instruments** (every :class:`~repro.live.stats.NodeStats`
  mirror, queue depth, α/ρ, active rule count) are written by
  :meth:`sync` at *scrape* time only — steady-state traffic pays nothing
  for them.

Metric names follow Prometheus conventions: ``repro_`` prefix,
``_total`` suffix on counters, base-unit seconds for durations.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = ["NodeInstruments"]


class NodeInstruments:
    """Every live-node metric, bound to one ``node`` label value."""

    def __init__(self, registry: MetricsRegistry, node_id: int) -> None:
        self.registry = registry
        self.enabled = registry.enabled
        node = str(node_id)
        self._node = node

        # -- hot path: updated where the event happens -------------------
        self.decode_seconds = registry.histogram(
            "repro_decode_seconds",
            "Time spent turning received byte chunks into descriptors.",
            ("node",),
        ).labels(node)
        self.rule_regeneration_seconds = registry.histogram(
            "repro_rule_regeneration_seconds",
            "Time to fold one observed (query, reply) pair into the live "
            "rule counts.",
            ("node",),
        ).labels(node)
        self.drain_stalls = registry.counter(
            "repro_drain_stalls_total",
            "Write drains that exceeded the configured stall threshold "
            "(a slow-reading peer exerting backpressure).",
            ("node",),
        ).labels(node)
        self._backoff = registry.gauge(
            "repro_backoff_seconds",
            "Current reconnect backoff delay per supervised peer "
            "(0 = link up).",
            ("node", "peer"),
        )

        # -- scrape time: synced from NodeStats and the servent ----------
        self._frames = registry.counter(
            "repro_frames_total",
            "Complete descriptors handled from / accepted towards peers.",
            ("node", "direction"),
        )
        self._bytes = registry.counter(
            "repro_bytes_total",
            "Raw socket bytes read from / written to peers.",
            ("node", "direction"),
        )
        self._decisions = registry.counter(
            "repro_routing_decisions_total",
            "Transit and local queries forwarded along learned rules "
            "('rule') or flooded for lack of a covering rule ('flood').",
            ("node", "decision"),
        )
        self._simple_counters = {
            name: registry.counter(
                f"repro_{name}_total", help_text, ("node",)
            ).labels(node)
            for name, help_text in (
                ("frames_dropped", "Frames lost to queue overflow or a missing connection."),
                ("queries_shed", "Query forwards shed by the bounded send queue under overload."),
                ("protocol_errors", "Peers dropped for malformed bytes or broken handshakes."),
                ("connects", "Successful handshakes, inbound and outbound."),
                ("reconnects", "Successful outbound re-dials after a lost link."),
                ("dial_failures", "Failed outbound dial attempts."),
                ("pings_sent", "Keepalive Pings originated."),
                ("queries_issued", "Query descriptors originated locally."),
                ("hits_received", "QueryHits answering locally issued queries."),
                ("rule_regenerations", "Observed pairs that promoted a new routing rule."),
            )
        }
        self.coverage = registry.gauge(
            "repro_routing_coverage",
            "alpha: fraction of routing decisions covered by rules.",
            ("node",),
        ).labels(node)
        self.success = registry.gauge(
            "repro_routing_success",
            "rho: hits received per locally issued query.",
            ("node",),
        ).labels(node)
        self.rules_active = registry.gauge(
            "repro_rules_active",
            "Routing rules currently at or above the support threshold.",
            ("node",),
        ).labels(node)
        self.send_queue_frames = registry.gauge(
            "repro_send_queue_frames",
            "Frames waiting in send queues (the backpressure backlog).",
            ("node",),
        ).labels(node)
        self.connected_peers = registry.gauge(
            "repro_connected_peers",
            "Live peer connections.",
            ("node",),
        ).labels(node)

    # -- hot-path helpers --------------------------------------------------
    def observe_decode(self, seconds: float) -> None:
        self.decode_seconds.observe(seconds)

    def observe_rule_regeneration(self, seconds: float) -> None:
        self.rule_regeneration_seconds.observe(seconds)

    def set_backoff(self, peer: object, delay: float) -> None:
        self._backoff.labels(self._node, str(peer)).set(delay)

    # -- scrape-time sync --------------------------------------------------
    def sync(
        self,
        stats,
        *,
        pending_frames: int,
        connected_peers: int,
        n_rules: int | None,
    ) -> None:
        """Mirror one node's counters into the registry (scrape time)."""
        node = self._node
        self._frames.labels(node, "in").set_total(stats.frames_in)
        self._frames.labels(node, "out").set_total(stats.frames_out)
        self._bytes.labels(node, "in").set_total(stats.bytes_in)
        self._bytes.labels(node, "out").set_total(stats.bytes_out)
        self._decisions.labels(node, "rule").set_total(stats.queries_rule_routed)
        self._decisions.labels(node, "flood").set_total(stats.queries_flooded)
        for name, child in self._simple_counters.items():
            child.set_total(getattr(stats, name))
        decisions = stats.queries_rule_routed + stats.queries_flooded
        self.coverage.set(
            stats.queries_rule_routed / decisions if decisions else 0.0
        )
        self.success.set(
            stats.hits_received / stats.queries_issued
            if stats.queries_issued
            else 0.0
        )
        if n_rules is not None:
            self.rules_active.set(n_rules)
        self.send_queue_frames.set(pending_frames)
        self.connected_peers.set(connected_peers)
