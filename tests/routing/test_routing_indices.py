"""Tests for repro.routing.routing_indices."""

import numpy as np
import pytest

from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.routing_indices import (
    RoutingIndicesPolicy,
    build_routing_indices,
)
from tests.network.test_engine import StubOverlay, line_overlay
from repro.network.topology import Topology

SMALL = OverlayConfig(
    n_nodes=80, degree=4, n_categories=6, files_per_category=40, library_size=25
)


class TestBuildRoutingIndices:
    def test_line_counts(self):
        # 0 - 1 - 2 - 3, node 3 holds file 5 (category 0 in StubCatalog).
        overlay = line_overlay(4, holder=3)
        index = build_routing_indices(overlay, horizon=3)
        # From node 0 via neighbor 1, the library of node 3 is 3 hops away.
        assert index[0][1][0] == 1
        # From node 2 via neighbor 3, one hop.
        assert index[2][3][0] == 1
        # From node 1 via neighbor 0, nothing.
        assert index[1][0][0] == 0

    def test_horizon_truncates(self):
        overlay = line_overlay(5, holder=4)
        index = build_routing_indices(overlay, horizon=2)
        assert index[0][1][0] == 0  # 4 is 4 hops from 0: beyond horizon
        assert index[2][3][0] == 1

    def test_paths_avoid_source(self):
        # Y shape: content behind 0 must not count via the other branch.
        topo = Topology(4, [(0, 1), (1, 2), (1, 3)])
        overlay = StubOverlay(topo, {0: {5}})
        index = build_routing_indices(overlay, horizon=3)
        assert index[1][0][0] == 1
        assert index[1][2][0] == 0
        assert index[1][3][0] == 0

    def test_rejects_bad_horizon(self):
        overlay = line_overlay(3, holder=2)
        with pytest.raises(ValueError):
            build_routing_indices(overlay, horizon=0)


class TestRoutingIndicesPolicy:
    def test_select_prefers_richer_neighbor(self):
        overlay = line_overlay(4, holder=3)
        policy = RoutingIndicesPolicy(1, overlay, width=1)
        policy.install_index(
            {0: np.array([0, 0]), 2: np.array([1, 0])}
        )
        q_like = type("Q", (), {"category": 0})()
        assert policy.select(1, 0, q_like) == [2]

    def test_zero_index_keeps_query_moving(self):
        overlay = line_overlay(4, holder=3)
        policy = RoutingIndicesPolicy(1, overlay, width=1)
        policy.install_index({0: np.array([0, 0]), 2: np.array([0, 0])})
        q_like = type("Q", (), {"category": 0})()
        selected = policy.select(1, 0, q_like)
        assert len(selected) == 1

    def test_no_index_behaves_like_flooding(self):
        overlay = line_overlay(4, holder=3)
        policy = RoutingIndicesPolicy(1, overlay)
        q_like = type("Q", (), {"category": 0})()
        assert set(policy.select(1, None, q_like)) == {0, 2}

    def test_reset_drops_index(self):
        overlay = line_overlay(4, holder=3)
        policy = RoutingIndicesPolicy(1, overlay)
        policy.install_index({0: np.array([0, 0])})
        policy.reset()
        assert policy._index is None

    def test_validation(self):
        overlay = line_overlay(3, holder=2)
        with pytest.raises(ValueError):
            RoutingIndicesPolicy(0, overlay, width=0)

    def test_end_to_end_traffic_below_flooding(self):
        from repro.routing.flooding import FloodingPolicy

        flood_overlay = Overlay(SMALL, seed=5)
        flood_overlay.install_policies(lambda nid, ov: FloodingPolicy(nid, ov))
        flood = flood_overlay.run_workload(40)

        ri_overlay = Overlay(SMALL, seed=5)
        ri_overlay.install_policies(lambda nid, ov: RoutingIndicesPolicy(nid, ov))
        index = build_routing_indices(ri_overlay, horizon=3)
        for node_id in range(ri_overlay.n_nodes):
            ri_overlay.node(node_id).policy.install_index(index[node_id])
        guided = ri_overlay.run_workload(40)

        assert guided.messages_per_query < flood.messages_per_query
