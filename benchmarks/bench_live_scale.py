"""Saturation benchmark: a process-per-node cluster under open-loop load.

``python -m benchmarks.bench_live_scale`` boots a sharded cluster via
:class:`repro.scale.supervisor.ClusterSupervisor` (one ``LiveServent``
per worker *process*, real TCP between them), then steps offered RPS
through an open-loop ramp (:mod:`repro.scale.ramp`) and emits
``BENCH_live_scale.json``:

* one record per offered-RPS step — p50/p95/p99 latency, achieved rate,
  timeout/error rate, cluster-side shed/drop deltas, open-loop fidelity;
* the saturation summary — max sustainable QPS within the p99 bound and
  error budget, normalised per core;
* cross-process totals both ways: exact control-channel counters
  (``grand_totals``) and the external-observer view scraped from every
  worker's ``/metrics`` endpoint (``scrape_totals``).

The run **gates**: exit 1 unless the cluster sustains ``--floor-qps``
at ``--p99-bound`` seconds, so CI catches throughput regressions the
unit suite cannot see.  ``--report`` additionally writes the curve as a
Markdown table for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from benchmarks._emit import emit_bench_json

DEFAULT_TERMS = (
    "jazz", "blues", "rock", "folk", "metal", "opera",
    "tango", "salsa", "disco", "house", "swing", "punk",
)


def _parse_steps(text: str) -> list[float]:
    steps = [float(part) for part in text.split(",") if part.strip()]
    if not steps:
        raise argparse.ArgumentTypeError("need at least one RPS step")
    if any(s <= 0 for s in steps):
        raise argparse.ArgumentTypeError("RPS steps must be positive")
    return steps


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.bench_live_scale",
        description="Gated saturation benchmark over a multi-process cluster.",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes, one LiveServent each (default 2)",
    )
    parser.add_argument(
        "--rps", type=_parse_steps, default=_parse_steps("40,80,160,320"),
        help="comma-separated offered-RPS steps (default 40,80,160,320)",
    )
    parser.add_argument(
        "--step-duration", type=float, default=8.0,
        help="seconds of offered load per step (default 8)",
    )
    parser.add_argument(
        "--terms", type=lambda t: [s for s in t.split(",") if s],
        default=list(DEFAULT_TERMS),
        help="comma-separated query vocabulary (partitioned across workers)",
    )
    parser.add_argument(
        "--think", choices=("exponential", "lognormal", "fixed"),
        default="exponential", help="inter-arrival distribution",
    )
    parser.add_argument(
        "--timeout", type=float, default=2.0,
        help="per-request timeout in seconds (default 2)",
    )
    parser.add_argument(
        "--p99-bound", type=float, default=1.0,
        help="a step only sustains if p99 latency <= this (seconds)",
    )
    parser.add_argument(
        "--max-error-rate", type=float, default=0.05,
        help="a step only sustains if timeout+error rate <= this",
    )
    parser.add_argument(
        "--floor-qps", type=float, default=20.0,
        help="gate: fail unless max sustainable QPS >= this",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base arrival-process seed"
    )
    parser.add_argument(
        "--uvloop", action="store_true",
        help="ask workers (and this process) for uvloop; silent fallback",
    )
    parser.add_argument(
        "--state-root", default=None,
        help="root directory for per-node durable state (default: none)",
    )
    parser.add_argument(
        "--report", default=None,
        help="also write the saturation curve as Markdown to this path",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: 2 workers, low RPS, short steps",
    )
    return parser


def run(args: argparse.Namespace) -> dict:
    from repro.network.topology import Topology
    from repro.scale import (
        ClusterSupervisor,
        LoadConfig,
        install_uvloop,
        partitioned_specs,
        run_ramp,
        saturation_summary,
    )

    if args.quick:
        args.workers = 2
        args.rps = [10.0, 20.0, 40.0, 80.0]
        args.step_duration = min(args.step_duration, 4.0)
        args.floor_qps = min(args.floor_qps, 8.0)

    loop_impl = install_uvloop(args.uvloop)
    specs = partitioned_specs(
        args.workers,
        list(args.terms),
        uvloop=args.uvloop,
        state_dir=None,
    )
    if args.state_root:
        from dataclasses import replace

        specs = [
            replace(s, state_dir=os.path.join(
                args.state_root, f"node-{s.node_id:03d}"))
            for s in specs
        ]
    # Ring topology: every worker has peers, every query can reach every
    # shard within the TTL, and the edge count stays O(n).
    n = args.workers
    topology = Topology(n, [(i, (i + 1) % n) for i in range(n)]) if n > 1 \
        else Topology(1, [])

    base = LoadConfig(
        rps=1.0,
        duration=args.step_duration,
        think=args.think,
        request_timeout=args.timeout,
    )
    supervisor = ClusterSupervisor(specs, topology=topology)
    with supervisor:
        addresses = [(host, port) for _id, host, port in supervisor.addresses()]
        steps = run_ramp(
            addresses,
            list(args.terms),
            args.rps,
            step_duration=args.step_duration,
            seed=args.seed,
            load_config=base,
            cluster_totals=supervisor.totals,
        )
        summary = saturation_summary(
            steps,
            p99_bound=args.p99_bound,
            max_error_rate=args.max_error_rate,
            n_processes=supervisor.cpu_budget(),
        )
        worker_loops = sorted(
            {h.info.get("loop", "?") for h in supervisor.handles.values()}
        )
        scraped = supervisor.scrape_totals()
        grand = supervisor.grand_totals()
    return {
        "metadata": {
            "workers": args.workers,
            "cpu_count": os.cpu_count(),
            "loop": loop_impl,
            "worker_loops": worker_loops,
            "uvloop_requested": args.uvloop,
            "think": args.think,
            "step_duration_seconds": args.step_duration,
            "request_timeout_seconds": args.timeout,
            "terms": list(args.terms),
            "seed": args.seed,
        },
        "steps": steps,
        "summary": summary,
        "cluster_totals": grand,
        "scraped_totals": scraped,
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    payload = run(args)
    summary = payload["summary"]
    path = emit_bench_json("live_scale", payload)
    if args.report:
        from repro.scale import format_saturation_markdown

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(format_saturation_markdown(payload["steps"], summary))
        print(f"saturation report: {args.report}")
    print(f"bench json: {path}")
    print(json.dumps(summary, indent=2))
    if summary["max_sustainable_qps"] < args.floor_qps:
        print(
            f"GATE FAIL: max sustainable "
            f"{summary['max_sustainable_qps']:g} QPS "
            f"< floor {args.floor_qps:g} QPS "
            f"(p99 bound {args.p99_bound:g}s, "
            f"error budget {args.max_error_rate:.0%})",
            file=sys.stderr,
        )
        return 1
    print(
        f"GATE PASS: sustained {summary['max_sustainable_qps']:g} QPS "
        f"({summary['qps_per_core']:g} QPS/core) "
        f"within p99 <= {args.p99_bound:g}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
