"""Tests for the exact-mode store cache and the store-backed figure path."""

import numpy as np
import pytest

import repro.trace.cache as cache_module
from repro.trace.blocks import blocks_from_arrays
from repro.trace.cache import (
    cached_trace_store,
    default_trace_cache_dir,
    store_backed_blocks,
    trace_fingerprint,
)
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

CFG = MonitorTraceConfig(block_size=500)


class TestExactFingerprint:
    def test_length_mixed_stamp_differs(self):
        plain = trace_fingerprint(CFG, 3)
        exact = trace_fingerprint(CFG, 3, exact_n_pairs=1000)
        other = trace_fingerprint(CFG, 3, exact_n_pairs=1500)
        assert len({plain, exact, other}) == 3

    def test_deterministic(self):
        assert trace_fingerprint(CFG, 3, exact_n_pairs=10) == trace_fingerprint(
            MonitorTraceConfig(block_size=500), 3, exact_n_pairs=10
        )


class TestExactMode:
    def test_single_shot_identity(self, tmp_path):
        """Exact-mode stores hold the bit-identical single-shot trace."""
        n = 1600
        with cached_trace_store(
            tmp_path / "t.rptrace", n, config=CFG, seed=9, exact=True
        ) as reader:
            assert reader.n_pairs == n
            got = np.concatenate(
                [reader.columns(i)[0] for i in range(reader.n_blocks)]
            )
        arrays = MonitorTraceGenerator(CFG, seed=9).generate_pair_arrays(n)
        np.testing.assert_array_equal(got, arrays.source)

    def test_exact_hit(self, tmp_path):
        path = tmp_path / "t.rptrace"
        with cached_trace_store(path, 1000, config=CFG, seed=1, exact=True) as r:
            stamp = r.meta_fingerprint
        mtime = path.stat().st_mtime_ns
        with cached_trace_store(path, 1000, config=CFG, seed=1, exact=True) as r:
            assert r.meta_fingerprint == stamp
        assert path.stat().st_mtime_ns == mtime  # served, not rewritten

    def test_longer_store_is_a_miss(self, tmp_path):
        """A longer single-shot trace is not a superset of a shorter
        one, so exact mode must rebuild instead of slicing a prefix."""
        path = tmp_path / "t.rptrace"
        with cached_trace_store(path, 2000, config=CFG, seed=1, exact=True):
            pass
        with cached_trace_store(
            path, 1000, config=CFG, seed=1, exact=True
        ) as reader:
            assert reader.n_pairs == 1000
        arrays = MonitorTraceGenerator(CFG, seed=1).generate_pair_arrays(1000)
        with cached_trace_store(
            path, 1000, config=CFG, seed=1, exact=True
        ) as reader:
            got = np.concatenate(
                [reader.columns(i)[0] for i in range(reader.n_blocks)]
            )
        np.testing.assert_array_equal(got, arrays.source)

    def test_chunked_cache_never_hits_exact(self, tmp_path):
        """The two cache populations are disjoint by fingerprint."""
        path = tmp_path / "t.rptrace"
        with cached_trace_store(path, 1000, config=CFG, seed=1) as reader:
            chunked_stamp = reader.meta_fingerprint
        with cached_trace_store(
            path, 1000, config=CFG, seed=1, exact=True
        ) as reader:
            assert reader.meta_fingerprint != chunked_stamp


class TestStoreBackedBlocks:
    def test_matches_in_memory_blocks(self, tmp_path):
        n_blocks = 3
        n_pairs = n_blocks * CFG.block_size
        blocks = store_backed_blocks(
            n_pairs, config=CFG, seed=4, cache_dir=tmp_path
        )
        arrays = MonitorTraceGenerator(CFG, seed=4).generate_pair_arrays(n_pairs)
        reference = blocks_from_arrays(
            arrays.source, arrays.replier, block_size=CFG.block_size
        )
        assert len(blocks) == len(reference) == n_blocks
        for got, want in zip(blocks, reference):
            np.testing.assert_array_equal(got.sources, want.sources)
            np.testing.assert_array_equal(got.repliers, want.repliers)
            assert got.fingerprint() == want.fingerprint()
            np.testing.assert_array_equal(got.packed_keys(), want.packed_keys())
            assert got.index == want.index

    def test_reader_reused_across_calls(self, tmp_path):
        n_pairs = 2 * CFG.block_size
        store_backed_blocks(n_pairs, config=CFG, seed=5, cache_dir=tmp_path)
        before = dict(cache_module._OPEN_READERS)
        again = store_backed_blocks(n_pairs, config=CFG, seed=5, cache_dir=tmp_path)
        assert dict(cache_module._OPEN_READERS) == before
        assert len(again) == 2

    def test_negative_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            store_backed_blocks(-1, config=CFG, seed=0, cache_dir=tmp_path)

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "custom"))
        assert default_trace_cache_dir() == str(tmp_path / "custom")
        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR")
        assert default_trace_cache_dir().endswith("repro/traces")


class TestFigureWiring:
    def test_generate_trace_blocks_uses_store_cache(self, tmp_path, monkeypatch):
        from repro.experiments.figures import generate_trace_blocks
        from repro.parallel.provider import provide_pair_columns

        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_TRACE_STORE_CACHE", raising=False)
        cfg = MonitorTraceConfig()
        cold = generate_trace_blocks(2, seed=33, config=cfg)
        assert list(tmp_path.glob("*.rptrace"))  # store written
        warm = generate_trace_blocks(2, seed=33, config=cfg)
        src, rep = provide_pair_columns(cfg, 33, 2 * cfg.block_size)
        reference = blocks_from_arrays(src, rep, block_size=cfg.block_size)
        for got in (cold, warm):
            assert len(got) == 2
            for block, want in zip(got, reference):
                np.testing.assert_array_equal(block.sources, want.sources)
                np.testing.assert_array_equal(block.repliers, want.repliers)

    def test_kill_switch_disables_store_tier(self, tmp_path, monkeypatch):
        from repro.experiments.figures import generate_trace_blocks

        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_STORE_CACHE", "0")
        blocks = generate_trace_blocks(1, seed=34)
        assert len(blocks) == 1
        assert not list(tmp_path.glob("*.rptrace"))

    def test_unusable_cache_dir_falls_back_with_warning(
        self, tmp_path, monkeypatch
    ):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        monkeypatch.setenv(
            "REPRO_TRACE_CACHE_DIR", str(blocker / "child")
        )
        monkeypatch.delenv("REPRO_TRACE_STORE_CACHE", raising=False)
        from repro.experiments.figures import generate_trace_blocks

        with pytest.warns(UserWarning, match="trace-store cache unusable"):
            blocks = generate_trace_blocks(1, seed=35)
        assert len(blocks) == 1
