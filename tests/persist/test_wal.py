"""Tests for repro.persist.wal — framing, checksums, torn-tail handling."""

import os
import struct

import pytest

from repro.persist.wal import (
    FSYNC_POLICIES,
    RECORD_BYTES,
    WAL_MAGIC,
    WalError,
    WalWriter,
    read_wal,
    wal_header,
)

PAIRS = [(0, 3), (1, 2), (5, 0), (-1, 7), (2**40, -(2**40))]


def write_segment(path, pairs, *, fsync="never"):
    writer = WalWriter(str(path), fsync=fsync)
    for source, replier in pairs:
        writer.append(source, replier)
    writer.close()
    return writer


class TestWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "seg.wal"
        write_segment(path, PAIRS)
        result = read_wal(str(path))
        assert result.pairs == PAIRS
        assert result.clean
        assert result.good_offset == os.path.getsize(path)

    def test_counters(self, tmp_path):
        path = tmp_path / "seg.wal"
        writer = write_segment(path, PAIRS)
        assert writer.records == len(PAIRS)
        assert writer.bytes_written == len(WAL_MAGIC) + len(PAIRS) * RECORD_BYTES
        assert writer.bytes_written == os.path.getsize(path)

    def test_reopen_appends_without_second_magic(self, tmp_path):
        path = tmp_path / "seg.wal"
        write_segment(path, PAIRS[:2])
        write_segment(path, PAIRS[2:])
        result = read_wal(str(path))
        assert result.pairs == PAIRS
        assert result.clean

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_every_fsync_policy_is_readable(self, tmp_path, policy):
        path = tmp_path / f"{policy}.wal"
        write_segment(path, PAIRS, fsync=policy)
        assert read_wal(str(path)).pairs == PAIRS

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WalWriter(str(tmp_path / "x.wal"), fsync="sometimes")

    def test_nonpositive_fsync_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_interval"):
            WalWriter(str(tmp_path / "x.wal"), fsync_interval=0)

    def test_close_is_idempotent(self, tmp_path):
        writer = WalWriter(str(tmp_path / "x.wal"))
        writer.close()
        writer.close()
        assert writer.closed


class TestTornAndCorrupt:
    @pytest.mark.parametrize("cut", [1, 8, RECORD_BYTES - 1])
    def test_torn_final_record_yields_prefix(self, tmp_path, cut):
        path = tmp_path / "seg.wal"
        write_segment(path, PAIRS)
        full = os.path.getsize(path)
        os.truncate(path, full - cut)
        result = read_wal(str(path))
        assert result.pairs == PAIRS[:-1]
        assert not result.clean
        assert result.good_offset == full - RECORD_BYTES

    def test_corrupt_checksum_stops_replay(self, tmp_path):
        path = tmp_path / "seg.wal"
        write_segment(path, PAIRS)
        data = bytearray(path.read_bytes())
        # flip a payload byte of the third record
        offset = len(WAL_MAGIC) + 2 * RECORD_BYTES + 8 + 1
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        result = read_wal(str(path))
        assert result.pairs == PAIRS[:2]
        assert not result.clean
        assert result.good_offset == len(WAL_MAGIC) + 2 * RECORD_BYTES

    def test_absurd_length_field_stops_replay(self, tmp_path):
        path = tmp_path / "seg.wal"
        write_segment(path, PAIRS[:1])
        with open(path, "ab") as fh:
            fh.write(struct.pack("<II", 2**31, 0))
        result = read_wal(str(path))
        assert result.pairs == PAIRS[:1]
        assert not result.clean

    def test_segment_torn_during_creation(self, tmp_path):
        path = tmp_path / "seg.wal"
        path.write_bytes(WAL_MAGIC[:3])
        result = read_wal(str(path))
        assert result.pairs == []
        assert result.good_offset == 0
        assert not result.clean

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "not.wal"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 32)
        with pytest.raises(WalError, match="bad magic"):
            read_wal(str(path))

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "future.wal"
        path.write_bytes(b"RPWL" + struct.pack("<HH", 99, 0))
        with pytest.raises(WalError, match="version"):
            read_wal(str(path))


class TestHeader:
    def test_wal_header_summary(self, tmp_path):
        path = tmp_path / "seg.wal"
        write_segment(path, PAIRS)
        header = wal_header(str(path))
        assert header["records"] == len(PAIRS)
        assert header["clean"] is True
        assert header["bytes"] == header["good_bytes"] == os.path.getsize(path)

    def test_wal_header_reports_torn_tail(self, tmp_path):
        path = tmp_path / "seg.wal"
        write_segment(path, PAIRS)
        os.truncate(path, os.path.getsize(path) - 3)
        header = wal_header(str(path))
        assert header["records"] == len(PAIRS) - 1
        assert header["clean"] is False
        assert header["good_bytes"] < header["bytes"]
