"""Interest-based shortcuts (Sripanidkulchai et al., the paper's ref [7]).

Each peer keeps an ordered list of *shortcuts* — peers that satisfied its
past queries.  A new query first probes the shortcuts directly (cheap,
one message each); only if none of them has the content does the peer
fall back to flooding, and the flood's providers are added as new
shortcuts.  Interest-based locality makes the shortcut list likely to
keep working: a peer that shared one file in my interests probably shares
others.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.metrics.traffic import QueryOutcome
from repro.network.engine import QueryEngine
from repro.network.messages import Query
from repro.routing.base import RoutingPolicy, dispatch_select

__all__ = ["InterestShortcutsPolicy"]


class InterestShortcutsPolicy(RoutingPolicy):
    """Probe learned shortcuts first, flood on a miss."""

    name = "shortcuts"

    def __init__(self, node_id: int, overlay, *, capacity: int = 10) -> None:
        super().__init__(node_id, overlay)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # provider id -> None, most-recently-successful last.
        self._shortcuts: OrderedDict[int, None] = OrderedDict()

    # -- transit behaviour: plain flooding ------------------------------
    def select(self, node: int, upstream: int | None, query: Query) -> Sequence[int]:
        return self.overlay.topology.neighbors(node)

    # -- origin driver ----------------------------------------------------
    def route_query(self, engine: QueryEngine, query: Query) -> QueryOutcome:
        # Most-recently-successful shortcuts are probed first; shortcuts
        # pointing at churned peers are still probed and simply miss.
        shortcuts = list(reversed(self._shortcuts))
        probe_messages = 0
        if shortcuts:
            hits, probe_messages = engine.probe(query, shortcuts)
            if hits:
                self._touch(hits[0])
                return QueryOutcome(
                    query_id=query.guid,
                    messages=probe_messages,
                    hits=len(hits),
                    first_hit_hops=1,
                    duplicates=0,
                )
        flood = engine.broadcast(query, dispatch_select(self.overlay))
        return QueryOutcome(
            query_id=query.guid,
            messages=flood.messages + probe_messages,
            hits=flood.hits,
            first_hit_hops=flood.first_hit_hops,
            duplicates=flood.duplicates,
        )

    # -- learning ---------------------------------------------------------
    def on_reply(self, *, node_id, upstream, downstream, query, provider) -> None:
        if query.origin == self.node_id and node_id == self.node_id:
            self._touch(provider)

    def _touch(self, provider: int) -> None:
        if provider in self._shortcuts:
            self._shortcuts.move_to_end(provider)
        else:
            self._shortcuts[provider] = None
            while len(self._shortcuts) > self.capacity:
                self._shortcuts.popitem(last=False)

    def reset(self) -> None:
        self._shortcuts.clear()

    @property
    def shortcut_list(self) -> list[int]:
        """Current shortcuts, most recent last (exposed for tests)."""
        return list(self._shortcuts)
