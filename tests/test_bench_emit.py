"""Tests for the shared benchmark emit helpers (benchmarks/_emit.py)."""

import json

from benchmarks._emit import emit_bench_json, peak_rss


class TestPeakRss:
    def test_reports_positive_bytes(self):
        rss = peak_rss()
        assert isinstance(rss, int)
        # A running CPython interpreter is at least a few MB resident.
        assert rss > 4 * 1024 * 1024

    def test_monotonic_non_decreasing(self):
        before = peak_rss()
        ballast = bytearray(8 * 1024 * 1024)  # push the high-water mark
        ballast[::4096] = b"x" * len(ballast[::4096])
        assert peak_rss() >= before


class TestEmitBenchJson:
    def test_payload_gets_peak_rss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        path = emit_bench_json("unit", {"metric": 1})
        payload = json.loads(open(path).read())
        assert payload["metric"] == 1
        assert payload["peak_rss_bytes"] > 0

    def test_producer_supplied_rss_kept(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        path = emit_bench_json("unit", {"peak_rss_bytes": 123})
        assert json.loads(open(path).read())["peak_rss_bytes"] == 123
