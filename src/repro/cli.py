"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every registered experiment with its paper reference.
``run <experiment-id> [...]``
    Regenerate one or more paper artifacts and print their
    paper-vs-measured tables (plus ASCII charts for figure experiments).
``all``
    Run the complete registry in order.
``trace``
    Print the descriptive profile of a freshly generated trace prefix.

Use ``--seed`` to vary the seed and ``--full`` for the paper's full
365-block horizon (equivalent to ``REPRO_FULL_SCALE=1``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Adaptively Routing P2P Queries Using "
            "Association Analysis' (ICPP 2006)."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at the paper's full scale (365 blocks; slow)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiment_ids", nargs="+", metavar="EXPERIMENT")
    run.add_argument(
        "--no-chart", action="store_true", help="suppress ASCII series charts"
    )
    run.add_argument(
        "--seeds",
        type=int,
        default=0,
        metavar="N",
        help="aggregate over N seeds instead of one run (mean ± std per row)",
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also export each experiment's series as DIR/<id>.csv",
    )
    all_cmd = sub.add_parser("all", help="run every registered experiment")
    all_cmd.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write a markdown reproduction report to PATH",
    )
    trace = sub.add_parser("trace", help="profile a generated trace prefix")
    trace.add_argument("--blocks", type=int, default=5, help="blocks to profile")
    return parser


def _print_result(result, *, chart: bool = True, stream=None) -> None:
    stream = stream or sys.stdout
    print(result.report(), file=stream)
    if chart and result.series:
        from repro.metrics.ascii_chart import line_chart

        plottable = {
            name: values
            for name, values in result.series.items()
            if name in ("coverage", "success") and values
        }
        if plottable:
            print(file=stream)
            print(line_chart(plottable, height=10), file=stream)
    print(file=stream)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.full:
        os.environ["REPRO_FULL_SCALE"] = "1"

    from repro.experiments import EXPERIMENTS, run_experiment

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for experiment_id, (title, _fn) in EXPERIMENTS.items():
            print(f"{experiment_id.ljust(width)}  {title}")
        return 0

    if args.command in ("run", "all"):
        ids = list(EXPERIMENTS) if args.command == "all" else args.experiment_ids
        chart = not getattr(args, "no_chart", False)
        failures = 0
        results = []
        for experiment_id in ids:
            if experiment_id not in EXPERIMENTS:
                known = ", ".join(EXPERIMENTS)
                print(f"unknown experiment {experiment_id!r}; known: {known}")
                return 2
            t0 = time.time()
            n_seeds = getattr(args, "seeds", 0)
            if n_seeds and n_seeds > 1:
                from repro.experiments.multi import run_seed_sweep

                base = args.seed if args.seed is not None else 20060814
                sweep = run_seed_sweep(
                    experiment_id, seeds=range(base, base + n_seeds)
                )
                print(sweep.report())
                status = "OK" if sweep.all_in_band else "OUT OF BAND"
                print(f"[{experiment_id}] {status} in {time.time() - t0:.1f}s\n")
                if not sweep.all_in_band:
                    failures += 1
                continue
            kwargs = {} if args.seed is None else {"seed": args.seed}
            result = run_experiment(experiment_id, **kwargs)
            results.append(result)
            csv_dir = getattr(args, "csv", None)
            if csv_dir and result.series:
                os.makedirs(csv_dir, exist_ok=True)
                csv_path = os.path.join(csv_dir, f"{experiment_id}.csv")
                result.save_series(csv_path)
                print(f"series written to {csv_path}")
            _print_result(result, chart=chart)
            status = "OK" if result.all_within_band else "OUT OF BAND"
            print(f"[{experiment_id}] {status} in {time.time() - t0:.1f}s\n")
            if not result.all_within_band:
                failures += 1
        markdown_path = getattr(args, "markdown", None)
        if markdown_path:
            from repro.experiments.report import build_markdown_report

            with open(markdown_path, "w", encoding="utf-8") as fh:
                fh.write(build_markdown_report(results))
            print(f"markdown report written to {markdown_path}")
        return 1 if failures else 0

    if args.command == "trace":
        from repro.trace.analysis import coverage_ceiling, profile_block, source_turnover
        from repro.trace.blocks import blocks_from_arrays
        from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

        config = MonitorTraceConfig()
        seed = args.seed if args.seed is not None else 20060814
        generator = MonitorTraceGenerator(config, seed=seed)
        arrays = generator.generate_pair_arrays(args.blocks * config.block_size)
        blocks = blocks_from_arrays(
            arrays.source, arrays.replier, block_size=config.block_size
        )
        for block in blocks:
            print(f"block {block.index}: {profile_block(block)}")
        for lag in range(1, min(len(blocks), 4)):
            turnover = source_turnover(blocks[0], blocks[lag])
            print(f"volume from sources unseen in block 0, lag {lag}: {turnover:.3f}")
        print(f"in-block coverage ceiling (threshold 10): {coverage_ceiling(blocks[0]):.3f}")
        return 0

    return 2  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
