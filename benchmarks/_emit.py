"""Machine-readable benchmark output.

Every bench module's timings land in a ``BENCH_<name>.json`` so CI can
upload them as artifacts (and trend them) without scraping terminal
text.  Files are written to ``$BENCH_OUTPUT_DIR`` when set, else the
current directory.

Two producers share this helper:

* ``benchmarks/conftest.py`` groups the pytest-benchmark results by
  bench module after a run and emits one file per module
  (``bench_mining.py`` -> ``BENCH_mining.json``).
* ``python -m benchmarks.bench_mining`` (the serial-vs-parallel replay
  gate) emits ``BENCH_mining_gate.json`` directly.
"""

from __future__ import annotations

import json
import os
import sys

__all__ = ["bench_output_dir", "emit_bench_json", "peak_rss"]


def peak_rss() -> int:
    """This process's peak resident set size, in bytes.

    ``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux and bytes
    on darwin; when ``resource`` is unavailable (or reports zero) the
    Linux ``/proc/self/status`` ``VmHWM`` line is the fallback.  Returns
    0 if neither source is readable.
    """
    maxrss = 0
    try:
        import resource

        maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform != "darwin":
            maxrss *= 1024
    except (ImportError, ValueError, OSError):
        maxrss = 0
    if maxrss:
        return int(maxrss)
    try:
        with open("/proc/self/status", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return 0


def bench_output_dir() -> str:
    """Directory BENCH_*.json files are written to."""
    return os.environ.get("BENCH_OUTPUT_DIR") or os.getcwd()


def emit_bench_json(name: str, payload: dict) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` must be JSON-serialisable apart from stray objects, which
    are stringified rather than rejected — a bench run should never die
    on its own reporting.  Every payload gets a ``peak_rss_bytes`` field
    (the emitting process's high-water mark) unless the producer already
    supplied one.
    """
    payload = dict(payload)
    payload.setdefault("peak_rss_bytes", peak_rss())
    path = os.path.join(bench_output_dir(), f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"name": name, **payload}, fh, indent=2, default=str)
        fh.write("\n")
    return path
