"""Gnutella 0.4 wire protocol: message framing and reply routing.

The paper's system lives inside real Gnutella nodes: its trace fields are
Gnutella Query/QueryHit descriptor fields, its GUID-duplication artifact
comes from the descriptor header, and its anonymity argument rests on how
QueryHits are routed back by GUID rather than by source address.  This
module implements that substrate faithfully enough to round-trip:

* :class:`DescriptorHeader` — the 23-byte Gnutella descriptor header
  (16-byte GUID, payload type, TTL, hops, payload length);
* :class:`PingMessage` / :class:`PongMessage` /
  :class:`QueryMessage` / :class:`QueryHitMessage` — payload encodings
  (simplified QueryHit result set: one result per message);
* :func:`encode_message` / :func:`decode_message` — bytes round-trip;
* :class:`ReplyRoutingTable` — the per-node GUID -> upstream-neighbor
  map real servents use to route Pongs/QueryHits backwards, with the
  bounded capacity real implementations used (old entries evicted FIFO).

The simulators in :mod:`repro.network` exchange descriptor objects rather
than bytes (encoding adds nothing to the algorithms under study), but the
codec is exercised end-to-end in the test suite and by
``examples/trace_pipeline.py``-style tooling that wants wire-faithful
traces.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass

__all__ = [
    "PAYLOAD_PING",
    "PAYLOAD_PONG",
    "PAYLOAD_QUERY",
    "PAYLOAD_QUERY_HIT",
    "DescriptorHeader",
    "PingMessage",
    "PongMessage",
    "ProtocolError",
    "QueryMessage",
    "QueryHitMessage",
    "ReplyRoutingTable",
    "decode_message",
    "encode_message",
]


class ProtocolError(ValueError):
    """Malformed bytes received from a peer.

    Decode paths raise this (never bare ``struct.error`` or
    ``UnicodeDecodeError``) so network code can distinguish "the remote
    peer sent garbage — drop it" from local programming errors, while
    existing callers that catch ``ValueError`` keep working.
    """

PAYLOAD_PING = 0x00
PAYLOAD_PONG = 0x01
PAYLOAD_QUERY = 0x80
PAYLOAD_QUERY_HIT = 0x81

_HEADER = struct.Struct("<16sBBBI")  # guid, type, ttl, hops, payload length


@dataclass(frozen=True)
class DescriptorHeader:
    """The 23-byte header prefixed to every Gnutella descriptor."""

    guid: int  # 128-bit
    payload_type: int
    ttl: int
    hops: int
    payload_length: int

    def __post_init__(self) -> None:
        if not 0 <= self.guid < (1 << 128):
            raise ValueError("guid must fit in 128 bits")
        if self.payload_type not in (
            PAYLOAD_PING,
            PAYLOAD_PONG,
            PAYLOAD_QUERY,
            PAYLOAD_QUERY_HIT,
        ):
            raise ValueError(f"unknown payload type {self.payload_type:#x}")
        if not 0 <= self.ttl <= 255 or not 0 <= self.hops <= 255:
            raise ValueError("ttl and hops must be bytes")
        if self.payload_length < 0:
            raise ValueError("payload_length must be non-negative")

    def encode(self) -> bytes:
        return _HEADER.pack(
            self.guid.to_bytes(16, "little"),
            self.payload_type,
            self.ttl,
            self.hops,
            self.payload_length,
        )

    @classmethod
    def decode(cls, data: bytes) -> "DescriptorHeader":
        if len(data) < _HEADER.size:
            raise ProtocolError("truncated descriptor header")
        guid_bytes, ptype, ttl, hops, length = _HEADER.unpack_from(data)
        try:
            return cls(
                guid=int.from_bytes(guid_bytes, "little"),
                payload_type=ptype,
                ttl=ttl,
                hops=hops,
                payload_length=length,
            )
        except ProtocolError:
            raise
        except ValueError as exc:
            # Field validation failing on wire input (e.g. an unknown
            # payload type byte) is the peer's fault, not ours.
            raise ProtocolError(str(exc)) from exc

    def aged(self) -> "DescriptorHeader":
        """The header after one forwarding hop (TTL-1, hops+1)."""
        if self.ttl < 1:
            raise ValueError("cannot forward a descriptor with TTL 0")
        return DescriptorHeader(
            guid=self.guid,
            payload_type=self.payload_type,
            ttl=self.ttl - 1,
            hops=self.hops + 1,
            payload_length=self.payload_length,
        )


@dataclass(frozen=True)
class PingMessage:
    """Ping: no payload — pure neighbor discovery."""

    payload_type = PAYLOAD_PING

    def encode_payload(self) -> bytes:
        return b""

    @classmethod
    def decode_payload(cls, data: bytes) -> "PingMessage":
        if data:
            raise ProtocolError("ping carries no payload")
        return cls()


_PONG = struct.Struct("<H4sII")


@dataclass(frozen=True)
class PongMessage:
    """Pong: port, IPv4, shared-file count and total kilobytes."""

    payload_type = PAYLOAD_PONG

    port: int
    ip: str
    n_files: int
    n_kilobytes: int

    def encode_payload(self) -> bytes:
        return _PONG.pack(
            self.port, _pack_ip(self.ip), self.n_files, self.n_kilobytes
        )

    @classmethod
    def decode_payload(cls, data: bytes) -> "PongMessage":
        if len(data) != _PONG.size:
            raise ProtocolError("bad pong payload length")
        port, ip_bytes, n_files, n_kb = _PONG.unpack(data)
        return cls(port=port, ip=_unpack_ip(ip_bytes), n_files=n_files, n_kilobytes=n_kb)


@dataclass(frozen=True)
class QueryMessage:
    """Query: minimum speed + NUL-terminated search criteria string."""

    payload_type = PAYLOAD_QUERY

    min_speed: int
    search: str

    def encode_payload(self) -> bytes:
        text = self.search.encode("utf-8")
        if b"\x00" in text:
            raise ValueError("search string may not contain NUL")
        return struct.pack("<H", self.min_speed) + text + b"\x00"

    @classmethod
    def decode_payload(cls, data: bytes) -> "QueryMessage":
        if len(data) < 3 or data[-1] != 0:
            raise ProtocolError("bad query payload")
        text = data[2:-1]
        if b"\x00" in text:
            raise ProtocolError("NUL inside search string")
        (min_speed,) = struct.unpack_from("<H", data)
        try:
            search = text.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("search string is not valid UTF-8") from exc
        return cls(min_speed=min_speed, search=search)


_QUERY_HIT_FIXED = struct.Struct("<BH4sI")
_RESULT_FIXED = struct.Struct("<II")


@dataclass(frozen=True)
class QueryHitMessage:
    """QueryHit (single-result simplification) + responding servent id."""

    payload_type = PAYLOAD_QUERY_HIT

    port: int
    ip: str
    speed: int
    file_index: int
    file_size: int
    file_name: str
    servent_guid: int

    def encode_payload(self) -> bytes:
        name = self.file_name.encode("utf-8")
        if b"\x00" in name:
            raise ValueError("file name may not contain NUL")
        return (
            _QUERY_HIT_FIXED.pack(1, self.port, _pack_ip(self.ip), self.speed)
            + _RESULT_FIXED.pack(self.file_index, self.file_size)
            + name
            + b"\x00\x00"  # double-NUL terminated result record
            + self.servent_guid.to_bytes(16, "little")
        )

    @classmethod
    def decode_payload(cls, data: bytes) -> "QueryHitMessage":
        min_len = _QUERY_HIT_FIXED.size + _RESULT_FIXED.size + 2 + 16
        if len(data) < min_len:
            raise ProtocolError("truncated query hit")
        n_hits, port, ip_bytes, speed = _QUERY_HIT_FIXED.unpack_from(data)
        if n_hits != 1:
            raise ProtocolError("this codec encodes exactly one result per hit")
        offset = _QUERY_HIT_FIXED.size
        file_index, file_size = _RESULT_FIXED.unpack_from(data, offset)
        offset += _RESULT_FIXED.size
        try:
            end = data.index(b"\x00\x00", offset, len(data) - 16)
            name = data[offset:end].decode("utf-8")
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError("malformed query-hit result record") from exc
        if end + 2 + 16 != len(data):
            raise ProtocolError("trailing bytes after query-hit result record")
        guid = int.from_bytes(data[-16:], "little")
        return cls(
            port=port,
            ip=_unpack_ip(ip_bytes),
            speed=speed,
            file_index=file_index,
            file_size=file_size,
            file_name=name,
            servent_guid=guid,
        )


_PAYLOAD_CLASSES = {
    PAYLOAD_PING: PingMessage,
    PAYLOAD_PONG: PongMessage,
    PAYLOAD_QUERY: QueryMessage,
    PAYLOAD_QUERY_HIT: QueryHitMessage,
}


def encode_message(guid: int, ttl: int, hops: int, payload) -> bytes:
    """Frame a payload object into header + payload bytes."""
    body = payload.encode_payload()
    header = DescriptorHeader(
        guid=guid,
        payload_type=payload.payload_type,
        ttl=ttl,
        hops=hops,
        payload_length=len(body),
    )
    return header.encode() + body


def decode_message(data: bytes) -> tuple[DescriptorHeader, object]:
    """Parse header + payload; raises :class:`ProtocolError` on malformed input."""
    header = DescriptorHeader.decode(data)
    body = data[_HEADER.size :]
    if len(body) != header.payload_length:
        raise ProtocolError(
            f"payload length mismatch: header says {header.payload_length}, "
            f"got {len(body)}"
        )
    cls = _PAYLOAD_CLASSES[header.payload_type]
    try:
        return header, cls.decode_payload(body)
    except ProtocolError:
        raise
    except (ValueError, struct.error) as exc:
        raise ProtocolError(str(exc)) from exc


def _pack_ip(ip: str) -> bytes:
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {ip!r}")
    try:
        octets = [int(p) for p in parts]
    except ValueError:
        raise ValueError(f"not an IPv4 address: {ip!r}") from None
    if any(not 0 <= o <= 255 for o in octets):
        raise ValueError(f"not an IPv4 address: {ip!r}")
    return bytes(octets)


def _unpack_ip(data: bytes) -> str:
    return ".".join(str(b) for b in data)


class ReplyRoutingTable:
    """GUID -> upstream neighbor map for backward reply routing.

    When a servent forwards a Query it remembers which connection it came
    from; a QueryHit bearing the same GUID is sent back through exactly
    that connection.  This is why the paper's method preserves requester
    anonymity (no hop ever learns the origin address) and why its
    monitor node could pair queries with replies by GUID.  Capacity is
    bounded (real servents kept minutes of state): entries are evicted
    in insertion order, except that routing a reply refreshes its GUID's
    entry — a query with replies still in flight is live state and must
    not be evicted ahead of queries nobody answered.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._routes: OrderedDict[int, int] = OrderedDict()

    def record(self, guid: int, upstream: int) -> bool:
        """Remember a forwarded query; False if the GUID was already seen.

        A duplicate GUID means the query reached this node along a second
        path (or a buggy client reused a GUID — the paper's §IV artifact):
        real servents drop the duplicate and keep the original route.
        """
        if guid in self._routes:
            return False
        self._routes[guid] = upstream
        while len(self._routes) > self.capacity:
            self._routes.popitem(last=False)
        return True

    def route_for(self, guid: int) -> int | None:
        """The upstream connection to forward a reply through.

        Looking a route up refreshes its eviction slot: more replies for
        the same GUID are likely en route, so the entry must outlive
        routes that never saw a reply.
        """
        upstream = self._routes.get(guid)
        if upstream is not None:
            self._routes.move_to_end(guid)
        return upstream

    def __len__(self) -> int:
        return len(self._routes)
