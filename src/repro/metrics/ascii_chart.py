"""Text rendering of coverage/success series (figure stand-ins).

The paper's Figures 1, 3 and 4 are time-series plots of coverage and
success.  This module renders the regenerated series as terminal-friendly
charts so experiment reports can *show* the figure shapes — the Static
collapse, the Lazy sawtooth, the Adaptive band — without a plotting
dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["sparkline", "line_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, lo: float = 0.0, hi: float = 1.0) -> str:
    """One-line sparkline of a series scaled to [lo, hi]."""
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    out = []
    span = hi - lo
    top = len(_SPARK_LEVELS) - 1
    for v in values:
        frac = (float(v) - lo) / span
        frac = min(max(frac, 0.0), 1.0)
        out.append(_SPARK_LEVELS[round(frac * top)])
    return "".join(out)


def line_chart(
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 10,
    lo: float = 0.0,
    hi: float = 1.0,
    markers: str = "*o+x#@",
) -> str:
    """Multi-series ASCII chart with a y-axis, one column per x index.

    Later series overwrite earlier ones where they collide (the paper's
    figures overlay coverage and success the same way).
    """
    if height < 2:
        raise ValueError("height must be >= 2")
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    if not series:
        raise ValueError("need at least one series")
    width = max(len(s) for s in series.values())
    if width == 0:
        raise ValueError("series are empty")

    grid = [[" "] * width for _ in range(height)]
    for (name, values), marker in zip(series.items(), markers):
        for x, v in enumerate(values):
            frac = (float(v) - lo) / (hi - lo)
            frac = min(max(frac, 0.0), 1.0)
            y = round(frac * (height - 1))
            grid[height - 1 - y][x] = marker

    lines = []
    for row_index, row in enumerate(grid):
        level = hi - (hi - lo) * row_index / (height - 1)
        lines.append(f"{level:5.2f} |" + "".join(row))
    lines.append(" " * 6 + "+" + "-" * width)
    legend = "  ".join(
        f"{marker}={name}" for (name, _s), marker in zip(series.items(), markers)
    )
    lines.append(" " * 7 + legend)
    return "\n".join(lines)
