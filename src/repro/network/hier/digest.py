"""Compact, versioned rule digests exchanged between super-peers.

A super-peer's mined rule table can be large; its *digest* is the
top-k rules per category, each reduced to four integers: the category
(the rule antecedent), the consequent super-peer that answered, the
support count, and the total number of observations behind the table
(so receivers can recompute confidence = support / total without
shipping floats).

Digests are versioned by ``(origin, epoch)``.  A super-peer bumps its
epoch every time it publishes, and receivers keep only the newest
epoch per origin — so digest exchange is idempotent and gossip-safe:
duplicates, reordering, and stale retransmits all converge to the same
table.  When a super-peer dies, receivers *invalidate* its origin,
dropping every rule it contributed.

Determinism contract (property-tested): merging any permutation of the
same digest set into :class:`MergedRuleTable` yields a bit-identical
canonical encoding, hence an identical blake2b fingerprint.  This is
what makes the exchange safe to run over an unordered overlay.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass

__all__ = [
    "DigestEntry",
    "DigestError",
    "MergedRuleTable",
    "RuleDigest",
    "decode_digest",
]

_MAGIC = b"RDG1"
# origin u32 | epoch u32 | total u64 | n_entries u32
_HEADER = struct.Struct("<4sIIQI")
# category u32 | consequent u32 | support u64
_ENTRY = struct.Struct("<IIQ")
_CRC = struct.Struct("<I")


class DigestError(ValueError):
    """A digest failed to decode (truncated, bad magic, or bad CRC)."""


@dataclass(frozen=True, order=True)
class DigestEntry:
    """One rule in a digest: {category} -> {consequent super-peer}."""

    category: int
    consequent: int
    support: int

    def confidence(self, total: int) -> float:
        return self.support / total if total else 0.0


@dataclass(frozen=True)
class RuleDigest:
    """One super-peer's published rule summary at one epoch.

    ``entries`` are stored in canonical (category, consequent, support)
    order regardless of the order the constructor received them, so two
    digests with the same logical content encode identically.
    """

    origin: int
    epoch: int
    total: int  # observations behind the table; confidence denominator
    entries: tuple[DigestEntry, ...]

    def __init__(
        self,
        origin: int,
        epoch: int,
        total: int,
        entries: tuple[DigestEntry, ...] | list[DigestEntry],
    ) -> None:
        object.__setattr__(self, "origin", int(origin))
        object.__setattr__(self, "epoch", int(epoch))
        object.__setattr__(self, "total", int(total))
        object.__setattr__(self, "entries", tuple(sorted(entries)))

    def encode(self) -> bytes:
        """Binary wire form: header + entries + CRC32 trailer."""
        body = _HEADER.pack(
            _MAGIC, self.origin, self.epoch, self.total, len(self.entries)
        ) + b"".join(
            _ENTRY.pack(e.category, e.consequent, e.support) for e in self.entries
        )
        return body + _CRC.pack(zlib.crc32(body))

    def fingerprint(self) -> bytes:
        return hashlib.blake2b(self.encode(), digest_size=8).digest()


def decode_digest(data: bytes) -> RuleDigest:
    """Inverse of :meth:`RuleDigest.encode`; raises :class:`DigestError`."""
    if len(data) < _HEADER.size + _CRC.size:
        raise DigestError("digest truncated")
    body, crc_bytes = data[: -_CRC.size], data[-_CRC.size :]
    (expected,) = _CRC.unpack(crc_bytes)
    if zlib.crc32(body) != expected:
        raise DigestError("digest CRC mismatch")
    magic, origin, epoch, total, n_entries = _HEADER.unpack_from(body)
    if magic != _MAGIC:
        raise DigestError(f"bad digest magic {magic!r}")
    if len(body) != _HEADER.size + n_entries * _ENTRY.size:
        raise DigestError("digest entry count does not match payload size")
    entries = [
        DigestEntry(*_ENTRY.unpack_from(body, _HEADER.size + i * _ENTRY.size))
        for i in range(n_entries)
    ]
    return RuleDigest(origin, epoch, total, entries)


class MergedRuleTable:
    """A super-peer's view of its neighbors' published rules.

    Keeps at most one digest per origin (the highest epoch wins;
    equal-epoch republishes are idempotent because digests are
    canonical).  Lookups aggregate across origins: for a category, the
    candidate consequents ranked by total support, ties broken by the
    smaller consequent id — a deterministic function of table content
    alone, never of arrival order.
    """

    def __init__(self) -> None:
        self._by_origin: dict[int, RuleDigest] = {}

    def __len__(self) -> int:
        return len(self._by_origin)

    def merge(self, digest: RuleDigest) -> bool:
        """Absorb one digest; returns True when the table changed.

        Keeps the maximum per origin by ``(epoch, canonical encoding)``.
        The encoding tie-break matters only for equal-epoch digests with
        *different* content — a publisher that forgot to bump its epoch —
        but without it two receivers seeing those in opposite orders
        would disagree forever, breaking the order-independence
        contract.
        """
        current = self._by_origin.get(digest.origin)
        if current is not None:
            if current.epoch > digest.epoch:
                return False
            if current.epoch == digest.epoch and current.encode() >= digest.encode():
                return False
        self._by_origin[digest.origin] = digest
        return True

    def invalidate(self, origin: int) -> bool:
        """Drop every rule published by ``origin`` (it left or died)."""
        return self._by_origin.pop(origin, None) is not None

    def epoch_of(self, origin: int) -> int | None:
        digest = self._by_origin.get(origin)
        return digest.epoch if digest is not None else None

    def consequents(self, category: int, k: int = 3) -> list[int]:
        """Top-``k`` super-peers the merged rules point at for a category."""
        support: dict[int, int] = {}
        for digest in self._by_origin.values():
            for entry in digest.entries:
                if entry.category == category:
                    support[entry.consequent] = (
                        support.get(entry.consequent, 0) + entry.support
                    )
        ranked = sorted(support.items(), key=lambda cs: (-cs[1], cs[0]))
        return [consequent for consequent, _support in ranked[:k]]

    def encode(self) -> bytes:
        """Canonical encoding: digests concatenated in origin order.

        Because each digest is itself canonical and origins are unique
        keys, this is a pure function of the table's logical content —
        the bit-identity the merge determinism tests assert.
        """
        return b"".join(
            self._by_origin[origin].encode() for origin in sorted(self._by_origin)
        )

    def fingerprint(self) -> bytes:
        return hashlib.blake2b(self.encode(), digest_size=8).digest()
