"""Bench `topology-adaptation`: §VI — rule-driven overlay rewiring.

Paper: a node asks its neighbors where they would forward its queries and
links directly to that third node, "requiring one less hop in the path to
its target."
"""

from benchmarks.conftest import run_and_report


def test_topology_adaptation(benchmark):
    result = run_and_report(benchmark, "topology-adaptation")
    assert int(result.extras["links_added"]) > 0
