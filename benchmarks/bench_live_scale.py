"""Saturation benchmark: a process-per-node cluster under open-loop load.

``python -m benchmarks.bench_live_scale`` boots a sharded cluster via
:class:`repro.scale.supervisor.ClusterSupervisor` (one ``LiveServent``
per worker *process*, real TCP between them), then steps offered RPS
through an open-loop ramp (:mod:`repro.scale.ramp`) and emits
``BENCH_live_scale.json``:

* one record per offered-RPS step — p50/p95/p99 latency, achieved rate,
  timeout/error rate, cluster-side shed/drop deltas, open-loop fidelity;
* the saturation summary — max sustainable QPS within the p99 bound and
  error budget, normalised per core;
* cross-process totals both ways: exact control-channel counters
  (``grand_totals``) and the external-observer view scraped from every
  worker's ``/metrics`` endpoint (``scrape_totals``).

The run **gates**: exit 1 unless the cluster sustains ``--floor-qps``
at ``--p99-bound`` seconds, so CI catches throughput regressions the
unit suite cannot see.  ``--report`` additionally writes the curve as a
Markdown table for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from benchmarks._emit import emit_bench_json

DEFAULT_TERMS = (
    "jazz", "blues", "rock", "folk", "metal", "opera",
    "tango", "salsa", "disco", "house", "swing", "punk",
)


def _parse_steps(text: str) -> list[float]:
    steps = [float(part) for part in text.split(",") if part.strip()]
    if not steps:
        raise argparse.ArgumentTypeError("need at least one RPS step")
    if any(s <= 0 for s in steps):
        raise argparse.ArgumentTypeError("RPS steps must be positive")
    return steps


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.bench_live_scale",
        description="Gated saturation benchmark over a multi-process cluster.",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes, one LiveServent each (default 2)",
    )
    parser.add_argument(
        "--rps", type=_parse_steps, default=_parse_steps("40,80,160,320"),
        help="comma-separated offered-RPS steps (default 40,80,160,320)",
    )
    parser.add_argument(
        "--step-duration", type=float, default=8.0,
        help="seconds of offered load per step (default 8)",
    )
    parser.add_argument(
        "--terms", type=lambda t: [s for s in t.split(",") if s],
        default=list(DEFAULT_TERMS),
        help="comma-separated query vocabulary (partitioned across workers)",
    )
    parser.add_argument(
        "--think", choices=("exponential", "lognormal", "fixed"),
        default="exponential", help="inter-arrival distribution",
    )
    parser.add_argument(
        "--timeout", type=float, default=2.0,
        help="per-request timeout in seconds (default 2)",
    )
    parser.add_argument(
        "--p99-bound", type=float, default=1.0,
        help="a step only sustains if p99 latency <= this (seconds)",
    )
    parser.add_argument(
        "--max-error-rate", type=float, default=0.05,
        help="a step only sustains if timeout+error rate <= this",
    )
    parser.add_argument(
        "--floor-qps", type=float, default=20.0,
        help="gate: fail unless max sustainable QPS >= this",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base arrival-process seed"
    )
    parser.add_argument(
        "--uvloop", action="store_true",
        help="ask workers (and this process) for uvloop; silent fallback",
    )
    parser.add_argument(
        "--state-root", default=None,
        help="root directory for per-node durable state (default: none)",
    )
    parser.add_argument(
        "--report", default=None,
        help="also write the saturation curve as Markdown to this path",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: 2 workers, low RPS, short steps",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=0,
        help="also run a second, traced ramp sampling 1-in-N GUIDs and "
        "gate its overhead at --trace-overhead (0 = skip, default)",
    )
    parser.add_argument(
        "--trace-overhead", type=float, default=0.05,
        help="gate: traced max sustainable QPS must stay within this "
        "fraction of the untraced baseline (default 0.05)",
    )
    parser.add_argument(
        "--trace-report", default=None,
        help="write the traced ramp's merged query tree + cluster "
        "rollup as Markdown to this path",
    )
    return parser


def _ramp_once(args: argparse.Namespace, *, trace_sample: int = 0) -> dict:
    """Boot one cluster, run the full ramp against it, tear it down.

    With ``trace_sample > 0`` the workers sample 1-in-N GUIDs into their
    tracers and the result additionally carries the merged trace trees
    and the collector's cluster rollup (the tracing-overhead comparison
    needs a *separate* cluster so rules learned under the baseline ramp
    do not flatter the traced one).
    """
    from repro.network.topology import Topology
    from repro.scale import (
        ClusterSupervisor,
        LoadConfig,
        partitioned_specs,
        run_ramp,
        saturation_summary,
    )

    specs = partitioned_specs(
        args.workers,
        list(args.terms),
        uvloop=args.uvloop,
        state_dir=None,
        trace_sample=trace_sample,
    )
    if args.state_root and not trace_sample:
        from dataclasses import replace

        specs = [
            replace(s, state_dir=os.path.join(
                args.state_root, f"node-{s.node_id:03d}"))
            for s in specs
        ]
    # Ring topology: every worker has peers, every query can reach every
    # shard within the TTL, and the edge count stays O(n).
    n = args.workers
    topology = Topology(n, [(i, (i + 1) % n) for i in range(n)]) if n > 1 \
        else Topology(1, [])

    base = LoadConfig(
        rps=1.0,
        duration=args.step_duration,
        think=args.think,
        request_timeout=args.timeout,
        trace_sample=trace_sample,
    )
    supervisor = ClusterSupervisor(specs, topology=topology)
    with supervisor:
        addresses = [(host, port) for _id, host, port in supervisor.addresses()]
        steps = run_ramp(
            addresses,
            list(args.terms),
            args.rps,
            step_duration=args.step_duration,
            seed=args.seed,
            load_config=base,
            cluster_totals=supervisor.totals,
        )
        summary = saturation_summary(
            steps,
            p99_bound=args.p99_bound,
            max_error_rate=args.max_error_rate,
            n_processes=supervisor.cpu_budget(),
        )
        worker_loops = sorted(
            {h.info.get("loop", "?") for h in supervisor.handles.values()}
        )
        trace_render = None
        if trace_sample:
            from repro.obs.collect import (
                format_cluster_rollup,
                format_trace_tree,
            )

            collector = supervisor.collector()
            collector.poll()
            parts = [format_cluster_rollup(collector)]
            guid = collector.best_guid()
            if guid is not None:
                parts.extend(["", format_trace_tree(collector.traces[guid])])
            trace_render = {
                "traces_collected": len(collector.traces),
                "answered": len(collector.answered_guids()),
                "quality": collector.live_quality(),
                "markdown": "\n".join(parts),
            }
        scraped = supervisor.scrape_totals()
        grand = supervisor.grand_totals()
    return {
        "steps": steps,
        "summary": summary,
        "worker_loops": worker_loops,
        "cluster_totals": grand,
        "scraped_totals": scraped,
        "trace": trace_render,
    }


def run(args: argparse.Namespace) -> dict:
    from repro.scale import install_uvloop

    if args.quick:
        args.workers = 2
        args.rps = [10.0, 20.0, 40.0, 80.0]
        args.step_duration = min(args.step_duration, 4.0)
        args.floor_qps = min(args.floor_qps, 8.0)

    loop_impl = install_uvloop(args.uvloop)
    baseline = _ramp_once(args)
    payload = {
        "metadata": {
            "workers": args.workers,
            "cpu_count": os.cpu_count(),
            "loop": loop_impl,
            "worker_loops": baseline["worker_loops"],
            "uvloop_requested": args.uvloop,
            "think": args.think,
            "step_duration_seconds": args.step_duration,
            "request_timeout_seconds": args.timeout,
            "terms": list(args.terms),
            "seed": args.seed,
        },
        "steps": baseline["steps"],
        "summary": baseline["summary"],
        "cluster_totals": baseline["cluster_totals"],
        "scraped_totals": baseline["scraped_totals"],
    }
    if args.trace_sample > 0:
        traced = _ramp_once(args, trace_sample=args.trace_sample)
        baseline_qps = baseline["summary"]["max_sustainable_qps"]
        traced_qps = traced["summary"]["max_sustainable_qps"]
        overhead = (
            (baseline_qps - traced_qps) / baseline_qps
            if baseline_qps > 0
            else 0.0
        )
        payload["tracing"] = {
            "sample": args.trace_sample,
            "baseline_qps": baseline_qps,
            "traced_qps": traced_qps,
            "overhead_fraction": round(overhead, 4),
            "overhead_bound": args.trace_overhead,
            "traced_steps": traced["steps"],
            "traced_summary": traced["summary"],
            "collector": {
                k: v
                for k, v in (traced["trace"] or {}).items()
                if k != "markdown"
            },
        }
        payload["trace_markdown"] = (traced["trace"] or {}).get("markdown")
    return payload


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    payload = run(args)
    summary = payload["summary"]
    trace_markdown = payload.pop("trace_markdown", None)
    path = emit_bench_json("live_scale", payload)
    if args.report:
        from repro.scale import format_saturation_markdown

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(format_saturation_markdown(payload["steps"], summary))
        print(f"saturation report: {args.report}")
    if args.trace_report and trace_markdown:
        with open(args.trace_report, "w", encoding="utf-8") as fh:
            fh.write(trace_markdown)
            fh.write("\n")
        print(f"trace report: {args.trace_report}")
    print(f"bench json: {path}")
    print(json.dumps(summary, indent=2))
    failed = False
    if summary["max_sustainable_qps"] < args.floor_qps:
        print(
            f"GATE FAIL: max sustainable "
            f"{summary['max_sustainable_qps']:g} QPS "
            f"< floor {args.floor_qps:g} QPS "
            f"(p99 bound {args.p99_bound:g}s, "
            f"error budget {args.max_error_rate:.0%})",
            file=sys.stderr,
        )
        failed = True
    tracing = payload.get("tracing")
    if tracing is not None:
        if tracing["overhead_fraction"] > args.trace_overhead:
            print(
                f"GATE FAIL: sampled tracing cost "
                f"{tracing['overhead_fraction']:.1%} of max sustainable "
                f"QPS ({tracing['baseline_qps']:g} -> "
                f"{tracing['traced_qps']:g}), bound "
                f"{args.trace_overhead:.0%}",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"TRACE GATE PASS: 1-in-{tracing['sample']} tracing cost "
                f"{tracing['overhead_fraction']:.1%} "
                f"({tracing['baseline_qps']:g} -> "
                f"{tracing['traced_qps']:g} QPS), within "
                f"{args.trace_overhead:.0%}"
            )
    if failed:
        return 1
    print(
        f"GATE PASS: sustained {summary['max_sustainable_qps']:g} QPS "
        f"({summary['qps_per_core']:g} QPS/core) "
        f"within p99 <= {args.p99_bound:g}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
