"""Tests for repro.metrics.series."""

import numpy as np
import pytest

from repro.metrics.series import decay_halfway_point, moving_average, sawtooth_depth


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = [1.0, 2.0, 3.0]
        np.testing.assert_allclose(moving_average(values, 1), values)

    def test_trailing_window(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], 2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_prefix_shorter_window(self):
        out = moving_average([2.0, 4.0, 6.0], 10)
        np.testing.assert_allclose(out, [2.0, 3.0, 4.0])

    def test_empty(self):
        assert moving_average([], 3).size == 0

    def test_window_larger_than_series(self):
        # Every output averages the whole available prefix.
        out = moving_average([4.0, 8.0], 100)
        np.testing.assert_allclose(out, [4.0, 6.0])

    def test_constant_series_is_fixed_point(self):
        np.testing.assert_allclose(
            moving_average([0.7] * 5, 3), [0.7] * 5
        )

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestDecayHalfwayPoint:
    def test_finds_first_half_crossing(self):
        series = [0.8, 0.7, 0.5, 0.4, 0.3]
        assert decay_halfway_point(series) == 3  # first value <= 0.8/2

    def test_none_when_never_halves(self):
        assert decay_halfway_point([0.8, 0.7, 0.6]) is None

    def test_none_for_zero_start(self):
        assert decay_halfway_point([0.0, 0.0]) is None

    def test_none_for_empty(self):
        assert decay_halfway_point([]) is None

    def test_none_for_constant_series(self):
        assert decay_halfway_point([0.6] * 10) is None

    def test_single_element_never_halves(self):
        assert decay_halfway_point([1.0]) is None


class TestSawtoothDepth:
    def test_known_sawtooth(self):
        series = [1.0, 0.8, 0.6, 1.0, 0.9, 0.5]
        assert sawtooth_depth(series, 3) == pytest.approx((0.4 + 0.5) / 2)

    def test_flat_series(self):
        assert sawtooth_depth([0.5] * 9, 3) == pytest.approx(0.0)

    def test_nan_when_too_short(self):
        import math

        assert math.isnan(sawtooth_depth([1.0], 3))

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            sawtooth_depth([1.0, 2.0], 0)

    def test_period_one_is_always_flat(self):
        # Each span is a single sample, so peak == trough everywhere.
        assert sawtooth_depth([0.9, 0.1, 0.5], 1) == pytest.approx(0.0)

    def test_empty_series_is_nan(self):
        import math

        assert math.isnan(sawtooth_depth([], 3))
