"""Infrastructure micro-benchmarks: mining and rule-engine throughput.

Not a paper artifact — these benches guard the performance of the hot
paths (the guides' "no optimization without measuring"): Apriori vs
FP-Growth on market-basket data, the vectorized vs reference
GENERATE-RULESET, the vectorized RULESET-TEST, and raw trace generation.
"""

import numpy as np
import pytest

from repro.core.evaluation import ruleset_test, ruleset_test_reference
from repro.core.generation import generate_ruleset
from repro.mining.apriori import apriori
from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import TransactionDataset
from repro.trace.blocks import PairBlock
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator


@pytest.fixture(scope="module")
def basket_dataset():
    rng = np.random.default_rng(0)
    transactions = [
        set(rng.choice(60, size=rng.integers(2, 8), replace=False).tolist())
        for _ in range(2000)
    ]
    return TransactionDataset(transactions)


@pytest.fixture(scope="module")
def trace_block():
    cfg = MonitorTraceConfig()
    gen = MonitorTraceGenerator(cfg, seed=5)
    arrays = gen.generate_pair_arrays(10_000)
    return PairBlock(sources=arrays.source, repliers=arrays.replier)


def test_apriori_throughput(benchmark, basket_dataset):
    result = benchmark(apriori, basket_dataset, min_support_count=40)
    assert result


def test_fpgrowth_throughput(benchmark, basket_dataset):
    result = benchmark(fpgrowth, basket_dataset, min_support_count=40)
    assert result


def test_generate_ruleset_numpy(benchmark, trace_block):
    rs = benchmark(generate_ruleset, trace_block, implementation="numpy")
    assert len(rs) > 0


def test_generate_ruleset_python_reference(benchmark, trace_block):
    rs = benchmark(generate_ruleset, trace_block, implementation="python")
    assert len(rs) > 0


def test_ruleset_test_numpy(benchmark, trace_block):
    rs = generate_ruleset(trace_block)
    result = benchmark(ruleset_test, rs, trace_block)
    assert result.n_total == len(trace_block)


def test_ruleset_test_python_reference(benchmark, trace_block):
    rs = generate_ruleset(trace_block)
    result = benchmark(ruleset_test_reference, rs, trace_block)
    assert result.n_total == len(trace_block)


def test_trace_generation_throughput(benchmark):
    def generate():
        gen = MonitorTraceGenerator(MonitorTraceConfig(), seed=6)
        return gen.generate_pair_arrays(20_000)

    arrays = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(arrays) == 20_000
