"""A minimal asyncio HTTP/1.1 endpoint for scraping one live node.

Serves exactly what an operations loop needs and nothing else:

* ``GET /metrics``  — the node's registry in Prometheus text format
  (``text/plain; version=0.0.4``), after calling the optional ``render``
  hook so snapshot-style series (α, ρ, queue depths, NodeStats mirrors)
  are synced at scrape time;
* ``GET /healthz``  — a small JSON liveness document from the ``health``
  hook (HTTP 200 while the node is up, 503 once it is closing);
* ``GET /trace``    — the node's retained query spans as JSON lines
  (one event per line, GUID-keyed), when a ``trace`` hook is wired;
  404 on nodes that run without a tracer.

Implemented directly on :mod:`asyncio` streams — no web framework, in
keeping with the repo's no-new-dependencies rule.  Connections are
close-after-response and the request head is size-capped, so a confused
peer poking the port cannot pin memory or sockets.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

__all__ = ["ObsHttpServer"]

_MAX_REQUEST_HEAD = 8192
_READ_TIMEOUT = 5.0


class ObsHttpServer:
    """Serve ``/metrics``, ``/healthz`` and ``/trace`` for one node."""

    def __init__(
        self,
        *,
        render: Callable[[], str],
        health: Callable[[], dict] | None = None,
        trace: Callable[[], str] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._render = render
        self._health = health or (lambda: {"status": "ok"})
        self._trace = trace
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def running(self) -> bool:
        return self._server is not None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), _READ_TIMEOUT
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
            OSError,
        ):
            writer.close()
            return
        try:
            if len(head) > _MAX_REQUEST_HEAD:
                await self._respond(writer, 431, "text/plain", "head too large\n")
                return
            request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            parts = request_line.split(" ")
            if len(parts) != 3:
                await self._respond(writer, 400, "text/plain", "bad request\n")
                return
            method, target, _version = parts
            path = target.split("?", 1)[0]
            if method not in ("GET", "HEAD"):
                await self._respond(
                    writer, 405, "text/plain", "method not allowed\n"
                )
                return
            if path == "/metrics":
                await self._respond(
                    writer,
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    self._render(),
                    include_body=method == "GET",
                )
            elif path == "/healthz":
                doc = self._health()
                status = 200 if doc.get("status", "ok") == "ok" else 503
                await self._respond(
                    writer,
                    status,
                    "application/json",
                    json.dumps(doc) + "\n",
                    include_body=method == "GET",
                )
            elif path == "/trace" and self._trace is not None:
                await self._respond(
                    writer,
                    200,
                    "application/x-ndjson",
                    self._trace(),
                    include_body=method == "GET",
                )
            else:
                await self._respond(writer, 404, "text/plain", "not found\n")
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: str,
        *,
        include_body: bool = True,
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            431: "Request Header Fields Too Large",
            503: "Service Unavailable",
        }.get(status, "OK")
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + (payload if include_body else b""))
        await writer.drain()
