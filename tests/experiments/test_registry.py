"""Tests for repro.experiments.registry and config."""

import pytest

from repro.experiments.config import DEFAULT_SCALE, FULL_SCALE, current_scale
from repro.experiments.registry import EXPERIMENTS, get_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "static",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "adaptive-history",
            "streaming",
            "traffic",
            "prune-ablation",
            "confidence-ablation",
            "category-rules",
            "topology-adaptation",
            "hybrid",
            "superpeer",
            "hier",
            "topk-ablation",
            "churn-sensitivity",
            "adoption",
            "latency",
        }
        assert set(EXPERIMENTS) == expected

    def test_get_experiment(self):
        fn = get_experiment("fig1")
        assert callable(fn)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="fig1"):
            get_experiment("fig99")

    def test_titles_nonempty(self):
        for title, fn in EXPERIMENTS.values():
            assert title
            assert callable(fn)


class TestScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert current_scale() is DEFAULT_SCALE

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert current_scale() is FULL_SCALE

    def test_full_scale_larger(self):
        assert FULL_SCALE.n_blocks > DEFAULT_SCALE.n_blocks
