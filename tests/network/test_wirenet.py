"""Tests for repro.network.wirenet (wire-level network harness)."""

import numpy as np

from repro.network.topology import random_regular
from repro.network.wirenet import WireNetwork

VOCAB = ["alpha", "bravo", "cedar", "delta", "ember", "flint"]


def build(rule_routed=False, monitor=None, seed=1, n=20):
    topo = random_regular(n, 4, rng=np.random.default_rng(seed))
    net = WireNetwork(topo, rule_routed=rule_routed, monitor_node=monitor)
    net.stock_random_libraries(
        np.random.default_rng(seed + 1), vocabulary=VOCAB
    )
    return net


class TestWireNetwork:
    def test_workload_answers_queries(self):
        net = build()
        stats = net.run_workload(
            np.random.default_rng(2), vocabulary=VOCAB, n_queries=40
        )
        assert stats["answer_rate"] > 0.8  # common terms, replicated
        assert stats["frames_per_query"] > 0

    def test_monitor_captures_wire_trace(self):
        net = build(monitor=0)
        net.run_workload(np.random.default_rng(3), vocabulary=VOCAB, n_queries=30)
        monitor = net.monitor
        assert monitor is not None
        assert monitor.query_log  # queries transited the monitor
        # Hits routed back through the monitor were captured too.
        assert monitor.reply_log

    def test_rule_routed_network_saves_frames(self):
        """The paper's claim at the byte level: after warmup, rule-routed
        servents transmit fewer frames per query at a comparable answer
        rate (no per-query re-flood at the wire level, so a small answer
        drop is expected)."""
        rng_w = np.random.default_rng(4)
        vanilla = build(rule_routed=False, seed=5)
        vanilla_stats = vanilla.run_workload(rng_w, vocabulary=VOCAB, n_queries=60)

        routed = build(rule_routed=True, seed=5)
        # Warmup populates every servent's rule tables.
        routed.run_workload(np.random.default_rng(6), vocabulary=VOCAB, n_queries=150)
        routed_stats = routed.run_workload(
            np.random.default_rng(4), vocabulary=VOCAB, n_queries=60
        )
        assert routed_stats["frames_per_query"] < vanilla_stats["frames_per_query"]
        assert routed_stats["answer_rate"] > vanilla_stats["answer_rate"] - 0.25

    def test_wire_trace_feeds_rule_pipeline(self):
        """End to end: bytes -> monitor capture -> pairs -> rule set."""
        from repro.core.generation import generate_ruleset
        from repro.store.table import Table
        from repro.trace.blocks import partition_pairs
        from repro.trace.dedup import dedup_queries, dedup_replies
        from repro.trace.pairing import build_pair_table
        from repro.trace.records import QUERY_COLUMNS, REPLY_COLUMNS

        net = build(monitor=0, seed=7)
        net.run_workload(np.random.default_rng(8), vocabulary=VOCAB, n_queries=80)
        monitor = net.monitor
        queries = Table("queries", QUERY_COLUMNS)
        queries.extend(r.as_row() for r in monitor.query_log)
        replies = Table("replies", REPLY_COLUMNS)
        replies.extend(r.as_row() for r in monitor.reply_log)
        pairs = build_pair_table(dedup_queries(queries), dedup_replies(replies))
        assert len(pairs) > 0
        blocks = partition_pairs(pairs, block_size=len(pairs), drop_partial=False)
        ruleset = generate_ruleset(blocks[0], min_support_count=2)
        # The monitor's rules point at actual topology neighbors.
        for rule in ruleset:
            assert rule.consequent in net.topology.neighbors(0)
