"""Trace records and the paper's import pipeline.

The original study captured queries and replies at a modified Gnutella node
for 7 days, imported them into a relational database, removed records with
duplicated GUIDs (keeping the first), joined queries with replies on GUID to
form query–reply pairs, and partitioned the pairs into blocks for the rule
simulator.  This subpackage reproduces that pipeline on top of
:mod:`repro.store`:

* :mod:`~repro.trace.records` — `QueryRecord` / `ReplyRecord` /
  `QueryReplyPair` dataclasses and table schemas;
* :mod:`~repro.trace.dedup` — duplicate-GUID removal (first record kept);
* :mod:`~repro.trace.pairing` — the GUID equi-join producing pairs;
* :mod:`~repro.trace.blocks` — `PairBlock` (columnar numpy view of a block
  of pairs) and block partitioning;
* :mod:`~repro.trace.io` — CSV-ish (de)serialization for persisting traces;
* :mod:`~repro.trace.store` — out-of-core mmap-backed columnar trace store
  (append-only chunked writer, zero-copy block readers, O(block) memory);
* :mod:`~repro.trace.analysis` — descriptive trace statistics (turnover,
  concentration, coverage ceilings).
"""

from repro.trace.analysis import (
    BlockProfile,
    coverage_ceiling,
    profile_block,
    source_turnover,
)
from repro.trace.blocks import (
    PairBlock,
    blocks_from_arrays,
    blocks_from_store,
    iter_blocks_from_arrays,
    iter_partition_pairs,
    partition_pairs,
)
from repro.trace.dedup import dedup_queries, dedup_replies
from repro.trace.store import (
    TraceStoreCorruption,
    TraceStoreError,
    TraceStoreReader,
    TraceStoreWriter,
    write_trace_store,
)
from repro.trace.pairing import build_pair_table, pair_records
from repro.trace.records import (
    PAIR_COLUMNS,
    QUERY_COLUMNS,
    REPLY_COLUMNS,
    QueryRecord,
    QueryReplyPair,
    ReplyRecord,
)

__all__ = [
    "BlockProfile",
    "PAIR_COLUMNS",
    "PairBlock",
    "coverage_ceiling",
    "profile_block",
    "source_turnover",
    "QUERY_COLUMNS",
    "QueryRecord",
    "QueryReplyPair",
    "REPLY_COLUMNS",
    "ReplyRecord",
    "TraceStoreCorruption",
    "TraceStoreError",
    "TraceStoreReader",
    "TraceStoreWriter",
    "blocks_from_arrays",
    "blocks_from_store",
    "build_pair_table",
    "dedup_queries",
    "dedup_replies",
    "iter_blocks_from_arrays",
    "iter_partition_pairs",
    "pair_records",
    "partition_pairs",
    "write_trace_store",
]
