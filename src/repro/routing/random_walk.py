"""k-random walks (Gkantsidis et al., the paper's ref [6])."""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.metrics.traffic import QueryOutcome
from repro.network.engine import QueryEngine
from repro.network.messages import Query
from repro.routing.base import RoutingPolicy
from repro.utils.rng import as_generator

__all__ = ["KRandomWalkPolicy"]


class KRandomWalkPolicy(RoutingPolicy):
    """Send ``k`` walkers, each with a long TTL.

    The walk TTL is ``ttl_factor`` times the query's flooding TTL —
    random walks trade traffic for latency, so they are allowed to run
    long, as in the original proposal.
    """

    name = "k-random-walk"

    def __init__(self, node_id: int, overlay, *, k: int = 4, ttl_factor: int = 8, seed=None) -> None:
        super().__init__(node_id, overlay)
        if k < 1 or ttl_factor < 1:
            raise ValueError("k and ttl_factor must be >= 1")
        self.k = k
        self.ttl_factor = ttl_factor
        self._rng = as_generator(seed)

    def select(self, node: int, upstream: int | None, query: Query) -> Sequence[int]:
        # Walk propagation never uses broadcast select; choose one random
        # neighbor for completeness if some driver broadcasts through us.
        neighbors = self.overlay.topology.neighbors(node)
        if not neighbors:
            return ()
        return (neighbors[int(self._rng.integers(0, len(neighbors)))],)

    def route_query(self, engine: QueryEngine, query: Query) -> QueryOutcome:
        walk_query = replace(query, ttl=query.ttl * self.ttl_factor)
        return engine.walk(walk_query, n_walkers=self.k, rng=self._rng)
