"""Tests for repro.metrics.report."""

from repro.metrics.report import ComparisonRow, format_table


class TestComparisonRow:
    def test_within_band(self):
        row = ComparisonRow("x", 0.8, 0.79, band=(0.7, 0.9))
        assert row.within_band is True

    def test_outside_band(self):
        row = ComparisonRow("x", 0.8, 0.5, band=(0.7, 0.9))
        assert row.within_band is False

    def test_no_band(self):
        assert ComparisonRow("x", 0.8, 0.5).within_band is None

    def test_string_paper_value(self):
        row = ComparisonRow("x", "<0.02", 0.01, band=(0.0, 0.05))
        label, paper, measured, band = row.cells()
        assert paper == "<0.02"
        assert "OK" in band


class TestFormatTable:
    def test_contains_rows_and_title(self):
        rows = [
            ComparisonRow("coverage", 0.8, 0.79, band=(0.7, 0.9)),
            ComparisonRow("success", 0.79, 0.2, band=(0.7, 0.9)),
        ]
        text = format_table("My Table", rows)
        assert "My Table" in text
        assert "coverage" in text
        assert "OK" in text
        assert "MISS" in text

    def test_empty_rows(self):
        text = format_table("Empty", [])
        assert "Empty" in text
        assert "metric" in text
