"""Tests for repro.core.io (rule-set persistence)."""

import pytest

from repro.core.generation import generate_ruleset
from repro.core.io import (
    read_ruleset,
    ruleset_to_table,
    table_to_ruleset,
    write_ruleset,
)
from repro.core.rules import Rule, RuleSet


def make_ruleset():
    return RuleSet([Rule(1, 10, 5), Rule(1, 11, 3), Rule(2, 12, 7)])


class TestFileRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "rules.tsv"
        rs = make_ruleset()
        assert write_ruleset(path, rs) == 3
        back = read_ruleset(path)
        assert sorted((r.antecedent, r.consequent, r.count) for r in back) == sorted(
            (r.antecedent, r.consequent, r.count) for r in rs
        )

    def test_empty_ruleset(self, tmp_path):
        path = tmp_path / "empty.tsv"
        write_ruleset(path, RuleSet.empty())
        assert len(read_ruleset(path)) == 0

    def test_bad_header_detected(self, tmp_path):
        path = tmp_path / "bogus.tsv"
        path.write_text("a\tb\n")
        with pytest.raises(ValueError):
            read_ruleset(path)

    def test_roundtrip_preserves_behaviour(self, tmp_path, small_block):
        rs = generate_ruleset(small_block, min_support_count=2)
        path = tmp_path / "mined.tsv"
        write_ruleset(path, rs)
        back = read_ruleset(path)
        from repro.core.evaluation import ruleset_test

        a = ruleset_test(rs, small_block)
        b = ruleset_test(back, small_block)
        assert (a.n_covered, a.n_successful) == (b.n_covered, b.n_successful)


class TestTableRoundtrip:
    def test_table_shape(self):
        table = ruleset_to_table(make_ruleset())
        assert table.column_names == ("antecedent", "consequent", "count")
        assert len(table) == 3

    def test_roundtrip(self):
        rs = make_ruleset()
        back = table_to_ruleset(ruleset_to_table(rs))
        assert back.consequents_for(1) == rs.consequents_for(1)
        assert len(back) == len(rs)
