#!/usr/bin/env python
"""Wire-level trace capture: the paper's "modified node", end to end.

Builds a tiny Gnutella network of byte-talking servents with one
:class:`MonitorServent` in the middle (the paper's §IV capture node),
drives keyword queries through it, and feeds the captured records into
the exact §IV pipeline: store tables → GUID dedup → query/reply join →
query-reply pairs → association rules.

The captured tables are saved to a JSON-lines database file and loaded
back before mining — the same "import the trace into a database, then run
the simulator against it" split the paper describes.

Run:  python examples/servent_capture.py
"""

import os
import tempfile

import numpy as np

from repro.core.generation import generate_ruleset
from repro.network.servent import MonitorServent, Servent, SharedFile
from repro.store import Database
from repro.trace.blocks import partition_pairs
from repro.trace.dedup import dedup_queries, dedup_replies
from repro.trace.pairing import build_pair_table
from repro.trace.records import QUERY_COLUMNS, REPLY_COLUMNS

TOPICS = {
    "jazz": ["classic jazz session.mp3", "late night jazz.mp3"],
    "tundra": ["tundra field recording.ogg"],
    "mesa": ["mesa live set.flac", "mesa studio takes.flac"],
}


def pump(servents, frames, sender):
    queue = [(sender, conn, frame) for conn, frame in frames]
    delivered = 0
    while queue:
        src, dst, frame = queue.pop(0)
        delivered += 1
        for conn, out in servents[dst].handle_frame(src, frame):
            queue.append((dst, conn, out))
    return delivered


def main() -> None:
    rng = np.random.default_rng(5)
    # Star around the monitor: leaf servents 0,2,3,4 each hold one topic.
    topic_names = list(TOPICS)
    servents = {}
    monitor = MonitorServent(9000)
    servents[1] = monitor
    leaf_ids = [0, 2, 3, 4]
    for idx, leaf in enumerate(leaf_ids):
        topic = topic_names[idx % len(topic_names)]
        library = [
            SharedFile(i, name, 1 << 20)
            for i, name in enumerate(TOPICS[topic])
        ]
        servents[leaf] = Servent(9000 + leaf + 1, library=library)
        servents[leaf].connect(1)
        monitor.connect(leaf)

    print("network: 4 leaf servents around 1 monitor servent (wire protocol)\n")
    total_frames = 0
    n_queries = 120
    for q in range(n_queries):
        origin = leaf_ids[int(rng.integers(0, len(leaf_ids)))]
        topic = topic_names[int(rng.integers(0, len(topic_names)))]
        monitor.clock.advance_by(1.0)
        _guid, frames = servents[origin].issue_query(topic)
        total_frames += pump(servents, frames, origin)

    print(f"{n_queries} queries issued; {total_frames} wire frames exchanged")
    print(
        f"monitor captured {len(monitor.query_log)} query records and "
        f"{len(monitor.reply_log)} reply records\n"
    )

    capture = Database("capture")
    queries = capture.create_table("queries", QUERY_COLUMNS)
    queries.extend(rec.as_row() for rec in monitor.query_log)
    replies = capture.create_table("replies", REPLY_COLUMNS)
    replies.extend(rec.as_row() for rec in monitor.reply_log)

    # Persist the capture and mine from the re-imported copy, like the
    # paper's trace-to-database import step.
    fd, db_path = tempfile.mkstemp(suffix=".jsonl", prefix="capture-")
    os.close(fd)
    try:
        rows = capture.save(db_path)
        loaded = Database.load(db_path)
        print(f"saved capture database ({rows} rows) to {db_path} and re-imported it")
    finally:
        os.unlink(db_path)

    pairs = build_pair_table(
        dedup_queries(loaded.table("queries")),
        dedup_replies(loaded.table("replies")),
    )
    print(f"pipeline: {len(pairs)} query-reply pairs after dedup + join")

    blocks = partition_pairs(pairs, block_size=len(pairs), drop_partial=False)
    ruleset = generate_ruleset(blocks[0], min_support_count=3)
    print(f"mined {len(ruleset)} routing rules from the capture:")
    for rule in ruleset:
        print(f"  queries from connection {rule.antecedent} -> forward to "
              f"connection {rule.consequent} (support {rule.count})")


if __name__ == "__main__":
    main()
