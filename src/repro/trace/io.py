"""Trace (de)serialization.

Tab-separated persistence for query and reply tables, so traces can be
generated once and replayed across experiment runs (the paper's 2.6 GB
database served the same purpose).  The format is line-oriented and
append-friendly; strings are the last field so they may contain spaces.

Readers decode in streaming chunks: :func:`iter_query_rows` /
:func:`iter_reply_rows` yield decoded row tuples one at a time, and the
table builders feed the tables via chunked ``extend`` calls so only
``chunk_size`` decoded rows are ever held outside the table — a 7-day
full-scale trace file loads without a second full-trace list in memory.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from repro.store.table import Table
from repro.trace.records import (
    QUERY_COLUMNS,
    REPLY_COLUMNS,
    QueryRecord,
    ReplyRecord,
)

__all__ = [
    "write_queries",
    "read_queries",
    "iter_query_rows",
    "write_replies",
    "read_replies",
    "iter_reply_rows",
]

_QUERY_HEADER = "time\tguid\tsource\tquery_string"
_REPLY_HEADER = "time\tguid\treplier\thost\tfile_name"

#: rows decoded per ``Table.extend`` call in the chunked readers.
DEFAULT_CHUNK_SIZE = 8192


def write_queries(path: str | os.PathLike, records: Iterable[QueryRecord]) -> int:
    """Write query records; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_QUERY_HEADER + "\n")
        for rec in records:
            if "\t" in rec.query_string or "\n" in rec.query_string:
                raise ValueError("query strings may not contain tabs or newlines")
            fh.write(f"{rec.time!r}\t{rec.guid}\t{rec.source}\t{rec.query_string}\n")
            n += 1
    return n


def iter_query_rows(path: str | os.PathLike) -> Iterator[tuple]:
    """Yield decoded ``(time, guid, source, query_string)`` rows lazily."""
    with open(path, encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n")
        if header != _QUERY_HEADER:
            raise ValueError(f"not a query trace file: header {header!r}")
        for line in fh:
            time_s, guid_s, source_s, qs = line.rstrip("\n").split("\t", 3)
            yield (float(time_s), int(guid_s), int(source_s), qs)


def _fill_table(table: Table, rows: Iterator[tuple], chunk_size: int) -> Table:
    """Feed a row iterator into ``table`` in chunks of ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunk: list[tuple] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= chunk_size:
            table.extend(chunk)
            chunk.clear()
    if chunk:
        table.extend(chunk)
    return table


def read_queries(
    path: str | os.PathLike, *, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Table:
    """Read query records into a fresh ``queries`` table.

    Rows stream from disk in ``chunk_size`` batches; at no point does
    the reader hold a full-trace row list alongside the table.
    """
    return _fill_table(
        Table("queries", QUERY_COLUMNS), iter_query_rows(path), chunk_size
    )


def write_replies(path: str | os.PathLike, records: Iterable[ReplyRecord]) -> int:
    """Write reply records; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_REPLY_HEADER + "\n")
        for rec in records:
            if "\t" in rec.file_name or "\n" in rec.file_name:
                raise ValueError("file names may not contain tabs or newlines")
            fh.write(
                f"{rec.time!r}\t{rec.guid}\t{rec.replier}\t{rec.host}\t{rec.file_name}\n"
            )
            n += 1
    return n


def iter_reply_rows(path: str | os.PathLike) -> Iterator[tuple]:
    """Yield decoded ``(time, guid, replier, host, file_name)`` rows lazily."""
    with open(path, encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n")
        if header != _REPLY_HEADER:
            raise ValueError(f"not a reply trace file: header {header!r}")
        for line in fh:
            time_s, guid_s, replier_s, host_s, fname = line.rstrip("\n").split("\t", 4)
            yield (float(time_s), int(guid_s), int(replier_s), int(host_s), fname)


def read_replies(
    path: str | os.PathLike, *, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Table:
    """Read reply records into a fresh ``replies`` table.

    Rows stream from disk in ``chunk_size`` batches; at no point does
    the reader hold a full-trace row list alongside the table.
    """
    return _fill_table(
        Table("replies", REPLY_COLUMNS), iter_reply_rows(path), chunk_size
    )
