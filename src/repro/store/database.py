"""A named collection of tables."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.store.table import Column, Table

__all__ = ["Database"]


class Database:
    """Container for the trace pipeline's tables.

    Mirrors the paper's relational database: a ``queries`` table, a
    ``replies`` table, the joined ``pairs`` table and assorted temporary
    tables created by the simulator all live in one of these.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[Column | str]) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists in database {self.name!r}")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def add_table(self, table: Table) -> Table:
        """Register an externally constructed table (e.g. a join result)."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r} in database {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> Iterable[str]:
        return tuple(self._tables)

    def total_rows(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Database({self.name!r}, tables={list(self._tables)})"
