"""Tests for repro.utils.guid."""

import pytest

from repro.utils.guid import GuidAllocator


class TestGuidAllocator:
    def test_unique_when_duplicates_disabled(self):
        alloc = GuidAllocator(duplicate_rate=0.0, rng=1)
        guids = alloc.fresh_batch(500)
        assert len(set(guids)) == 500
        assert alloc.duplicate_count == 0
        assert alloc.issued_count == 500

    def test_guids_are_128_bit_range(self):
        alloc = GuidAllocator(rng=2)
        for guid in alloc.fresh_batch(50):
            assert 0 <= guid < (1 << 128)

    def test_duplicates_appear_at_high_rate(self):
        alloc = GuidAllocator(duplicate_rate=0.5, rng=3)
        guids = alloc.fresh_batch(400)
        assert len(set(guids)) < 400
        assert alloc.duplicate_count > 50

    def test_duplicate_reuses_previously_issued(self):
        alloc = GuidAllocator(duplicate_rate=0.9, rng=4)
        guids = alloc.fresh_batch(200)
        fresh = set()
        for g in guids:
            if g in fresh:
                return  # found a reuse of an earlier GUID — correct
            fresh.add(g)
        pytest.fail("no duplicate observed at rate 0.9")

    def test_duplicate_rate_statistics(self):
        alloc = GuidAllocator(duplicate_rate=0.1, rng=5)
        alloc.fresh_batch(3000)
        rate = alloc.duplicate_count / alloc.issued_count
        assert 0.05 < rate < 0.15

    def test_deterministic(self):
        a = GuidAllocator(duplicate_rate=0.1, rng=6).fresh_batch(50)
        b = GuidAllocator(duplicate_rate=0.1, rng=6).fresh_batch(50)
        assert a == b

    def test_first_guid_never_duplicate(self):
        alloc = GuidAllocator(duplicate_rate=0.99, rng=7)
        alloc.next()
        assert alloc.duplicate_count == 0

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError):
            GuidAllocator(duplicate_rate=rate)

    def test_rejects_negative_batch(self):
        with pytest.raises(ValueError):
            GuidAllocator(rng=8).fresh_batch(-1)
