"""Markdown report generation for experiment results.

``python -m repro all --markdown report.md`` regenerates every paper
artifact and writes an EXPERIMENTS.md-style document from the live
results, so the shipped record can always be rebuilt from scratch.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.results import ExperimentResult
from repro.metrics.ascii_chart import sparkline
from repro.obs.registry import MetricsRegistry, get_global_registry

__all__ = [
    "build_markdown_report",
    "offline_timings_section",
    "result_to_markdown",
]


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section."""
    lines = [f"## `{result.experiment_id}` — {result.title}", ""]
    lines.append("| metric | paper | measured | band | status |")
    lines.append("|---|---|---|---|---|")
    for row in result.rows:
        paper = (
            f"{row.paper:.3f}" if isinstance(row.paper, float) else str(row.paper)
        )
        if row.band is None:
            band = "—"
            status = "—"
        else:
            band = f"[{row.band[0]:.2f}, {row.band[1]:.2f}]"
            status = "OK" if row.within_band else "**MISS**"
        lines.append(
            f"| {row.label} | {paper} | {row.measured:.3f} | {band} | {status} |"
        )
    for name in ("coverage", "success"):
        series = result.series.get(name)
        if series:
            lines.append("")
            lines.append(f"`{name}` over blocks: `{sparkline(series)}`")
    lines.append("")
    return "\n".join(lines)


def offline_timings_section(registry: MetricsRegistry | None = None) -> str:
    """The offline simulator's per-block timings as a markdown section.

    The strategies record one observation per block they mine or test
    into the global metrics registry
    (``repro_offline_{mine,test}_seconds{strategy=...}``); this renders
    whatever has accumulated so far — the rule-set maintenance cost the
    paper trades against routing quality, now measured instead of
    assumed.  Returns an empty string when nothing has been recorded.
    """
    registry = registry or get_global_registry()
    rows: list[tuple[str, str, int, float, float]] = []
    for phase in ("mine", "test"):
        family = registry.family(f"repro_offline_{phase}_seconds")
        if family is None:
            continue
        for (strategy,), hist in sorted(family.children().items()):
            if hist.count:
                rows.append(
                    (
                        strategy,
                        phase,
                        hist.count,
                        hist.sum,
                        1e3 * hist.sum / hist.count,
                    )
                )
    if not rows:
        return ""
    lines = [
        "## Offline per-block timings",
        "",
        "| strategy | phase | blocks | total s | mean ms/block |",
        "|---|---|---|---|---|",
    ]
    rows.sort()
    for strategy, phase, count, total, mean_ms in rows:
        lines.append(
            f"| {strategy} | {phase} | {count} | {total:.3f} | {mean_ms:.3f} |"
        )
    lines.append("")
    return "\n".join(lines)


def build_markdown_report(
    results: Iterable[ExperimentResult], *, title: str = "Reproduction report"
) -> str:
    """Assemble a full markdown report from experiment results."""
    results = list(results)
    lines = [f"# {title}", ""]
    n_ok = sum(1 for r in results if r.all_within_band)
    lines.append(
        f"{len(results)} experiments; {n_ok} fully within their acceptance "
        f"bands."
    )
    lines.append("")
    for result in results:
        lines.append(result_to_markdown(result))
    timings = offline_timings_section()
    if timings:
        lines.append(timings)
    return "\n".join(lines)
