"""The paper's rule-routed servent as an asyncio network daemon.

:class:`LiveServent` puts the byte-level state machine from
:mod:`repro.network.servent` on real TCP sockets: it runs an asyncio
server for inbound peers, supervises outbound links (dial, handshake,
reconnect with exponential backoff), and pumps every decoded descriptor
through the same forwarding rules the in-process simulators use —
GUID reply routing, duplicate suppression, TTL aging, shared-file hit
matching.

Rule-routed nodes (``rule_routed=True``) run the paper's association
routing *online*: a :class:`StreamingRuleServent` maintains its rules
through :meth:`repro.core.streaming.StreamingRules.make_counts` — the
§VI immediate-update algorithm — observing one ``(query upstream, reply
downstream)`` pair per QueryHit it routes backwards, and forwarding a
covered query only to the top-k rule consequents.  Uncovered sources
flood, exactly the paper's incremental-deployment fallback, so a
rule-routed daemon interoperates with vanilla flooding peers on the
same overlay.

With a ``state_dir`` the learned counts become durable state
(:mod:`repro.persist`): every observed pair is journaled to a WAL as
it is pushed, a background task checkpoints the counts every
``checkpoint_interval`` seconds, and a restarted daemon warm-recovers
— snapshot plus WAL-tail replay — instead of re-flooding while its
window refills.
"""

from __future__ import annotations

import asyncio
import zlib
from time import perf_counter

from repro.core.streaming import StreamingRules
from repro.live.connection import (
    ConnectionConfig,
    PeerConnection,
    TransportOpener,
    accept_handshake,
    aclose_writer,
    backoff_delays,
    dial_peer,
)
from repro.live.stats import NodeStats
from repro.obs.http import ObsHttpServer
from repro.obs.instruments import NodeInstruments
from repro.obs.logging import RateLimiter, bind_node, get_logger
from repro.obs.registry import MetricsRegistry
from repro.persist.state import PersistentState
from repro.network.protocol import (
    PAYLOAD_QUERY,
    PAYLOAD_QUERY_HIT,
    DescriptorHeader,
    ProtocolError,
    ReplyRoutingTable,
    encode_message,
)
from repro.network.servent import LOCAL, Servent, SharedFile

__all__ = ["LiveServent", "StreamingRuleServent"]

_log = get_logger("live.node")
_log_limiter = RateLimiter(5.0)


class StreamingRuleServent(Servent):
    """A servent whose forwarding follows live streaming-rule counts.

    The in-process :class:`~repro.network.servent.RuleRoutedServent`
    carries its own ad-hoc pair counter; this variant plugs into the
    evaluated §VI streaming strategy instead, so the daemon's routing
    quality is the quantity the reproduction already measures offline.
    """

    def __init__(
        self,
        servent_guid: int,
        *,
        rules: StreamingRules,
        top_k: int = 2,
        stats: NodeStats | None = None,
        instruments: NodeInstruments | None = None,
        persist: PersistentState | None = None,
        **kwargs,
    ) -> None:
        super().__init__(servent_guid, **kwargs)
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        #: durable-state manager (or None for a memory-only servent).
        #: Recovery happens here, at construction: the servent never
        #: routes a single query on cold counts when warm ones exist.
        self.persist = persist
        if persist is not None:
            self.counts, self.recovery = persist.recover(rules)
        else:
            self.counts = rules.make_counts()
            self.recovery = None
        self.top_k = top_k
        #: Routing decisions are tallied *here*, as they happen, into the
        #: owning node's :class:`NodeStats` (or a private one when run
        #: standalone) — a mid-run scrape must see current counters, not
        #: values back-filled at snapshot time.
        self.stats = stats if stats is not None else NodeStats()
        self._instr = instruments
        self._time_regen = instruments is not None and instruments.enabled

    # Legacy counter names, now views over the eagerly updated stats.
    @property
    def n_rule_routed(self) -> int:
        return self.stats.queries_rule_routed

    @property
    def n_flooded(self) -> int:
        return self.stats.queries_flooded

    @property
    def n_rule_regenerations(self) -> int:
        return self.stats.rule_regenerations

    def _targets(self, antecedent: int, exclude: int | None) -> list[int]:
        """Live rule consequents for ``antecedent``, best first, capped
        at top-k *after* dropping departed connections — a dead peer must
        not eat a forwarding slot."""
        return [
            c
            for c in self.counts.consequents(antecedent)
            if c in self.connections and c != exclude
        ][: self.top_k]

    def _trace_rule_routed(
        self, guid: int, antecedent: int, targets: list[int], ttl: int
    ) -> None:
        """Record one ``rule_routed`` event per target, with the matched
        rule's live support/confidence attached — the explainability
        payload the cluster-wide collector surfaces per hop."""
        for conn in targets:
            support, confidence = self.counts.rule_stats(antecedent, conn)
            self.tracer.record(
                guid,
                self._trace_id,
                "rule_routed",
                peer=conn,
                ttl=ttl,
                antecedent=antecedent,
                consequent=conn,
                confidence=confidence,
                support=support,
            )

    def issue_query(self, search: str) -> tuple[int, list[tuple[int, bytes]]]:
        guid, frames = super().issue_query(search)
        targets = self._targets(LOCAL, None)
        if targets:
            keep = set(targets)
            frames = [(conn, frame) for conn, frame in frames if conn in keep]
            self.stats.queries_rule_routed += 1
            if self.tracer is not None and self.tracer.wants(guid):
                self._trace_rule_routed(
                    guid, LOCAL, [conn for conn, _frame in frames], self.max_ttl
                )
        else:
            self.stats.queries_flooded += 1
            if self.tracer is not None and self.tracer.wants(guid):
                for conn, _frame in frames:
                    self.tracer.record(
                        guid,
                        self._trace_id,
                        "flooded",
                        peer=conn,
                        ttl=self.max_ttl,
                        reason="no_covering_rule",
                    )
        return guid, frames

    def _forward(
        self, from_conn: int, header, payload, *, flood_reason: str = ""
    ) -> list[tuple[int, bytes]]:
        if header.payload_type != PAYLOAD_QUERY or header.ttl <= 1:
            return super()._forward(from_conn, header, payload)
        targets = self._targets(from_conn, exclude=from_conn)
        if not targets:
            self.stats.queries_flooded += 1
            return super()._forward(
                from_conn, header, payload, flood_reason="no_covering_rule"
            )
        self.stats.queries_rule_routed += 1
        if self.tracer is not None and self.tracer.wants(header.guid):
            self._trace_rule_routed(
                header.guid, from_conn, targets, header.ttl - 1
            )
        aged = header.aged()
        frame = encode_message(aged.guid, aged.ttl, aged.hops, payload)
        return [(conn, frame) for conn in targets]

    def _route_back(self, routes: ReplyRoutingTable, conn_id: int, header, payload):
        if routes is self.query_routes and header.payload_type == PAYLOAD_QUERY_HIT:
            upstream = routes.route_for(header.guid)
            if upstream is not None:
                # §III-B's learning event, fed straight into the §VI
                # streaming counts: a query from `upstream` (or LOCAL)
                # was satisfied through `conn_id`.
                if self._time_regen:
                    t0 = perf_counter()
                    promoted = self.counts.push(upstream, conn_id)
                    if promoted:
                        # the push that crossed the threshold *is* the
                        # live equivalent of a batch regeneration
                        self._instr.observe_rule_regeneration(
                            perf_counter() - t0
                        )
                else:
                    promoted = self.counts.push(upstream, conn_id)
                if self.persist is not None:
                    # journal *after* the in-memory push: a WAL record
                    # always describes a pair the counts have seen, so
                    # replay can never double-apply or skip one.
                    self.persist.record_pair(upstream, conn_id)
                if promoted:
                    self.stats.rule_regenerations += 1
        return super()._route_back(routes, conn_id, header, payload)


class LiveServent:
    """One live node: TCP server + supervised outbound links + servent."""

    def __init__(
        self,
        node_id: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        library: list[SharedFile] | None = None,
        rule_routed: bool = False,
        rules: StreamingRules | None = None,
        top_k: int = 2,
        max_ttl: int = 7,
        config: ConnectionConfig | None = None,
        registry: MetricsRegistry | None = None,
        tracer=None,
        obs_port: int | None = None,
        obs_host: str | None = None,
        open_transport: TransportOpener | None = None,
        state_dir: str | None = None,
        checkpoint_interval: float = 30.0,
        fsync: str = "interval",
    ) -> None:
        if node_id < 0:
            raise ValueError("node_id must be non-negative")
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        self.node_id = node_id
        self.host = host
        self.port = port
        self.config = config or ConnectionConfig()
        self.stats = NodeStats()
        self.registry = registry
        self.tracer = tracer
        self.instruments = (
            NodeInstruments(registry, node_id) if registry is not None else None
        )
        self.checkpoint_interval = float(checkpoint_interval)
        persist = None
        if state_dir is not None:
            if not rule_routed:
                raise ValueError(
                    "state_dir persists learned rule state; it requires "
                    "rule_routed=True"
                )
            persist = PersistentState(
                state_dir,
                fsync=fsync,
                label=str(node_id),
                registry=registry,
            )
        guid = 100_000 + node_id
        if rule_routed:
            self.servent: Servent = StreamingRuleServent(
                guid,
                rules=rules
                or StreamingRules(min_support_count=2, window_pairs=512),
                top_k=top_k,
                library=library,
                max_ttl=max_ttl,
                stats=self.stats,
                instruments=self.instruments,
                persist=persist,
            )
        else:
            self.servent = Servent(guid, library=library, max_ttl=max_ttl)
        self.persist = persist
        self._checkpoint_task: asyncio.Task | None = None
        self.servent.tracer = tracer
        self.servent.trace_node = node_id
        self._server: asyncio.Server | None = None
        self._obs_server: ObsHttpServer | None = None
        if obs_port is not None:
            if registry is None:
                raise ValueError("obs_port requires a metrics registry")
            self._obs_server = ObsHttpServer(
                render=self.render_metrics,
                health=self.health,
                trace=self.render_trace if tracer is not None else None,
                host=obs_host if obs_host is not None else host,
                port=obs_port,
            )
        self._open_transport = open_transport
        self._conns: dict[int, PeerConnection] = {}
        self._supervisors: dict[tuple[str, int], asyncio.Task] = {}
        #: finalizer tasks reaping superseded connections; gathered on close.
        self._reapers: set[asyncio.Task] = set()
        self._closed = False

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> None:
        """Bind and listen; ``port=0`` resolves to the ephemeral port."""
        with bind_node(self.node_id):
            self._server = await asyncio.start_server(
                self._accept, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            if self._obs_server is not None:
                await self._obs_server.start()
                _log.info(
                    "metrics endpoint up",
                    extra={
                        "url": f"http://{self._obs_server.host}:"
                        f"{self._obs_server.port}/metrics"
                    },
                )
            if self.persist is not None:
                self._checkpoint_task = asyncio.create_task(
                    self._checkpoint_loop()
                )
            _log.info(
                "listening", extra={"host": self.host, "port": self.port}
            )

    @property
    def recovery(self):
        """The last warm-recovery record (a
        :class:`~repro.persist.state.RecoveryInfo`), or None for nodes
        without a state directory."""
        return getattr(self.servent, "recovery", None)

    def checkpoint(self) -> dict | None:
        """Snapshot the live rule counts and compact the WAL now.

        Returns the snapshot header, or None when this node has no
        state directory (or its persistence is already closed).
        """
        if self.persist is None or self.persist.closed:
            return None
        return self.persist.checkpoint(self.servent.counts)

    async def _checkpoint_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.checkpoint_interval)
                try:
                    self.checkpoint()
                except OSError as exc:
                    _log.error(
                        "checkpoint failed", extra={"error": str(exc)}
                    )
        except asyncio.CancelledError:
            pass

    @property
    def obs_port(self) -> int | None:
        """The resolved ``/metrics`` port, when the endpoint is enabled."""
        return self._obs_server.port if self._obs_server is not None else None

    async def close(self, *, checkpoint: bool = True) -> None:
        """Stop supervising, stop listening, drop every peer.

        Connections get the graceful teardown (flush queued frames, then
        await their tasks and transports — see
        :meth:`PeerConnection.aclose`), so a closed node leaves no
        pending tasks or unclosed transports behind.

        A node with a state directory takes a final checkpoint once the
        last connection is down (so the snapshot captures every pair
        this incarnation learned); ``checkpoint=False`` skips it — the
        hard-crash simulation, leaving recovery to the WAL tail.
        """
        self._closed = True
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            await asyncio.gather(self._checkpoint_task, return_exceptions=True)
            self._checkpoint_task = None
        for task in self._supervisors.values():
            task.cancel()
        if self._supervisors:
            await asyncio.gather(
                *self._supervisors.values(), return_exceptions=True
            )
        self._supervisors.clear()
        if self._obs_server is not None:
            await self._obs_server.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        conns = list(self._conns.values())
        if conns:
            await asyncio.gather(
                *(conn.aclose(flush=True) for conn in conns),
                return_exceptions=True,
            )
        if self._reapers:
            await asyncio.gather(*list(self._reapers), return_exceptions=True)
        if self.persist is not None and not self.persist.closed:
            if checkpoint:
                try:
                    self.checkpoint()
                except OSError as exc:
                    _log.error(
                        "final checkpoint failed", extra={"error": str(exc)}
                    )
            self.persist.close()
        _log.info("closed", extra={"node": self.node_id})

    @property
    def closed(self) -> bool:
        return self._closed

    # -- peering ----------------------------------------------------------
    def add_peer(
        self, host: str, port: int, *, peer_id: int | None = None
    ) -> None:
        """Dial a peer and keep the link alive: on loss or dial failure,
        retry with exponential backoff (``config.max_retries`` bounds
        consecutive failures; None retries forever).  ``peer_id`` pins
        the expected overlay node id; left None, the id learned in the
        handshake is trusted."""
        key = (host, port)
        if key in self._supervisors or self._closed:
            return
        with bind_node(self.node_id):
            self._supervisors[key] = asyncio.create_task(
                self._supervise(host, port, peer_id)
            )

    async def _supervise(
        self, host: str, port: int, expected_id: int | None
    ) -> None:
        ever_connected = False
        # Per-peer salt: with config.retry_jitter > 0, supervisors that
        # lost their links at the same instant (healed partition,
        # restarted hub) draw decorrelated — but seeded, replayable —
        # backoff schedules instead of thundering back together.
        salt = zlib.crc32(f"{self.node_id}|{host}:{port}".encode())
        delays = backoff_delays(self.config, salt=salt)
        failures = 0
        instr = self.instruments
        peer_label = expected_id if expected_id is not None else f"{host}:{port}"
        try:
            while not self._closed:
                try:
                    reader, writer, peer_id = await dial_peer(
                        host,
                        port,
                        self.node_id,
                        self.config,
                        open_transport=self._open_transport,
                    )
                    if expected_id is not None and peer_id != expected_id:
                        await aclose_writer(writer)
                        raise ProtocolError(
                            f"expected node {expected_id} at {host}:{port}, "
                            f"found {peer_id}"
                        )
                except (OSError, ProtocolError, asyncio.TimeoutError) as exc:
                    self.stats.dial_failures += 1
                    failures += 1
                    suppressed = _log_limiter.allow(
                        ("dial", self.node_id, host, port)
                    )
                    if suppressed is not None:
                        _log.warning(
                            "dial failed",
                            extra={
                                "target": f"{host}:{port}",
                                "error": str(exc) or type(exc).__name__,
                                "failures": failures,
                                "suppressed": suppressed,
                            },
                        )
                    if (
                        self.config.max_retries is not None
                        and failures >= self.config.max_retries
                    ):
                        _log.error(
                            "giving up on peer",
                            extra={
                                "target": f"{host}:{port}",
                                "failures": failures,
                            },
                        )
                        return
                    delay = next(delays)
                    if instr is not None:
                        instr.set_backoff(peer_label, delay)
                    await asyncio.sleep(delay)
                    continue
                failures = 0
                delays = backoff_delays(self.config, salt=salt)  # reset
                if instr is not None:
                    instr.set_backoff(peer_label, 0.0)
                conn = self._register(peer_id, reader, writer)
                if ever_connected:
                    self.stats.reconnects += 1
                    _log.info(
                        "reconnected",
                        extra={"peer": peer_id, "target": f"{host}:{port}"},
                    )
                ever_connected = True
                await conn.wait_closed()
                # Reap the dead connection's tasks and transport *before*
                # re-dialing: a tight reconnect loop must not accumulate
                # cancelled-but-unawaited tasks or unclosed transports.
                await conn.aclose()
                if self._closed:
                    return
                delay = next(delays)
                if instr is not None:
                    instr.set_backoff(peer_label, delay)
                await asyncio.sleep(delay)
        except asyncio.CancelledError:
            pass

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            peer_id = await asyncio.wait_for(
                accept_handshake(reader, writer, self.node_id),
                self.config.handshake_timeout,
            )
        except (ProtocolError, asyncio.TimeoutError, OSError) as exc:
            self.stats.protocol_errors += 1
            suppressed = _log_limiter.allow(("handshake", self.node_id))
            if suppressed is not None:
                with bind_node(self.node_id):
                    _log.warning(
                        "inbound handshake failed",
                        extra={
                            "error": str(exc) or type(exc).__name__,
                            "suppressed": suppressed,
                        },
                    )
            await aclose_writer(writer)
            return
        with bind_node(self.node_id):
            self._register(peer_id, reader, writer)

    def _register(
        self,
        peer_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> PeerConnection:
        stale = self._conns.pop(peer_id, None)
        if stale is not None:
            # Reconnect superseding a half-dead link: hard-close now, and
            # reap its tasks/transport in the background (tracked so
            # node.close() can await any reaper still in flight).
            stale.close()
            reaper = asyncio.create_task(stale.aclose())
            self._reapers.add(reaper)
            reaper.add_done_callback(self._reapers.discard)
        conn = PeerConnection(
            peer_id,
            reader,
            writer,
            config=self.config,
            stats=self.stats,
            on_message=self._handle,
            on_close=self._conn_closed,
            make_keepalive=self.servent.make_ping,
            instruments=self.instruments,
        )
        self._conns[peer_id] = conn
        self.servent.connect(peer_id)
        self.stats.connects += 1
        _log.debug("peer connected", extra={"peer": peer_id})
        conn.start()
        return conn

    def _conn_closed(self, conn: PeerConnection) -> None:
        if self._conns.get(conn.peer_id) is conn:
            del self._conns[conn.peer_id]
            self.servent.disconnect(conn.peer_id)

    @property
    def connected_peers(self) -> set[int]:
        return set(self._conns)

    @property
    def pending_frames(self) -> int:
        """Frames sitting in send queues (the backpressure backlog)."""
        return sum(conn.pending_frames for conn in self._conns.values())

    # -- traffic ----------------------------------------------------------
    def _handle(self, peer_id: int, header: DescriptorHeader, payload) -> None:
        if peer_id not in self.servent.connections:
            return  # raced with a disconnect
        hits_before = len(self.servent.results)
        outgoing = self.servent.handle_message(peer_id, header, payload)
        for conn_id, frame in outgoing:
            self._send(conn_id, frame)
        self.stats.hits_received += len(self.servent.results) - hits_before

    def _send(self, conn_id: int, frame: bytes) -> bool:
        conn = self._conns.get(conn_id)
        if conn is None or not conn.send(frame):
            self.stats.frames_dropped += 1
            if conn is not None and len(frame) > 16 and frame[16] == PAYLOAD_QUERY:
                # Overload shedding: the bounded send queue refused a
                # Query forward.  Count it as shed — the query already
                # reached this node and may still resolve along the
                # copies that did fit, so this is flood-fallback loss
                # accounting, not an error.
                self.stats.queries_shed += 1
            suppressed = _log_limiter.allow(("drop", self.node_id, conn_id))
            if suppressed is not None:
                _log.debug(
                    "frame dropped",
                    extra={
                        "peer": conn_id,
                        "reason": "no_connection" if conn is None else "queue_full",
                        "suppressed": suppressed,
                    },
                )
            return False
        self.stats.frames_out += 1
        return True

    def issue_query(self, search: str) -> int:
        """Originate a Query (rule-routed when rules cover this origin,
        flooded otherwise); returns its GUID.  Hits arrive asynchronously
        in :attr:`results`."""
        guid, frames = self.servent.issue_query(search)
        self.stats.queries_issued += 1
        for conn_id, frame in frames:
            self._send(conn_id, frame)
        return guid

    @property
    def results(self):
        """QueryHits that answered locally issued queries."""
        return self.servent.results

    def snapshot(self) -> dict[str, int]:
        """Current counters as a dict.

        Routing decisions are tallied into :attr:`stats` eagerly by
        :class:`StreamingRuleServent` (which shares this node's stats
        object), so a snapshot — or a live ``/metrics`` scrape — is
        accurate mid-run with no back-filling step.
        """
        return self.stats.as_dict()

    # -- observability ----------------------------------------------------
    def sync_metrics(self) -> None:
        """Mirror snapshot-style series into the metrics registry.

        Called at scrape time (by :meth:`render_metrics` and the cluster
        harness) so steady-state traffic pays nothing for the counters a
        scraper reads.
        """
        if self.instruments is None:
            return
        counts = getattr(self.servent, "counts", None)
        self.instruments.sync(
            self.stats,
            pending_frames=self.pending_frames,
            connected_peers=len(self._conns),
            n_rules=counts.n_rules() if counts is not None else None,
        )

    def render_metrics(self) -> str:
        """The node's registry in Prometheus text format, freshly synced."""
        if self.registry is None:
            return ""
        self.sync_metrics()
        return self.registry.render()

    def render_trace(self) -> str:
        """The node's retained query spans as JSON lines (``/trace``)."""
        if self.tracer is None:
            return ""
        return self.tracer.export_jsonl()

    def health(self) -> dict:
        """The ``/healthz`` document: liveness plus a peering summary."""
        return {
            "status": "closing" if self._closed else "ok",
            "node": self.node_id,
            "port": self.port,
            "peers": sorted(self._conns),
            "pending_frames": self.pending_frames,
        }
