"""Bench `churn-sensitivity`: association routing under peer turnover.

Robustness ablation for the dynamic-network setting the paper targets:
online per-reply rule learning keeps tables fresh, so fallback share and
hit rate stay flat under churn, and the traffic advantage over flooding
survives heavy turnover.
"""

from benchmarks.conftest import run_and_report


def test_churn_sensitivity(benchmark):
    run_and_report(benchmark, "churn-sensitivity")
