"""Tests for repro.trace.io."""

import pytest

from repro.trace.io import read_queries, read_replies, write_queries, write_replies
from repro.trace.records import QueryRecord, ReplyRecord


def sample_queries():
    return [
        QueryRecord(time=1.25, guid=11, source=1, query_string="topic001 item00001"),
        QueryRecord(time=2.5, guid=22, source=2, query_string="topic002 item00002 live"),
    ]


def sample_replies():
    return [
        ReplyRecord(time=1.5, guid=11, replier=9, host=1000, file_name="cat001/file00001.dat"),
    ]


class TestQueryRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "queries.tsv"
        n = write_queries(path, sample_queries())
        assert n == 2
        table = read_queries(path)
        assert len(table) == 2
        assert table.row(0) == (1.25, 11, 1, "topic001 item00001")
        assert table.row(1) == (2.5, 22, 2, "topic002 item00002 live")

    def test_rejects_tab_in_string(self, tmp_path):
        bad = [QueryRecord(time=1.0, guid=1, source=1, query_string="a\tb")]
        with pytest.raises(ValueError):
            write_queries(tmp_path / "q.tsv", bad)

    def test_bad_header_detected(self, tmp_path):
        path = tmp_path / "bogus.tsv"
        path.write_text("not a header\n")
        with pytest.raises(ValueError):
            read_queries(path)


class TestReplyRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "replies.tsv"
        assert write_replies(path, sample_replies()) == 1
        table = read_replies(path)
        assert table.row(0) == (1.5, 11, 9, 1000, "cat001/file00001.dat")

    def test_bad_header_detected(self, tmp_path):
        path = tmp_path / "bogus.tsv"
        path.write_text("time\tguid\n")
        with pytest.raises(ValueError):
            read_replies(path)

    def test_empty_file_roundtrip(self, tmp_path):
        path = tmp_path / "empty.tsv"
        write_replies(path, [])
        assert len(read_replies(path)) == 0
