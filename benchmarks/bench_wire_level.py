"""Wire-level bench: the paper's routing as deployed Gnutella software.

Runs keyword workloads over byte-framed servent networks — vanilla
flooding vs :class:`RuleRoutedServent` — and reports frames per query.
This is the §I deployment story end to end: "it can be deployed in nodes
in current systems without requiring that all nodes support this method."

Also the observability cost gate: the same workload with query tracing
attached to every servent versus the default disabled path (``tracer is
None`` guards), reported as a ratio.  The disabled path must stay
no-op-cheap — that is the contract that lets the live daemon carry
instrumentation hooks unconditionally.
"""

import time

import numpy as np

from benchmarks.conftest import register_report
from repro.network.topology import random_regular
from repro.network.wirenet import WireNetwork
from repro.obs.tracing import QueryTracer

VOCAB = [
    "alpha", "bravo", "cedar", "delta", "ember", "flint", "gale", "harbor",
]


def _run(
    rule_routed: bool,
    seed: int = 11,
    n_nodes: int = 40,
    *,
    tracer: QueryTracer | None = None,
):
    topo = random_regular(n_nodes, 4, rng=np.random.default_rng(seed))
    net = WireNetwork(topo, rule_routed=rule_routed)
    if tracer is not None:
        for node_id, servent in enumerate(net.servents):
            servent.tracer = tracer
            servent.trace_node = node_id
    net.stock_random_libraries(np.random.default_rng(seed + 1), vocabulary=VOCAB)
    if rule_routed:
        net.run_workload(
            np.random.default_rng(seed + 2), vocabulary=VOCAB, n_queries=250
        )
    return net.run_workload(
        np.random.default_rng(seed + 3), vocabulary=VOCAB, n_queries=120
    )


def test_wire_level_rule_routing(benchmark):
    def compare():
        vanilla = _run(rule_routed=False)
        routed = _run(rule_routed=True)
        return vanilla, routed

    vanilla, routed = benchmark.pedantic(compare, rounds=1, iterations=1)
    register_report(
        "wire-level deployment (byte-framed servents, 40 nodes)\n"
        "------------------------------------------------------\n"
        f"vanilla flooding : frames/query={vanilla['frames_per_query']:.1f} "
        f"answer_rate={vanilla['answer_rate']:.3f}\n"
        f"rule-routed      : frames/query={routed['frames_per_query']:.1f} "
        f"answer_rate={routed['answer_rate']:.3f}\n"
        f"frame reduction  : {vanilla['frames_per_query'] / routed['frames_per_query']:.2f}x"
    )
    assert routed["frames_per_query"] < vanilla["frames_per_query"]
    assert routed["answer_rate"] > vanilla["answer_rate"] - 0.25


def test_wire_level_instrumentation_overhead(benchmark):
    """Gate: the disabled instrumentation path must stay no-op-cheap.

    Times the identical wire-level workload with tracing off (the
    ``tracer is None`` guards every deployment pays) and with a live
    :class:`QueryTracer` recording every hop, taking the best of several
    repeats to shed scheduler noise.  Asserts the *disabled* path is not
    materially slower than the fully traced one — i.e. the guards
    themselves cost nothing that this bench can see — and reports the
    enabled/disabled ratio.
    """

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    def compare():
        off = best_of(lambda: _run(rule_routed=True))
        tracer = QueryTracer(max_traces=4096)
        on = best_of(lambda: _run(rule_routed=True, tracer=tracer))
        return off, on, tracer

    off, on, tracer = benchmark.pedantic(compare, rounds=1, iterations=1)
    ratio = on / off if off > 0 else float("inf")
    register_report(
        "wire-level instrumentation overhead (tracing on vs off)\n"
        "-------------------------------------------------------\n"
        f"disabled (tracer=None) : {off * 1e3:8.2f} ms\n"
        f"enabled  (QueryTracer) : {on * 1e3:8.2f} ms\n"
        f"enabled/disabled ratio : {ratio:.3f}x "
        f"({len(tracer)} traces retained)"
    )
    assert len(tracer) > 0  # the enabled run really recorded hops
    # Generous bound: disabled must not be slower than enabled by more
    # than scheduler noise — the guards are attribute checks, nothing
    # else.  (Tighter relative bounds flake on shared CI runners.)
    assert off <= on * 1.25
