"""Tests for repro.network.topology."""

import numpy as np
import pytest

from repro.network.topology import (
    Topology,
    barabasi_albert,
    erdos_renyi,
    random_regular,
)


class TestTopology:
    def test_basic_adjacency(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.neighbors(1) == (0, 2)
        assert topo.degree(0) == 1
        assert topo.n_edges == 3

    def test_duplicate_edges_collapsed(self):
        topo = Topology(3, [(0, 1), (1, 0), (0, 1)])
        assert topo.n_edges == 1

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Topology(3, [(1, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Topology(3, [(0, 5)])

    def test_edges_listing(self):
        topo = Topology(3, [(2, 0), (0, 1)])
        assert set(topo.edges()) == {(0, 1), (0, 2)}

    def test_has_edge(self):
        topo = Topology(3, [(0, 1)])
        assert topo.has_edge(0, 1) and topo.has_edge(1, 0)
        assert not topo.has_edge(0, 2)

    def test_connectivity(self):
        connected = Topology(3, [(0, 1), (1, 2)])
        disconnected = Topology(4, [(0, 1), (2, 3)])
        assert connected.is_connected()
        assert not disconnected.is_connected()

    def test_component_of(self):
        topo = Topology(5, [(0, 1), (1, 2), (3, 4)])
        assert topo.component_of(0) == {0, 1, 2}
        assert topo.component_of(4) == {3, 4}

    def test_shortest_path_length(self):
        topo = Topology(5, [(0, 1), (1, 2), (2, 3)])
        assert topo.shortest_path_length(0, 3) == 3
        assert topo.shortest_path_length(0, 0) == 0
        assert topo.shortest_path_length(0, 4) is None


class TestRandomRegular:
    def test_degrees_exact(self, rng):
        topo = random_regular(60, 4, rng=rng)
        assert all(d == 4 for d in topo.degrees())

    def test_connected(self, rng):
        assert random_regular(100, 6, rng=rng).is_connected()

    def test_matches_networkx_regularity_oracle(self):
        # Degrees and simple-graph properties checked against networkx.
        nx = pytest.importorskip("networkx")
        topo = random_regular(80, 6, rng=np.random.default_rng(3))
        g = nx.Graph(topo.edges())
        assert set(dict(g.degree()).values()) == {6}
        assert nx.is_connected(g)

    def test_odd_total_stubs_rejected(self, rng):
        with pytest.raises(ValueError):
            random_regular(5, 3, rng=rng)

    def test_degree_bounds(self, rng):
        with pytest.raises(ValueError):
            random_regular(5, 5, rng=rng)


class TestErdosRenyi:
    def test_always_connected(self, rng):
        topo = erdos_renyi(200, 4.0, rng=rng)
        assert topo.is_connected()

    def test_average_degree_close(self, rng):
        topo = erdos_renyi(400, 6.0, rng=rng)
        avg = 2 * topo.n_edges / topo.n_nodes
        assert 5.0 < avg < 7.5  # repair adds a few edges

    def test_rejects_bad_degree(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi(10, 0.0, rng=rng)


class TestBarabasiAlbert:
    def test_connected(self, rng):
        assert barabasi_albert(150, 3, rng=rng).is_connected()

    def test_power_law_ish_hub_exists(self, rng):
        topo = barabasi_albert(300, 2, rng=rng)
        degrees = topo.degrees()
        assert max(degrees) > 4 * (2 * topo.n_edges / topo.n_nodes)

    def test_min_degree_at_least_m(self, rng):
        topo = barabasi_albert(100, 3, rng=rng)
        assert min(topo.degrees()) >= 3

    def test_rejects_bad_m(self, rng):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0, rng=rng)
        with pytest.raises(ValueError):
            barabasi_albert(10, 10, rng=rng)
