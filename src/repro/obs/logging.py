"""Structured logging for the repro stack.

Built on :mod:`logging` so standard tooling (handlers, levels, pytest's
``caplog``) keeps working, with three additions the live daemon needs:

* **JSON-lines output** — :class:`JsonFormatter` renders one JSON object
  per record (``ts``, ``level``, ``logger``, ``msg`` plus any extra
  fields), so a cluster's interleaved node logs stay machine-parseable;
* **ambient identity** — :func:`bind_node` / :func:`bind_peer` put the
  current overlay node/peer id in :mod:`contextvars`; every record
  emitted from that context (including from asyncio tasks created inside
  it, which inherit the context snapshot) carries ``node``/``peer``
  without threading ids through call signatures;
* **rate limiting** — :class:`RateLimiter` bounds per-key log volume so
  a peer spraying malformed frames cannot turn the protocol-error path
  into a log flood; suppressed counts are reported when a key re-opens.

Logs go to *stderr* by default: stdout stays reserved for the CLI's
report tables, per the repo's report-on-stdout convention.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import sys
import time
from typing import Iterator

__all__ = [
    "JsonFormatter",
    "PlainFormatter",
    "RateLimiter",
    "bind_node",
    "bind_peer",
    "configure_logging",
    "get_logger",
    "node_id_var",
    "peer_id_var",
]

#: Ambient overlay identity for the current execution context.
node_id_var: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_node_id", default=None
)
peer_id_var: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_peer_id", default=None
)

_ROOT_LOGGER = "repro"

#: record attributes that are logging machinery, not user fields.
_STANDARD_ATTRS = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


@contextlib.contextmanager
def bind_node(node_id: int | None) -> Iterator[None]:
    """Set the ambient node id for the duration of the block."""
    token = node_id_var.set(node_id)
    try:
        yield
    finally:
        node_id_var.reset(token)


@contextlib.contextmanager
def bind_peer(peer_id: int | None) -> Iterator[None]:
    """Set the ambient peer id for the duration of the block."""
    token = peer_id_var.set(peer_id)
    try:
        yield
    finally:
        peer_id_var.reset(token)


def _extra_fields(record: logging.LogRecord) -> dict:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _STANDARD_ATTRS and not key.startswith("_")
    }


class JsonFormatter(logging.Formatter):
    """One JSON object per line; extra= fields become top-level keys."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        node = node_id_var.get()
        if node is not None:
            payload["node"] = node
        peer = peer_id_var.get()
        if peer is not None:
            payload["peer"] = peer
        payload.update(_extra_fields(record))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=repr, separators=(",", ":"))


class PlainFormatter(logging.Formatter):
    """Human-oriented single line: time, level, identity, message, fields."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            time.strftime("%H:%M:%S", time.localtime(record.created)),
            record.levelname[0],
            record.name,
        ]
        node = node_id_var.get()
        if node is not None:
            parts.append(f"node={node}")
        peer = peer_id_var.get()
        if peer is not None:
            parts.append(f"peer={peer}")
        parts.append(record.getMessage())
        fields = _extra_fields(record)
        if fields:
            parts.append(
                " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            )
        line = " ".join(str(p) for p in parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def configure_logging(
    *,
    level: str | int = "warning",
    json_lines: bool = False,
    stream=None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; idempotent.

    Returns the root ``repro`` logger.  Handlers installed by earlier
    calls are replaced, so tests and repeated CLI invocations in one
    process do not stack duplicate outputs.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger(_ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_lines else PlainFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the shared ``repro`` namespace."""
    if name == _ROOT_LOGGER or name.startswith(_ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_LOGGER}.{name}")


class RateLimiter:
    """Per-key token gate: at most one allowed record per ``interval``.

    ``allow(key)`` returns the number of calls suppressed since the key
    last passed (0 on first pass), or ``None`` when the call should be
    suppressed.  Typical use::

        suppressed = limiter.allow(("protocol_error", peer_id))
        if suppressed is not None:
            log.warning("bad frame", extra={"suppressed": suppressed})

    The clock is injectable for tests; keys are evicted lazily once the
    table grows past ``max_keys`` (oldest last-allowed first) so a churn
    of one-shot keys cannot grow memory without bound.
    """

    def __init__(
        self,
        interval: float = 5.0,
        *,
        max_keys: int = 1024,
        clock=time.monotonic,
    ) -> None:
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.interval = interval
        self.max_keys = max_keys
        self._clock = clock
        self._last: dict[object, float] = {}
        self._suppressed: dict[object, int] = {}

    def allow(self, key: object) -> int | None:
        now = self._clock()
        last = self._last.get(key)
        if last is not None and now - last < self.interval:
            self._suppressed[key] = self._suppressed.get(key, 0) + 1
            return None
        if len(self._last) >= self.max_keys and key not in self._last:
            oldest = min(self._last, key=self._last.get)
            del self._last[oldest]
            self._suppressed.pop(oldest, None)
        self._last[key] = now
        return self._suppressed.pop(key, 0)
