"""Smoke tests for the experiment runners (fast subset).

The full per-figure regeneration lives in ``benchmarks/``; here we check
the runners execute and their banded rows pass for the lightest figures.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.parametrize("experiment_id", ["fig1", "fig4"])
def test_trace_experiments_in_band(experiment_id):
    result = run_experiment(experiment_id)
    assert result.all_within_band, result.report()
    assert result.series  # figures carry their plotted series


def test_experiment_result_report_is_printable():
    result = run_experiment("fig1")
    text = result.report()
    assert "fig1" in text
    assert "coverage" in text
