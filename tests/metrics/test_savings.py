"""Tests for repro.metrics.savings (analytic flood-reduction model)."""

import pytest

from repro.metrics.savings import estimate_flood_reduction


class TestEstimate:
    def test_perfect_rules_cost_only_rule_routes(self):
        est = estimate_flood_reduction(
            coverage=1.0, success=1.0, rule_cost=6.0, flood_cost=2000.0
        )
        assert est.expected_messages == pytest.approx(6.0)
        assert est.reduction_factor == pytest.approx(2000.0 / 6.0)

    def test_no_rules_is_pure_flooding(self):
        est = estimate_flood_reduction(
            coverage=0.0, success=0.0, rule_cost=6.0, flood_cost=2000.0
        )
        assert est.expected_messages == pytest.approx(2000.0)
        assert est.reduction_factor == pytest.approx(1.0)

    def test_covered_misses_double_pay(self):
        # Covered but always wrong: every query pays rule route AND flood.
        est = estimate_flood_reduction(
            coverage=1.0, success=0.0, rule_cost=6.0, flood_cost=2000.0
        )
        assert est.expected_messages == pytest.approx(2006.0)
        assert est.reduction_factor < 1.0  # worse than flooding

    def test_paper_operating_point(self):
        """Sliding Window's 0.80/0.79 should predict a >2x reduction."""
        est = estimate_flood_reduction(coverage=0.80, success=0.79)
        assert est.resolved_fraction == pytest.approx(0.632)
        assert 2.0 < est.reduction_factor < 3.5

    def test_prediction_matches_simulated_ratio_loosely(self):
        """The analytic model should agree with the overlay simulation's
        measured flooding/association ratio within a factor of ~1.5."""
        est = estimate_flood_reduction(coverage=0.80, success=0.79)
        simulated_ratio = 2.3  # from the traffic experiment (EXPERIMENTS.md)
        assert simulated_ratio / 1.5 < est.reduction_factor < simulated_ratio * 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"coverage": 1.5, "success": 0.5},
            {"coverage": 0.5, "success": -0.1},
            {"coverage": 0.5, "success": 0.5, "rule_cost": 0.0},
            {"coverage": 0.5, "success": 0.5, "flood_cost": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            estimate_flood_reduction(**kwargs)

    def test_monotone_in_success(self):
        lo = estimate_flood_reduction(coverage=0.8, success=0.3)
        hi = estimate_flood_reduction(coverage=0.8, success=0.9)
        assert hi.reduction_factor > lo.reduction_factor
