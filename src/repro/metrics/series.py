"""Time-series helpers for coverage/success curves."""

from __future__ import annotations

import numpy as np

__all__ = ["moving_average", "decay_halfway_point", "sawtooth_depth"]


def moving_average(values, window: int) -> np.ndarray:
    """Centered-ish moving average (trailing window) of a series.

    The first ``window - 1`` outputs average over the shorter available
    prefix, so the result has the same length as the input.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return arr
    out = np.empty_like(arr)
    csum = np.cumsum(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        total = csum[i] - (csum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def decay_halfway_point(values) -> int | None:
    """First index where a series falls to half its initial value.

    Used to characterize how quickly Static Ruleset degrades (the paper
    describes its success reaching ~0 around the 16th trial).  Returns
    ``None`` if the series never falls that far, or is empty/zero-led.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0 or arr[0] <= 0.0:
        return None
    target = arr[0] / 2.0
    below = np.nonzero(arr <= target)[0]
    return int(below[0]) if below.size else None


def sawtooth_depth(values, period: int) -> float:
    """Mean peak-to-trough drop within consecutive ``period``-length spans.

    Characterizes Lazy Sliding Window's sawtooth (paper Fig. 3): how much
    quality is lost between a regeneration and the end of its lazy span.
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    arr = np.asarray(list(values), dtype=float)
    drops = []
    for start in range(0, arr.size - period + 1, period):
        span = arr[start : start + period]
        drops.append(float(span[0] - span[-1]))
    return float(np.mean(drops)) if drops else float("nan")
