"""Markdown report generation for experiment results.

``python -m repro all --markdown report.md`` regenerates every paper
artifact and writes an EXPERIMENTS.md-style document from the live
results, so the shipped record can always be rebuilt from scratch.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.results import ExperimentResult
from repro.metrics.ascii_chart import sparkline

__all__ = ["result_to_markdown", "build_markdown_report"]


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section."""
    lines = [f"## `{result.experiment_id}` — {result.title}", ""]
    lines.append("| metric | paper | measured | band | status |")
    lines.append("|---|---|---|---|---|")
    for row in result.rows:
        paper = (
            f"{row.paper:.3f}" if isinstance(row.paper, float) else str(row.paper)
        )
        if row.band is None:
            band = "—"
            status = "—"
        else:
            band = f"[{row.band[0]:.2f}, {row.band[1]:.2f}]"
            status = "OK" if row.within_band else "**MISS**"
        lines.append(
            f"| {row.label} | {paper} | {row.measured:.3f} | {band} | {status} |"
        )
    for name in ("coverage", "success"):
        series = result.series.get(name)
        if series:
            lines.append("")
            lines.append(f"`{name}` over blocks: `{sparkline(series)}`")
    lines.append("")
    return "\n".join(lines)


def build_markdown_report(
    results: Iterable[ExperimentResult], *, title: str = "Reproduction report"
) -> str:
    """Assemble a full markdown report from experiment results."""
    results = list(results)
    lines = [f"# {title}", ""]
    n_ok = sum(1 for r in results if r.all_within_band)
    lines.append(
        f"{len(results)} experiments; {n_ok} fully within their acceptance "
        f"bands."
    )
    lines.append("")
    for result in results:
        lines.append(result_to_markdown(result))
    return "\n".join(lines)
