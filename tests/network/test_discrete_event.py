"""Tests for repro.network.discrete_event."""

import pytest

from repro.network.discrete_event import (
    DiscreteEventConfig,
    DiscreteEventNetwork,
    LatencyReport,
)
from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.association import AssociationRoutingPolicy
from repro.routing.flooding import FloodingPolicy

SMALL = OverlayConfig(
    n_nodes=60, degree=4, n_categories=6, files_per_category=30, library_size=20
)


def build(policy="flooding", seed=1):
    overlay = Overlay(SMALL, seed=seed)
    if policy == "flooding":
        overlay.install_policies(lambda nid, ov: FloodingPolicy(nid, ov))
    else:
        overlay.install_policies(
            lambda nid, ov: AssociationRoutingPolicy(nid, ov)
        )
    return overlay


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"link_latency": -1.0},
            {"service_time": 0.0},
            {"query_interarrival": 0.0},
            {"drain_time": 0.0},
            {"fallback_timeout": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DiscreteEventConfig(**kwargs)


class TestDiscreteEventNetwork:
    def test_runs_and_answers(self):
        net = DiscreteEventNetwork(build(), DiscreteEventConfig())
        report = net.run(50, seed=2)
        assert report.n_queries == 50
        assert report.answer_rate > 0.5
        assert report.total_messages > 0

    def test_latency_at_least_two_legs(self):
        """A non-local answer needs at least query out + hit back."""
        cfg = DiscreteEventConfig(link_latency=0.1, service_time=0.01)
        net = DiscreteEventNetwork(build(seed=3), cfg)
        report = net.run(40, seed=4)
        # Minimum non-zero latency: 2 * (service + link).
        nonzero_floor = 2 * (0.01 + 0.1)
        assert report.first_result_latency.minimum >= 0.0
        assert report.p_high_latency >= nonzero_floor

    def test_deterministic(self):
        a = DiscreteEventNetwork(build(seed=5), DiscreteEventConfig()).run(30, seed=6)
        b = DiscreteEventNetwork(build(seed=5), DiscreteEventConfig()).run(30, seed=6)
        assert a.total_messages == b.total_messages
        assert a.n_answered == b.n_answered
        assert a.mean_latency == b.mean_latency

    def test_latency_grows_under_load(self):
        light = DiscreteEventNetwork(
            build(seed=7), DiscreteEventConfig(query_interarrival=1.0)
        ).run(80, seed=8)
        heavy = DiscreteEventNetwork(
            build(seed=7), DiscreteEventConfig(query_interarrival=0.002)
        ).run(80, seed=8)
        assert heavy.mean_latency > light.mean_latency
        assert heavy.peak_queue_length > light.peak_queue_length

    def test_fallback_raises_answer_rate_for_rule_routing(self):
        overlay_a = build("association", seed=9)
        overlay_a.run_workload(0, warmup=200)
        no_fb = DiscreteEventNetwork(
            overlay_a, DiscreteEventConfig(fallback_timeout=0.0)
        ).run(80, seed=10)
        overlay_b = build("association", seed=9)
        overlay_b.run_workload(0, warmup=200)
        with_fb = DiscreteEventNetwork(
            overlay_b, DiscreteEventConfig(fallback_timeout=1.0)
        ).run(80, seed=10)
        assert with_fb.answer_rate >= no_fb.answer_rate
        assert with_fb.total_messages >= no_fb.total_messages

    def test_negative_queries_rejected(self):
        net = DiscreteEventNetwork(build(), DiscreteEventConfig())
        with pytest.raises(ValueError):
            net.run(-1)

    def test_report_empty(self):
        report = LatencyReport()
        assert report.answer_rate == 0.0
