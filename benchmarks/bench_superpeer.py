"""Bench `superpeer`: §II — the two-tier super-peer baseline (ref [14]).

Paper: super-peers index their leaves' content and flood among
themselves; "Although this approach has the benefit of reducing the
number of hops required for queries, it can still suffer from the effects
of flooding on larger systems."
"""

from benchmarks.conftest import run_and_report


def test_superpeer_baseline(benchmark):
    run_and_report(benchmark, "superpeer")
