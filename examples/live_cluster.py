#!/usr/bin/env python
"""The paper's rule-routed node as a live network service.

Boots a six-node star of asyncio TCP servents on loopback ports, drives
a query plan with per-leaf interest locality through it twice — once
with association routing (rules learned online from QueryHits, §VI
streaming style) and once with plain flooding — then kills a leaf to
show the reconnect supervisor at work, and prints the traffic ledger.

Everything travels over real sockets: the Gnutella 0.4 frames are
reassembled from arbitrary TCP chunks, slow peers are held back by
bounded send queues, and dead peers are re-dialed with exponential
backoff.

Run:  python examples/live_cluster.py
"""

import asyncio

import numpy as np

from repro.live import LiveCluster, make_vocabulary
from repro.network.topology import Topology


def targeted_plan(n_leaves, vocabulary, n_queries, rng):
    """Each leaf queries terms owned by the next leaf around the star —
    stable interest locality the center's rules can learn."""
    n_nodes = n_leaves + 1
    owned = {
        node: [t for i, t in enumerate(vocabulary) if i % n_nodes == node]
        for node in range(n_nodes)
    }
    plan = []
    for q in range(n_queries):
        origin = 1 + q % n_leaves
        target = 1 + (origin % n_leaves)
        terms = owned[target]
        plan.append((origin, terms[int(rng.integers(0, len(terms)))]))
    return plan


async def run_mode(topology, vocab, plan, *, rule_routed):
    async with LiveCluster(topology, rule_routed=rule_routed, top_k=1) as c:
        c.stock_partitioned_library(vocab)
        summary = await c.run_plan(plan)
        totals = c.totals()
    return summary, totals


async def main():
    topology = Topology(6, [(0, i) for i in range(1, 6)])
    vocab = make_vocabulary(20)
    plan = targeted_plan(5, vocab, 150, np.random.default_rng(7))

    print("== association routing vs flooding, same plan, real TCP ==")
    results = {}
    for mode, rule_routed in (("rules", True), ("flood", False)):
        summary, totals = await run_mode(
            topology, vocab, plan, rule_routed=rule_routed
        )
        results[mode] = summary
        print(
            f"{mode:>6}: answered {summary['answered']:.0f}/"
            f"{summary['n_queries']:.0f}, "
            f"{summary['frames_per_answered']:.2f} frames/answered "
            f"(rule-routed decisions: {totals['queries_rule_routed']}, "
            f"flood fallbacks: {totals['queries_flooded']})"
        )
    reduction = (
        results["flood"]["frames_per_answered"]
        / results["rules"]["frames_per_answered"]
    )
    print(f"  -> rules are {reduction:.2f}x cheaper per answered query")

    print()
    print("== kill a leaf; the center re-dials with backoff ==")
    async with LiveCluster(topology, rule_routed=True, top_k=1) as c:
        c.stock_partitioned_library(vocab)
        await c.run_plan(plan[:50])
        await c.kill(5)
        await asyncio.sleep(0.4)
        center = c.nodes[0]
        print(
            f"after kill: center sees peers {sorted(center.connected_peers)}, "
            f"dial failures so far: {center.stats.dial_failures}"
        )
        term = next(t for i, t in enumerate(vocab) if i % 6 == 2)
        hits = await c.query(1, term)
        print(f"cluster still answers: query from node 1 got {hits} hit(s)")
        await c.restart(5)
        await c.wait_connected()
        print(
            f"after restart: center sees peers {sorted(center.connected_peers)}, "
            f"reconnects: {center.stats.reconnects}"
        )


if __name__ == "__main__":
    asyncio.run(main())
