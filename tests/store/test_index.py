"""Tests for repro.store.index."""

from repro.store.index import HashIndex
from repro.store.table import Table


def make_table():
    table = Table("t", ["guid", "value"])
    table.extend([(10, "a"), (20, "b"), (10, "c")])
    return table


class TestHashIndex:
    def test_lookup_multiple_rows(self):
        idx = HashIndex(make_table(), "guid")
        assert idx.lookup(10) == [0, 2]
        assert idx.lookup(20) == [1]

    def test_lookup_missing_is_empty(self):
        idx = HashIndex(make_table(), "guid")
        assert idx.lookup(999) == []

    def test_first(self):
        idx = HashIndex(make_table(), "guid")
        assert idx.first(10) == 0
        assert idx.first(999) is None

    def test_contains(self):
        idx = HashIndex(make_table(), "guid")
        assert idx.contains(20)
        assert not idx.contains(21)

    def test_len_is_distinct_keys(self):
        idx = HashIndex(make_table(), "guid")
        assert len(idx) == 2

    def test_keys(self):
        idx = HashIndex(make_table(), "guid")
        assert set(idx.keys()) == {10, 20}

    def test_lookup_returns_copy(self):
        idx = HashIndex(make_table(), "guid")
        rows = idx.lookup(10)
        rows.append(999)
        assert idx.lookup(10) == [0, 2]
