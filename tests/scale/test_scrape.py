"""Prometheus text exposition parsing and cross-process aggregation."""

import asyncio
import threading

import pytest

from repro.obs.http import ObsHttpServer
from repro.obs.registry import MetricsRegistry
from repro.obs.scrape import parse_labels, parse_samples, scrape_totals


def stocked_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    frames = registry.counter("repro_frames_total", "frames", ("node", "direction"))
    frames.labels("0", "in").inc(10)
    frames.labels("0", "out").inc(5)
    gauge = registry.gauge("repro_connected_peers", "peers", ("node",))
    gauge.labels("0").set(3)
    hist = registry.histogram("repro_decode_seconds", "decode", ("node",))
    hist.labels("0").observe(0.5)
    hist.labels("0").observe(1.5)
    return registry


class TestParsing:
    def test_render_parse_round_trip(self):
        samples = parse_samples(stocked_registry().render())
        by_key = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in samples
        }
        assert by_key[
            ("repro_frames_total", (("direction", "in"), ("node", "0")))
        ] == 10.0
        assert by_key[
            ("repro_connected_peers", (("node", "0"),))
        ] == 3.0
        assert by_key[("repro_decode_seconds_count", (("node", "0"),))] == 2.0
        assert by_key[("repro_decode_seconds_sum", (("node", "0"),))] == 2.0

    def test_label_escapes(self):
        labels = parse_labels(r'peer="a\"b",path="c\\d",msg="x\ny"')
        assert labels == {"peer": 'a"b', "path": "c\\d", "msg": "x\ny"}

    def test_inf_values_and_malformed_lines(self):
        samples = parse_samples('m_bucket{le="+Inf"} 4\nedge +Inf\n')
        assert samples[0] == ("m_bucket", {"le": "+Inf"}, 4.0)
        assert samples[1][2] == float("inf")
        with pytest.raises(ValueError):
            parse_samples("lonely_name\n")


class TestScrapeTotals:
    def test_sums_across_urls_and_labels_skipping_buckets(self, monkeypatch):
        text = stocked_registry().render()
        monkeypatch.setattr(
            "repro.obs.scrape.scrape_text", lambda url, timeout=5.0: text
        )
        totals = scrape_totals(["http://a/metrics", "http://b/metrics"])
        # two identical "workers": everything doubles.
        assert totals["repro_frames_total"] == 30.0
        assert totals["repro_connected_peers"] == 6.0
        assert totals["repro_decode_seconds_count"] == 4.0
        # cumulative histogram buckets would double-count; they must
        # not appear in the aggregate at all.
        assert not any(name.endswith("_bucket") for name in totals)

    def test_prefix_filter(self, monkeypatch):
        monkeypatch.setattr(
            "repro.obs.scrape.scrape_text",
            lambda url, timeout=5.0: "other_total 7\nrepro_x_total 1\n",
        )
        totals = scrape_totals(["http://a/metrics"], prefix="repro_")
        assert totals == {"repro_x_total": 1.0}

    @pytest.mark.live
    def test_over_real_http(self):
        registry = stocked_registry()
        server = ObsHttpServer(render=registry.render)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            asyncio.run_coroutine_threadsafe(server.start(), loop).result(5)
            totals = scrape_totals(
                [f"http://127.0.0.1:{server.port}/metrics"], prefix="repro_"
            )
            assert totals["repro_frames_total"] == 15.0
            assert totals["repro_connected_peers"] == 3.0
        finally:
            asyncio.run_coroutine_threadsafe(server.close(), loop).result(5)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(5)
