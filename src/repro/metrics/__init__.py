"""Evaluation metrics and reporting.

* :mod:`~repro.metrics.series` — time-series helpers for coverage/success
  curves (the y-axes of the paper's four figures);
* :mod:`~repro.metrics.traffic` — message accounting for the online
  overlay simulator (queries forwarded, duplicates, hits, hops);
* :mod:`~repro.metrics.report` — paper-vs-measured comparison rows used by
  the benchmark harness and EXPERIMENTS.md.
"""

from repro.metrics.ascii_chart import line_chart, sparkline
from repro.metrics.report import ComparisonRow, format_table
from repro.metrics.savings import FloodReductionEstimate, estimate_flood_reduction
from repro.metrics.series import decay_halfway_point, moving_average, sawtooth_depth
from repro.metrics.traffic import QueryOutcome, TrafficStats

__all__ = [
    "ComparisonRow",
    "FloodReductionEstimate",
    "QueryOutcome",
    "TrafficStats",
    "decay_halfway_point",
    "estimate_flood_reduction",
    "format_table",
    "line_chart",
    "moving_average",
    "sawtooth_depth",
    "sparkline",
]
