"""Bench `fig4`: Adaptive Sliding Window over time (thresholds, N=10).

Paper Fig. 4: average coverage 0.78, success ≈ 0.76-0.79; new rule sets
every ≈ 1.7 blocks; drops are never dramatic thanks to the thresholds.
"""

import numpy as np

from benchmarks.conftest import run_and_report


def test_fig4_adaptive(benchmark):
    result = run_and_report(benchmark, "fig4")
    success = np.asarray(result.series["success"])
    # "the decreases in coverage and success were never dramatic"
    assert success.min() > 0.45
    assert int(result.extras["n_generations"]) > 1
