"""Tests for repro.workload.zipf."""

import numpy as np
import pytest

from repro.workload.zipf import ZipfSampler


class TestZipfSampler:
    def test_pmf_sums_to_one(self):
        sampler = ZipfSampler(50, 1.2)
        assert sampler.pmf.sum() == pytest.approx(1.0)

    def test_pmf_monotone_decreasing(self):
        pmf = ZipfSampler(20, 1.0).pmf
        assert all(pmf[i] >= pmf[i + 1] for i in range(len(pmf) - 1))

    def test_exponent_zero_is_uniform(self):
        pmf = ZipfSampler(10, 0.0).pmf
        np.testing.assert_allclose(pmf, 0.1)

    def test_samples_in_range(self, rng):
        sampler = ZipfSampler(25, 1.0)
        samples = sampler.sample(rng, size=1000)
        assert samples.min() >= 0
        assert samples.max() < 25

    def test_scalar_sample(self, rng):
        value = ZipfSampler(5, 1.0).sample(rng)
        assert isinstance(value, int)
        assert 0 <= value < 5

    def test_empirical_matches_pmf(self, rng):
        sampler = ZipfSampler(8, 1.0)
        samples = sampler.sample(rng, size=50_000)
        counts = np.bincount(samples, minlength=8) / 50_000
        np.testing.assert_allclose(counts, sampler.pmf, atol=0.01)

    def test_probability_accessor(self):
        sampler = ZipfSampler(4, 1.0)
        total = sum(sampler.probability(r) for r in range(4))
        assert total == pytest.approx(1.0)

    def test_probability_out_of_range(self):
        with pytest.raises(IndexError):
            ZipfSampler(4, 1.0).probability(4)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            ZipfSampler(5, -1.0)

    def test_pmf_readonly(self):
        sampler = ZipfSampler(5, 1.0)
        with pytest.raises(ValueError):
            sampler.pmf[0] = 0.5

    def test_deterministic_with_seed(self):
        a = ZipfSampler(30, 1.0).sample(np.random.default_rng(9), size=20)
        b = ZipfSampler(30, 1.0).sample(np.random.default_rng(9), size=20)
        np.testing.assert_array_equal(a, b)
