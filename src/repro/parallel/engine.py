"""Process-pool experiment engine.

Fans figure runners, ablation sweep points and multi-seed trials out
across ``ProcessPoolExecutor`` workers.  Two redundancies dominate a
serial sweep, and the engine removes both:

* **Trace regeneration** — every trace-driven runner regenerates the
  same synthetic trace (same config/seed/length).  The parent generates
  each needed spec once, publishes it through
  :class:`~repro.parallel.shm.SharedTraceStore`, and workers consume
  zero-copy :class:`~repro.trace.blocks.PairBlock` views instead of
  re-generating (or having arrays pickled into every task).
* **Re-mining** — strategies and sweep points re-run GENERATE-RULESET on
  blocks already mined with identical parameters; each worker carries a
  process-wide content-addressed
  :class:`~repro.parallel.cache.RulesetCache` and ships its hit/miss
  counters back with every task result.

Mining, testing and trace generation are all deterministic, so engine
runs produce bit-identical :class:`~repro.experiments.results.ExperimentResult`
payloads to the serial path — ``workers <= 1`` runs in-process (no pool)
with the same provider + cache installed, which is also the fastest mode
on a single-core host.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Sequence

from repro.experiments.config import DEFAULT_SEED, current_scale
from repro.experiments.results import ExperimentResult
from repro.parallel.cache import (
    DEFAULT_CACHE_SIZE,
    configure_ruleset_cache,
    get_ruleset_cache,
    ruleset_cache,
)
from repro.parallel.provider import (
    CachingTraceProvider,
    SharedMemoryTraceProvider,
    _generate_columns,
    clear_trace_provider,
    current_trace_provider,
    install_trace_provider,
    trace_key,
)
from repro.parallel.shm import (
    DEFAULT_SPILL_THRESHOLD,
    AttachedTraceStore,
    SharedTraceStore,
)
from repro.workload.tracegen import MonitorTraceConfig

__all__ = [
    "ExperimentTask",
    "TaskOutcome",
    "EngineRun",
    "ParallelExperimentEngine",
    "run_experiments",
]

#: trace-driven experiment ids that consume ``scale.n_blocks`` blocks of
#: the default config/seed trace (the common spec most sweeps share).
_N_BLOCKS_IDS = frozenset(
    {
        "fig1",
        "fig3",
        "fig4",
        "adaptive-history",
        "streaming",
        "prune-ablation",
        "confidence-ablation",
        "topk-ablation",
    }
)


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of engine work: a registered experiment id + kwargs."""

    experiment_id: str
    kwargs: dict = field(default_factory=dict)

    @property
    def seed(self) -> int:
        return int(self.kwargs.get("seed", DEFAULT_SEED))


@dataclass
class TaskOutcome:
    """What one worker task returned."""

    experiment_id: str
    result: ExperimentResult
    seconds: float
    pid: int
    cache_stats: dict | None


@dataclass
class EngineRun:
    """All outcomes of one engine invocation plus engine-level telemetry."""

    outcomes: list[TaskOutcome]
    workers: int
    seconds: float
    prewarm_seconds: float
    shared_traces: int
    cache: dict[str, float]

    @property
    def results(self) -> list[ExperimentResult]:
        return [o.result for o in self.outcomes]


def _trace_specs(task: ExperimentTask) -> list[tuple]:
    """(config, seed, n_pairs) specs a task will request, for prewarming."""
    scale = current_scale()
    cfg = MonitorTraceConfig()
    seed = task.seed
    if task.experiment_id in _N_BLOCKS_IDS:
        return [(cfg, seed, scale.n_blocks * cfg.block_size)]
    if task.experiment_id == "static":
        return [(cfg, seed, scale.n_blocks_static * cfg.block_size)]
    if task.experiment_id == "fig2":
        return [(cfg, seed, scale.n_pairs_blocksweep)]
    return []  # overlay-driven experiments generate no monitor trace


def _run_one(task: ExperimentTask) -> TaskOutcome:
    from repro.experiments.registry import run_experiment

    t0 = perf_counter()
    result = run_experiment(task.experiment_id, **task.kwargs)
    cache = get_ruleset_cache()
    return TaskOutcome(
        experiment_id=task.experiment_id,
        result=result,
        seconds=perf_counter() - t0,
        pid=os.getpid(),
        cache_stats=cache.stats() if cache is not None else None,
    )


def _worker_init(handles, cache_size: int, full_scale_env: str | None) -> None:
    """Pool initializer: scale env, shared traces, per-process cache."""
    if full_scale_env is None:
        os.environ.pop("REPRO_FULL_SCALE", None)
    else:
        os.environ["REPRO_FULL_SCALE"] = full_scale_env
    install_trace_provider(SharedMemoryTraceProvider(AttachedTraceStore(handles)))
    configure_ruleset_cache(cache_size)


def _aggregate_cache(outcomes: Sequence[TaskOutcome]) -> dict[str, float]:
    """Sum each worker process's final cache snapshot.

    Cache counters are cumulative per process; tasks on one worker run
    sequentially, so the last snapshot per pid carries that worker's
    totals.
    """
    latest: dict[int, dict] = {}
    for outcome in outcomes:
        if outcome.cache_stats is not None:
            latest[outcome.pid] = outcome.cache_stats
    totals = {"hits": 0.0, "misses": 0.0, "evictions": 0.0}
    for stats in latest.values():
        for key in totals:
            totals[key] += stats.get(key, 0)
    lookups = totals["hits"] + totals["misses"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    return totals


class ParallelExperimentEngine:
    """Runs experiment tasks with shared traces and cached mining.

    ``workers <= 1`` keeps everything in-process (provider + cache, no
    pool); ``workers > 1`` prewarms shared-memory traces and fans tasks
    out over a ``ProcessPoolExecutor``.
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        prewarm: bool = True,
        spill_dir: str | os.PathLike | None = None,
        spill_threshold_bytes: int = DEFAULT_SPILL_THRESHOLD,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = int(workers)
        self.cache_size = int(cache_size)
        self.prewarm = bool(prewarm)
        self.spill_dir = spill_dir
        self.spill_threshold_bytes = int(spill_threshold_bytes)

    # -- public API ---------------------------------------------------------
    def run_ids(
        self, experiment_ids: Sequence[str], *, seed: int | None = None, **kwargs: Any
    ) -> EngineRun:
        common = dict(kwargs)
        if seed is not None:
            common["seed"] = seed
        return self.run(
            [ExperimentTask(experiment_id, dict(common)) for experiment_id in experiment_ids]
        )

    def run(self, tasks: Sequence[ExperimentTask]) -> EngineRun:
        tasks = list(tasks)
        t0 = perf_counter()
        if self.workers <= 1:
            run = self._run_in_process(tasks)
        else:
            run = self._run_pooled(tasks)
        run.seconds = perf_counter() - t0
        return run

    # -- serial (in-process) mode -------------------------------------------
    def _run_in_process(self, tasks: list[ExperimentTask]) -> EngineRun:
        previous_provider = current_trace_provider()
        provider = CachingTraceProvider()
        install_trace_provider(provider)
        try:
            with ruleset_cache(self.cache_size):
                outcomes = [_run_one(task) for task in tasks]
        finally:
            if previous_provider is None:
                clear_trace_provider()
            else:
                install_trace_provider(previous_provider)
        return EngineRun(
            outcomes=outcomes,
            workers=max(self.workers, 1),
            seconds=0.0,
            prewarm_seconds=0.0,
            shared_traces=provider.misses,
            cache=_aggregate_cache(outcomes),
        )

    # -- pooled mode ---------------------------------------------------------
    def _prewarm_store(
        self, tasks: list[ExperimentTask], store: SharedTraceStore
    ) -> None:
        for task in tasks:
            for config, seed, n_pairs in _trace_specs(task):
                key = trace_key(config, seed, n_pairs)
                if key not in store.handles():
                    sources, repliers = _generate_columns(config, seed, n_pairs)
                    store.put(key, sources, repliers)

    def _run_pooled(self, tasks: list[ExperimentTask]) -> EngineRun:
        with SharedTraceStore(
            spill_dir=self.spill_dir,
            spill_threshold_bytes=self.spill_threshold_bytes,
        ) as store:
            t0 = perf_counter()
            if self.prewarm:
                self._prewarm_store(tasks, store)
            prewarm_seconds = perf_counter() - t0
            n_traces = len(store)
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(
                    store.handles(),
                    self.cache_size,
                    os.environ.get("REPRO_FULL_SCALE"),
                ),
            ) as pool:
                futures = [pool.submit(_run_one, task) for task in tasks]
                outcomes = [future.result() for future in futures]
        return EngineRun(
            outcomes=outcomes,
            workers=self.workers,
            seconds=0.0,
            prewarm_seconds=prewarm_seconds,
            shared_traces=n_traces,
            cache=_aggregate_cache(outcomes),
        )


def run_experiments(
    experiment_ids: Sequence[str],
    *,
    workers: int = 0,
    seed: int | None = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> EngineRun:
    """One-call convenience wrapper used by the CLI and benchmarks."""
    engine = ParallelExperimentEngine(workers, cache_size=cache_size)
    return engine.run_ids(experiment_ids, seed=seed)
