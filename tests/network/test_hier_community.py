"""Tests for repro.network.hier.community."""

import pytest

from repro.network.hier.community import CommunityIndex


def _index(n=4):
    idx = CommunityIndex(n)
    idx.attach(0, 0, frozenset({10, 11}))
    idx.attach(1, 0, frozenset({11, 12}))
    idx.attach(2, 1, frozenset({20}))
    return idx


class TestMembership:
    def test_validation(self):
        with pytest.raises(ValueError):
            CommunityIndex(0)

    def test_attach_and_lookup(self):
        idx = _index()
        assert idx.superpeer_of(0) == 0
        assert idx.members(0) == [0, 1]
        assert idx.load(0) == 2
        assert sorted(idx.lookup(0, 11)) == [0, 1]
        assert idx.lookup(0, 20) == []
        assert idx.lookup(1, 20) == [2]
        assert idx.index_size(0) == 4

    def test_double_attach_rejected(self):
        idx = _index()
        with pytest.raises(ValueError):
            idx.attach(0, 1, frozenset())

    def test_attach_to_dead_superpeer_rejected(self):
        idx = _index()
        idx.kill(1)
        with pytest.raises(ValueError):
            idx.attach(9, 1, frozenset())


class TestFailure:
    def test_kill_orphans_and_drops_index(self):
        idx = _index()
        assert idx.kill(0) == [0, 1]
        assert not idx.is_live(0)
        assert idx.members(0) == []
        assert idx.lookup(0, 11) == []
        assert idx.live_superpeers() == [1, 2, 3]
        assert idx.kill(0) == []  # already dead

    def test_reattach_least_loaded_deterministic(self):
        idx = _index()
        orphans = idx.kill(0)
        placement = idx.reattach(orphans)
        # Loads before: sp1=1, sp2=0, sp3=0.  Leaf 0 -> sp2 (ties by
        # lowest id), leaf 1 -> sp3 (loads update as orphans land).
        assert placement == {0: 2, 1: 3}
        assert idx.superpeer_of(0) == 2
        assert idx.lookup(2, 11) == [0]
        assert idx.lookup(3, 12) == [1]

    def test_reattach_requires_live_superpeer(self):
        idx = CommunityIndex(1)
        idx.attach(0, 0, frozenset({1}))
        orphans = idx.kill(0)
        with pytest.raises(ValueError):
            idx.reattach(orphans)

    def test_reattach_replayable(self):
        a, b = _index(), _index()
        assert a.reattach(a.kill(0)) == b.reattach(b.kill(0))
