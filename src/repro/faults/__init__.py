"""Deterministic fault injection for the live stack and the simulators.

The paper's adaptive routing exists *because* overlays churn — peers
crash, links stall, partitions cut reply paths — so the reproduction
needs failure as a first-class, replayable input rather than an
accident of the test machine.  This package provides:

* :mod:`repro.faults.plan` — seeded :class:`FaultPlan` schedules whose
  events activate at fixed offsets, replaying bit-identically;
* :mod:`repro.faults.transport` — stream wrappers + a
  :class:`FaultController` whose transport openers plug into
  :func:`repro.live.connection.dial_peer`, so faults act at the socket
  boundary without the protocol code knowing;
* :mod:`repro.faults.injector` — executes a plan against a
  :class:`~repro.live.cluster.LiveCluster` in real (scaled) time;
* :mod:`repro.faults.churn` — replays the same plan as topology churn
  for the in-process simulators;
* :mod:`repro.faults.soak` — the ``chaos-soak`` harness: run a cluster
  under a plan, audit invariants, emit a replay-stable report.
"""

from repro.faults.churn import TopologyChurn
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    chaos_plan,
    crash_restart_plan,
    partition_heal_plan,
)
from repro.faults.soak import (
    PLAN_NAMES,
    SoakReport,
    chaos_soak,
    expected_min_reconnects,
    make_plan,
    run_soak,
)
from repro.faults.transport import FaultController

__all__ = [
    "FaultController",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "PLAN_NAMES",
    "SoakReport",
    "TopologyChurn",
    "chaos_plan",
    "chaos_soak",
    "crash_restart_plan",
    "expected_min_reconnects",
    "make_plan",
    "partition_heal_plan",
    "run_soak",
]
