"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import RollingMean, RunningStats, summarize_series

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestRollingMean:
    def test_default_before_observations(self):
        assert RollingMean(5, default=0.7).value() == 0.7

    def test_mean_of_partial_window(self):
        rm = RollingMean(10)
        rm.push(1.0)
        rm.push(3.0)
        assert rm.value() == pytest.approx(2.0)

    def test_eviction_at_window_boundary(self):
        rm = RollingMean(3)
        for v in [1.0, 2.0, 3.0, 4.0]:
            rm.push(v)
        assert rm.value() == pytest.approx(3.0)  # mean of [2, 3, 4]
        assert len(rm) == 3

    def test_window_one_tracks_last(self):
        rm = RollingMean(1)
        rm.push(5.0)
        rm.push(9.0)
        assert rm.value() == 9.0

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            RollingMean(0)

    @given(st.lists(floats, min_size=1, max_size=60), st.integers(1, 10))
    def test_matches_numpy_tail_mean(self, values, window):
        rm = RollingMean(window)
        for v in values:
            rm.push(v)
        expected = float(np.mean(values[-window:]))
        assert rm.value() == pytest.approx(expected, rel=1e-9, abs=1e-6)


class TestRunningStats:
    def test_empty_is_nan(self):
        rs = RunningStats()
        assert math.isnan(rs.mean)
        assert math.isnan(rs.variance)
        assert math.isnan(rs.minimum)

    def test_single_value(self):
        rs = RunningStats()
        rs.push(4.0)
        assert rs.mean == 4.0
        assert math.isnan(rs.variance)
        assert rs.minimum == rs.maximum == 4.0

    @given(st.lists(floats, min_size=2, max_size=100))
    def test_matches_numpy(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.count == len(values)
        assert rs.mean == pytest.approx(float(np.mean(values)), rel=1e-6, abs=1e-6)
        assert rs.variance == pytest.approx(
            float(np.var(values, ddof=1)), rel=1e-5, abs=1e-5
        )
        assert rs.minimum == min(values)
        assert rs.maximum == max(values)

    @given(
        st.lists(floats, min_size=1, max_size=40),
        st.lists(floats, min_size=1, max_size=40),
    )
    def test_merge_equals_concatenation(self, left, right):
        a = RunningStats()
        a.extend(left)
        b = RunningStats()
        b.extend(right)
        merged = a.merge(b)
        direct = RunningStats()
        direct.extend(left + right)
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, rel=1e-6, abs=1e-6)
        assert merged.variance == pytest.approx(direct.variance, rel=1e-4, abs=1e-4)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        merged = a.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    def test_merge_rejects_other_types(self):
        with pytest.raises(TypeError):
            RunningStats().merge([1, 2])


class TestSummarizeSeries:
    def test_empty(self):
        summary = summarize_series([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_single(self):
        summary = summarize_series([2.0])
        assert summary.count == 1
        assert summary.std == 0.0
        assert summary.median == 2.0

    def test_known_values(self):
        summary = summarize_series([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)
