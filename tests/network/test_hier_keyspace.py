"""Tests for repro.network.hier.keyspace."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.hier.keyspace import (
    KEY_BITS,
    KBucketTable,
    category_key,
    node_key,
    xor_distance,
)

key_ints = st.integers(0, (1 << KEY_BITS) - 1)


class TestKeys:
    def test_deterministic(self):
        assert node_key(7) == node_key(7)
        assert category_key(7) == category_key(7)

    def test_node_and_category_spaces_disjoint(self):
        # Same integer id, different kind prefix -> different key.
        for value in range(50):
            assert node_key(value) != category_key(value)

    def test_fits_keyspace(self):
        for value in range(200):
            assert 0 <= node_key(value) < 1 << KEY_BITS

    @given(key_ints, key_ints)
    def test_xor_metric(self, a, b):
        assert xor_distance(a, b) == xor_distance(b, a)
        assert xor_distance(a, a) == 0
        assert (xor_distance(a, b) == 0) == (a == b)

    @given(key_ints, key_ints, key_ints)
    def test_xor_triangle(self, a, b, c):
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)


class TestKBucketTable:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            KBucketTable(0, k=0)

    def test_insert_and_contains(self):
        table = KBucketTable(0)
        assert table.insert(1)
        assert 1 in table
        assert 0 not in table  # never buckets its owner
        assert len(table) == 1

    def test_insert_owner_noop(self):
        table = KBucketTable(3)
        assert not table.insert(3)
        assert len(table) == 0

    def test_reinsert_is_idempotent(self):
        table = KBucketTable(0)
        table.insert(1)
        assert table.insert(1)  # already known -> True, no duplicate
        assert len(table) == 1

    def test_bucket_capacity(self):
        # With k=1 and enough peers, some bucket must refuse an insert.
        table = KBucketTable(0, k=1)
        results = [table.insert(peer) for peer in range(1, 200)]
        assert not all(results)
        assert len(table) < 199

    def test_remove(self):
        table = KBucketTable(0)
        table.insert(1)
        table.remove(1)
        assert 1 not in table
        table.remove(42)  # unknown: no-op

    def test_closest_ordering(self):
        table = KBucketTable(0)
        for peer in range(1, 30):
            table.insert(peer)
        target = category_key(5)
        ranked = table.closest(target, n=5)
        distances = [xor_distance(node_key(p), target) for p in ranked]
        assert distances == sorted(distances)
        # Global minimum over the known set.
        best = min(range(1, 30), key=lambda p: xor_distance(node_key(p), target))
        assert ranked[0] == best

    def test_closest_n_validation(self):
        with pytest.raises(ValueError):
            KBucketTable(0).closest(0, n=0)

    def test_closer_than_strictly_improves(self):
        table = KBucketTable(0)
        for peer in range(1, 30):
            table.insert(peer)
        target = category_key(9)
        distance = xor_distance(node_key(0), target)
        nxt = table.closer_than(target, distance)
        assert nxt is not None
        assert xor_distance(node_key(nxt), target) < distance
        assert table.closer_than(target, 0) is None

    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 40), st.integers(0, 1000))
    def test_greedy_walk_converges_to_one_steward(self, n_peers, category):
        """Full tables: every starting point reaches the globally
        closest node — publishers and readers agree on the steward."""
        tables = [KBucketTable(sp, k=64) for sp in range(n_peers)]
        for table in tables:
            for peer in range(n_peers):
                table.insert(peer)
        target = category_key(category)

        def walk(start):
            current = start
            distance = xor_distance(node_key(current), target)
            while True:
                nxt = tables[current].closer_than(target, distance)
                if nxt is None:
                    return current
                current = nxt
                distance = xor_distance(node_key(current), target)

        expected = min(
            range(n_peers), key=lambda sp: xor_distance(node_key(sp), target)
        )
        assert all(walk(start) == expected for start in range(n_peers))
