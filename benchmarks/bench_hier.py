"""Two-tier rule-routing gate (``python -m benchmarks.bench_hier``).

Runs the ISSUE 10 acceptance comparison at 10k+ simulated nodes:
flood (the seed ``SuperPeerNetwork`` baseline, plus ``HierNetwork`` in
flood mode as an identity check) vs per-node rules vs super-peer rules
vs hybrid, all on one seeded workload (identical query sequences).

The gate *asserts*, not eyeballs:

* **identity** — flood-mode HierNetwork reproduces the seed baseline's
  TrafficStats exactly (messages, successes, hits, duplicates);
* **strict domination** — super-peer rules' messages per query,
  *including amortized digest control traffic*, is strictly below the
  flooding baseline's;
* **no success regression** — super-peer rules' success rate is >= the
  baseline's (the per-query flood fallback makes regression
  impossible, so this catches accounting bugs);
* **community evidence** — super-peer rules cover more queries than
  per-node (leaf) rules (alpha_sp > alpha_leaf).

Results land in ``BENCH_hier.json`` and a human-readable
``hier_report.txt`` (both in ``$BENCH_OUTPUT_DIR`` or the cwd); a
failed gate exits non-zero.  ``--quick`` (CI smoke) keeps the node
count but trims the workload.
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from benchmarks._emit import bench_output_dir, emit_bench_json, peak_rss

#: tier tuning for the gate runs (denser fan-out than the library
#: defaults: at 500 super-peers every converted flood saves ~450
#: messages, so contacting 5 communities instead of 3 pays for itself).
_TIER = {"rule_top_k": 5, "digest_top_k": 5}

_ARMS = ("baseline", "flood", "leaf-rules", "superpeer-rules", "hybrid")


def _stats_payload(stats, control: int) -> dict:
    return {
        "n_queries": stats.n_queries,
        "messages_per_query": stats.messages_per_query,
        "amortized_messages_per_query": (
            (stats.total_messages + control) / stats.n_queries
            if stats.n_queries
            else 0.0
        ),
        "control_messages": control,
        "success_rate": stats.success_rate,
        "coverage_alpha": stats.coverage_alpha,
        "success_rho": stats.success_rho,
        "mean_first_hit_hops": stats.mean_first_hit_hops,
        "total_messages": stats.total_messages,
        "total_hits": stats.total_hits,
        "total_duplicates": stats.total_duplicates,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--superpeers", type=int, default=500)
    parser.add_argument("--leaves-per", type=int, default=20, dest="leaves_per")
    parser.add_argument("--queries", type=int, default=4000)
    parser.add_argument("--warmup", type=int, default=30_000)
    parser.add_argument("--seed", type=int, default=20060814)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: same node count, smaller workload",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.queries = min(args.queries, 2000)
        args.warmup = min(args.warmup, 12_000)

    from repro.experiments.hier import amortized_messages_per_query, hier_arm_stats

    n_nodes = args.superpeers * (args.leaves_per + 1)
    print(
        f"bench_hier: {args.superpeers} super-peers x {args.leaves_per} leaves "
        f"= {n_nodes} nodes, {args.queries} queries after {args.warmup} warm-up"
    )
    substrate = dict(
        n_superpeers=args.superpeers,
        leaves_per_superpeer=args.leaves_per,
        superpeer_degree=4,
        n_categories=40,
        files_per_category=250,
        library_size=60,
        interests_per_peer=4,
        superpeer_ttl=4,
    )
    t0 = perf_counter()
    arms = hier_arm_stats(
        n_superpeers=args.superpeers,
        n_queries=args.queries,
        warmup=args.warmup,
        seed=args.seed,
        substrate=substrate,
        hier_kwargs=_TIER,
    )
    elapsed = perf_counter() - t0

    baseline, _ = arms["baseline"]
    flood, _ = arms["flood"]
    leaf, _ = arms["leaf-rules"]
    sp, sp_control = arms["superpeer-rules"]
    sp_amortized = amortized_messages_per_query(sp, sp_control)

    lines = [
        f"{'arm':<16s} {'msgs/query':>10s} {'+control':>10s} "
        f"{'success':>8s} {'alpha':>7s} {'rho':>7s}"
    ]
    for arm in _ARMS:
        stats, control = arms[arm]
        lines.append(
            f"{arm:<16s} {stats.messages_per_query:>10.2f} "
            f"{amortized_messages_per_query(stats, control):>10.2f} "
            f"{stats.success_rate:>8.4f} {stats.coverage_alpha:>7.3f} "
            f"{stats.success_rho:>7.3f}"
        )
    report = "\n".join(lines)
    print(report)

    gates = {
        "flood_identity": (
            flood.total_messages == baseline.total_messages
            and flood.n_succeeded == baseline.n_succeeded
            and flood.total_hits == baseline.total_hits
            and flood.total_duplicates == baseline.total_duplicates
        ),
        "strict_traffic_domination": sp_amortized < baseline.messages_per_query,
        "no_success_regression": sp.success_rate >= baseline.success_rate,
        "community_evidence_widens_coverage": (
            sp.coverage_alpha > leaf.coverage_alpha
        ),
        "min_10k_nodes": n_nodes >= 10_000,
    }

    payload = {
        "n_superpeers": args.superpeers,
        "leaves_per_superpeer": args.leaves_per,
        "n_nodes": n_nodes,
        "n_queries": args.queries,
        "warmup": args.warmup,
        "seed": args.seed,
        "quick": args.quick,
        "tier_tuning": _TIER,
        "elapsed_seconds": elapsed,
        "peak_rss_bytes": peak_rss(),
        "arms": {arm: _stats_payload(*arms[arm]) for arm in _ARMS},
        "baseline_messages_per_query": baseline.messages_per_query,
        "superpeer_rules_amortized_messages_per_query": sp_amortized,
        "traffic_ratio": sp_amortized / baseline.messages_per_query,
        "gates": gates,
    }
    json_path = emit_bench_json("hier", payload)
    print(f"bench json written: {json_path}")
    report_path = f"{bench_output_dir()}/hier_report.txt"
    with open(report_path, "w", encoding="utf-8") as fh:
        fh.write(report + "\n")
    print(f"comparison report written: {report_path}")

    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"GATE FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(
        f"gate ok: traffic ratio {payload['traffic_ratio']:.3f} "
        f"(< 1 required), success {sp.success_rate:.4f} >= "
        f"{baseline.success_rate:.4f}, elapsed {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
