#!/usr/bin/env python
"""Association analysis on market-basket data (the technique the paper borrows).

Section III-A of the paper introduces association analysis through the
classic {Diapers} -> {Beer} example.  This script mines a synthetic
grocery dataset with both miners (Apriori and FP-Growth — they agree
exactly), prints the top rules with all interestingness measures, and
shows support/confidence pruning in action.

Run:  python examples/market_basket.py
"""

import time

import numpy as np

from repro.mining import TransactionDataset, apriori, fpgrowth, generate_rules

# Shopping profiles: (items, relative frequency).  The diapers/beer
# affinity from the paper's example is baked into the "young parent"
# profile; caviar is deliberately rare (the paper's low-support example).
PROFILES = [
    (("bread", "milk", "eggs"), 0.30),
    (("diapers", "beer", "chips"), 0.20),
    (("diapers", "beer", "wipes", "milk"), 0.10),
    (("coffee", "sugar", "milk"), 0.20),
    (("caviar", "sugar"), 0.02),
    (("chips", "cola", "beer"), 0.18),
]


def synthesize_baskets(n_baskets: int, seed: int = 7) -> TransactionDataset:
    rng = np.random.default_rng(seed)
    names = [p[0] for p in PROFILES]
    weights = np.array([p[1] for p in PROFILES])
    weights = weights / weights.sum()
    all_items = sorted({item for items, _ in PROFILES for item in items})
    baskets = []
    for _ in range(n_baskets):
        profile = names[rng.choice(len(names), p=weights)]
        basket = {item for item in profile if rng.random() < 0.8}
        if rng.random() < 0.3:  # an impulse purchase
            basket.add(all_items[rng.integers(0, len(all_items))])
        if basket:
            baskets.append(basket)
    return TransactionDataset(baskets)


def main() -> None:
    dataset = synthesize_baskets(5000)
    print(f"{len(dataset)} baskets over {dataset.n_items} distinct items\n")

    t0 = time.time()
    frequent_ap = apriori(dataset, min_support_count=50)
    t_ap = time.time() - t0
    t0 = time.time()
    frequent_fp = fpgrowth(dataset, min_support_count=50)
    t_fp = time.time() - t0
    assert frequent_ap == frequent_fp, "miners must agree"
    print(
        f"frequent itemsets: {len(frequent_ap)} "
        f"(apriori {t_ap*1e3:.0f} ms, fp-growth {t_fp*1e3:.0f} ms — identical output)\n"
    )

    rules = generate_rules(
        dataset, frequent_ap, min_confidence=0.6, min_support=0.02
    )
    print(f"top rules (min_confidence=0.6, min_support=0.02) — {len(rules)} total:")
    header = f"{'rule':<40} {'supp':>6} {'conf':>6} {'lift':>6} {'conv':>6}"
    print(header)
    print("-" * len(header))
    for rule in rules[:12]:
        ante = ", ".join(sorted(rule.antecedent))
        cons = ", ".join(sorted(rule.consequent))
        conviction = rule.measures.conviction
        conv_text = f"{conviction:6.2f}" if conviction != float("inf") else "   inf"
        print(
            f"{{{ante}}} -> {{{cons}}}".ljust(40)
            + f" {rule.support:6.3f} {rule.confidence:6.3f}"
            + f" {rule.measures.lift:6.2f} {conv_text}"
        )

    diaper_beer = [
        r
        for r in rules
        if r.antecedent == frozenset({"diapers"}) and r.consequent == frozenset({"beer"})
    ]
    if diaper_beer:
        print(f"\nthe paper's example rule survives pruning: {diaper_beer[0]}")
    caviar = [r for r in rules if "caviar" in r.antecedent]
    print(
        "caviar rules after support pruning: "
        f"{len(caviar)} (interesting but not useful — low support, as §III-A notes)"
    )


if __name__ == "__main__":
    main()
