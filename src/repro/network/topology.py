"""Overlay topology generation (from scratch).

Unstructured P2P measurement studies variously report near-random and
power-law-ish overlays; we provide three generators so experiments can
check robustness to the topology class:

* :func:`random_regular` — every node has the same degree (configuration
  model with restarts);
* :func:`erdos_renyi` — G(n, p) with a connectivity repair pass;
* :func:`barabasi_albert` — preferential attachment (power-law degrees).

All generators return a :class:`Topology`: an immutable adjacency-list
graph with simple (no self-loop, no multi-edge) undirected edges.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["Topology", "random_regular", "erdos_renyi", "barabasi_albert"]


class Topology:
    """Immutable undirected graph over nodes ``0..n-1``."""

    def __init__(self, n_nodes: int, edges: Iterable[tuple[int, int]]) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        adj: list[set[int]] = [set() for _ in range(n_nodes)]
        n_edges = 0
        for u, v in edges:
            if not (0 <= u < n_nodes and 0 <= v < n_nodes):
                raise ValueError(f"edge ({u}, {v}) out of range")
            if u == v:
                raise ValueError(f"self-loop at node {u}")
            if v not in adj[u]:
                adj[u].add(v)
                adj[v].add(u)
                n_edges += 1
        self._adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors)) for neighbors in adj
        )
        self.n_edges = n_edges

    @property
    def n_nodes(self) -> int:
        return len(self._adj)

    def neighbors(self, node: int) -> tuple[int, ...]:
        return self._adj[node]

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def degrees(self) -> list[int]:
        return [len(nbrs) for nbrs in self._adj]

    def edges(self) -> list[tuple[int, int]]:
        out = []
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    out.append((u, v))
        return out

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    # -- connectivity -------------------------------------------------------
    def component_of(self, start: int) -> set[int]:
        """Nodes reachable from ``start`` (BFS)."""
        seen = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    def is_connected(self) -> bool:
        return len(self.component_of(0)) == self.n_nodes

    def shortest_path_length(self, src: int, dst: int) -> int | None:
        """Hop distance between two nodes, or ``None`` if disconnected."""
        if src == dst:
            return 0
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    if v == dst:
                        return dist[v]
                    queue.append(v)
        return None


def random_regular(n_nodes: int, degree: int, *, rng=None, max_tries: int = 50) -> Topology:
    """Random ``degree``-regular graph via the configuration model.

    Stubs are shuffled and paired; conflicting pairs (self-loops or
    duplicate edges) are repaired by double-edge swaps with random valid
    edges, which succeeds with overwhelming probability for degree << n.
    The whole construction retries until the graph is also connected.
    """
    rng = as_generator(rng)
    if degree < 1 or degree >= n_nodes:
        raise ValueError("need 1 <= degree < n_nodes")
    if (n_nodes * degree) % 2 != 0:
        raise ValueError("n_nodes * degree must be even")
    stubs = np.repeat(np.arange(n_nodes), degree)
    for _ in range(max_tries):
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edges: set[tuple[int, int]] = set()
        bad: list[tuple[int, int]] = []
        for u, v in pairs:
            u, v = int(u), int(v)
            key = (min(u, v), max(u, v))
            if u == v or key in edges:
                bad.append((u, v))
            else:
                edges.add(key)
        ok = True
        edge_list = list(edges)
        for u, v in bad:
            # Swap (u, v) with a random existing edge (x, y) to form
            # (u, x) and (v, y), retrying until both new edges are valid.
            repaired = False
            for _attempt in range(200):
                idx = int(rng.integers(0, len(edge_list)))
                x, y = edge_list[idx]
                if rng.random() < 0.5:
                    x, y = y, x
                k1 = (min(u, x), max(u, x))
                k2 = (min(v, y), max(v, y))
                if u == x or v == y or k1 in edges or k2 in edges or k1 == k2:
                    continue
                edges.remove((min(x, y), max(x, y)))
                edges.add(k1)
                edges.add(k2)
                edge_list[idx] = k1
                edge_list.append(k2)
                repaired = True
                break
            if not repaired:
                ok = False
                break
        if not ok:
            continue
        topo = Topology(n_nodes, edges)
        if topo.is_connected():
            return topo
    raise RuntimeError(
        f"failed to build a connected {degree}-regular graph in {max_tries} tries"
    )


def erdos_renyi(n_nodes: int, avg_degree: float, *, rng=None) -> Topology:
    """G(n, p) with p = avg_degree / (n-1), then connectivity repair.

    After sampling, nodes outside the largest component are attached to a
    uniformly random node inside it, so the result is always connected
    (at the cost of a slightly higher average degree).
    """
    rng = as_generator(rng)
    if n_nodes < 2:
        raise ValueError("n_nodes must be >= 2")
    p = avg_degree / (n_nodes - 1)
    if not 0.0 < p <= 1.0:
        raise ValueError("avg_degree out of range")
    # Vectorized upper-triangle sampling.
    iu, ju = np.triu_indices(n_nodes, k=1)
    mask = rng.random(iu.size) < p
    edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))
    topo = Topology(n_nodes, edges)
    # Repair: attach every non-giant node to the giant component.
    comp = topo.component_of(0)
    best = comp
    seen_all = set(comp)
    for node in range(n_nodes):
        if node not in seen_all:
            comp = topo.component_of(node)
            seen_all |= comp
            if len(comp) > len(best):
                best = comp
    if len(best) < n_nodes:
        inside = sorted(best)
        extra = []
        for node in range(n_nodes):
            if node not in best:
                anchor = inside[int(rng.integers(0, len(inside)))]
                extra.append((node, anchor))
        topo = Topology(n_nodes, topo.edges() + extra)
        # One repair round suffices only if each straggler attaches into
        # `best`; since every new edge lands in `best`, it does.
    return topo


def barabasi_albert(n_nodes: int, m: int, *, rng=None) -> Topology:
    """Barabási–Albert preferential attachment with ``m`` edges per node."""
    rng = as_generator(rng)
    if m < 1 or m >= n_nodes:
        raise ValueError("need 1 <= m < n_nodes")
    edges: list[tuple[int, int]] = []
    # Seed: a star over the first m+1 nodes (connected, m edges).
    targets = list(range(m))
    repeated: list[int] = []  # endpoint multiset for preferential choice
    for new in range(m, n_nodes):
        chosen: set[int] = set()
        while len(chosen) < m:
            if repeated and rng.random() < 0.9:
                cand = repeated[int(rng.integers(0, len(repeated)))]
            else:
                cand = int(rng.integers(0, new))
            if cand != new:
                chosen.add(cand)
        for t in chosen:
            edges.append((new, t))
            repeated.extend((new, t))
        targets.append(new)
    return Topology(n_nodes, edges)
