"""Synthetic workload models.

The paper's evaluation is driven by a proprietary 7-day Gnutella trace
captured at one modified node.  We cannot obtain that trace, so this
subpackage builds the closest synthetic equivalent (see DESIGN.md §2): a
generative *monitor-node* model producing query and reply records with the
statistical properties the rule-routing results depend on —

* **skewed activity**: neighbor query volumes are heavy-tailed
  (:mod:`~repro.workload.zipf`, lognormal activity weights);
* **interest-based locality**: each neighbor's queries concentrate on a
  few interest categories (:mod:`~repro.workload.interests`), so its
  replies concentrate on the few neighbors serving those categories;
* **churn**: neighbor sessions are heavy-tailed
  (:mod:`~repro.workload.churn`) and reply paths drift over time, which is
  what degrades stale rule sets.

:mod:`~repro.workload.tracegen` combines these into the trace generator;
:mod:`~repro.workload.content` and :mod:`~repro.workload.querygen` also
serve the online overlay simulator in :mod:`repro.network`.
"""

from repro.workload.churn import LogNormalSessions, ParetoSessions
from repro.workload.content import ContentCatalog
from repro.workload.interests import InterestModel, InterestProfile
from repro.workload.keywords import KeywordIndex
from repro.workload.querygen import QueryTextModel
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator
from repro.workload.zipf import ZipfSampler

__all__ = [
    "ContentCatalog",
    "InterestModel",
    "InterestProfile",
    "KeywordIndex",
    "LogNormalSessions",
    "MonitorTraceConfig",
    "MonitorTraceGenerator",
    "ParetoSessions",
    "QueryTextModel",
    "ZipfSampler",
]
