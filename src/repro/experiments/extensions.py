"""Experiments for the paper's §VI future-work extensions.

Each one implements something §VI sketches and measures the improvement
the paper predicts:

* ``category-rules`` — adding the query-string dimension to rule
  antecedents raises success;
* ``topology-adaptation`` — rule-driven rewiring removes forwarding hops;
* ``hybrid`` — shortcuts with rules as the "one last chance to avoid
  flooding" cut traffic below shortcuts alone;
* ``superpeer`` — the §II super-peer baseline reduces hops but still
  floods its upper tier, with traffic growing in the super-peer count.
"""

from __future__ import annotations

import numpy as np

from repro.core.category_rules import (
    CategorizedBlock,
    category_ruleset_test,
    generate_category_ruleset,
)
from repro.core.strategies import SlidingWindow
from repro.experiments.config import DEFAULT_SEED, current_scale
from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow
from repro.network.overlay import Overlay, OverlayConfig
from repro.network.superpeer import SuperPeerConfig, SuperPeerNetwork
from repro.routing.association import AssociationRoutingPolicy
from repro.routing.hybrid import HybridShortcutAssociationPolicy
from repro.routing.shortcuts import InterestShortcutsPolicy
from repro.routing.topology_adaptation import TopologyAdaptingPolicy
from repro.trace.blocks import blocks_from_arrays
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

__all__ = [
    "run_category_rules",
    "run_topology_adaptation",
    "run_hybrid",
    "run_superpeer",
]


# ---------------------------------------------------------------------------
# §VI  query-string dimension
# ---------------------------------------------------------------------------
def run_category_rules(*, seed: int = DEFAULT_SEED, top_k: int = 1) -> ExperimentResult:
    """(source, category) antecedents vs host-only antecedents.

    The comparison runs at ``top_k=1`` — forwarding to the single
    highest-support consequent, the regime where routing actually saves
    traffic.  There, host-only rules send *all* of a neighbor's queries
    toward its dominant interest's path, sacrificing the minority
    interests; per-(host, category) rules route each interest to its own
    path, which is precisely the gain §VI predicts from "adding
    dimensions such as the query strings".
    """
    scale = current_scale()
    cfg = MonitorTraceConfig()
    gen = MonitorTraceGenerator(cfg, seed=seed)
    arrays = gen.generate_pair_arrays(scale.n_blocks * cfg.block_size)
    blocks = blocks_from_arrays(arrays.source, arrays.replier, block_size=cfg.block_size)
    cblocks = [
        CategorizedBlock(
            block=b,
            categories=arrays.category[i * cfg.block_size : (i + 1) * cfg.block_size],
        )
        for i, b in enumerate(blocks)
    ]

    baseline = SlidingWindow(top_k=top_k).run(blocks)

    cat_coverage, cat_success = [], []
    for b in range(1, len(cblocks)):
        ruleset = generate_category_ruleset(
            cblocks[b - 1], n_categories=cfg.n_categories, top_k=top_k
        )
        result = category_ruleset_test(ruleset, cblocks[b])
        cat_coverage.append(result.coverage)
        cat_success.append(result.success)
    avg_cov = float(np.mean(cat_coverage))
    avg_succ = float(np.mean(cat_success))

    rows = [
        ComparisonRow(
            f"host-only sliding success @ top_k={top_k} (baseline)",
            "-",
            baseline.average_success,
        ),
        ComparisonRow(
            f"(host, category) sliding success @ top_k={top_k}",
            "higher than host-only (§VI prediction)",
            avg_succ,
        ),
        ComparisonRow(
            "success gain from the category dimension",
            ">0",
            avg_succ - baseline.average_success,
            band=(0.02, 1.0),
        ),
        ComparisonRow(
            "coverage retained (fine tier falls back to host-only)",
            "~equal",
            avg_cov - baseline.average_coverage,
            band=(-0.03, 1.0),
        ),
    ]
    return ExperimentResult(
        experiment_id="category-rules",
        title="Query-string (category) dimension in rule antecedents (paper §VI)",
        rows=rows,
        series={"coverage": cat_coverage, "success": cat_success},
        extras={
            "baseline_coverage": baseline.average_coverage,
            "baseline_success": baseline.average_success,
        },
    )


# ---------------------------------------------------------------------------
# §VI  topology adaptation
# ---------------------------------------------------------------------------
def run_topology_adaptation(*, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Rule-driven rewiring vs plain association routing.

    The overlay is configured content-sparse (low replication, low degree)
    so first hits sit several hops out — the regime where §VI's "one less
    hop" rewiring has room to help.  Rewiring densifies the graph, which
    makes the *flooding fallback* costlier; that trade-off is reported as
    an unbanded finding.
    """
    scale = current_scale()
    common = dict(
        n_nodes=min(scale.overlay_nodes, 500),
        degree=4,
        n_categories=80,
        files_per_category=300,
        library_size=25,
        interests_per_peer=3,
    )
    n_queries = scale.overlay_queries
    warmup = scale.overlay_warmup

    def run(policy_factory, dynamic):
        overlay = Overlay(
            OverlayConfig(dynamic_topology=dynamic, max_degree=7, **common),
            seed=seed,
        )
        overlay.install_policies(policy_factory)
        stats = overlay.run_workload(n_queries, warmup=warmup)
        return overlay, stats

    _, plain = run(
        lambda nid, ov: AssociationRoutingPolicy(nid, ov, window=2048), dynamic=False
    )
    adapted_overlay, adapted = run(
        lambda nid, ov: TopologyAdaptingPolicy(
            nid, ov, window=2048, adapt_every=40, max_new_links=2
        ),
        dynamic=True,
    )
    links_added = sum(
        adapted_overlay.node(n).policy.links_added
        for n in range(adapted_overlay.n_nodes)
    )
    rows = [
        ComparisonRow("association mean hops to first hit", "-", plain.mean_first_hit_hops),
        ComparisonRow("adapted mean hops to first hit", "-", adapted.mean_first_hit_hops),
        ComparisonRow(
            "hop reduction from rewiring (paper: 'one less hop')",
            ">0",
            plain.mean_first_hit_hops - adapted.mean_first_hit_hops,
            band=(0.02, 10.0),
        ),
        ComparisonRow(
            "new links actually created",
            ">0",
            float(links_added),
            band=(1.0, float("inf")),
        ),
        ComparisonRow(
            "hit rate preserved",
            "~equal",
            adapted.success_rate - plain.success_rate,
            band=(-0.08, 1.0),
        ),
        ComparisonRow(
            "flood-fallback cost of densification (msgs ratio, finding)",
            "-",
            adapted.messages_per_query / plain.messages_per_query,
        ),
    ]
    return ExperimentResult(
        experiment_id="topology-adaptation",
        title="Rule-driven overlay rewiring (paper §VI)",
        rows=rows,
        extras={
            "plain": str(plain),
            "adapted": str(adapted),
            "links_added": links_added,
        },
    )


# ---------------------------------------------------------------------------
# §VI  shortcuts + rules hybrid
# ---------------------------------------------------------------------------
def run_hybrid(*, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Shortcuts with association rules as the pre-flood last chance."""
    scale = current_scale()

    def run(policy_factory):
        overlay = Overlay(OverlayConfig(n_nodes=scale.overlay_nodes), seed=seed)
        overlay.install_policies(policy_factory)
        return overlay.run_workload(
            scale.overlay_queries, warmup=scale.overlay_warmup
        )

    shortcuts = run(lambda nid, ov: InterestShortcutsPolicy(nid, ov))
    association = run(lambda nid, ov: AssociationRoutingPolicy(nid, ov, window=2048))
    hybrid = run(
        lambda nid, ov: HybridShortcutAssociationPolicy(nid, ov, window=2048)
    )
    rows = [
        ComparisonRow("shortcuts msgs/query", "-", shortcuts.messages_per_query),
        ComparisonRow("association msgs/query", "-", association.messages_per_query),
        ComparisonRow("hybrid msgs/query", "-", hybrid.messages_per_query),
        ComparisonRow(
            "hybrid vs shortcuts traffic (paper: avoid more floods)",
            "<1",
            hybrid.messages_per_query / shortcuts.messages_per_query,
            band=(0.0, 0.95),
        ),
        ComparisonRow(
            "hybrid hit rate vs shortcuts",
            "~equal",
            hybrid.success_rate - shortcuts.success_rate,
            band=(-0.08, 1.0),
        ),
    ]
    return ExperimentResult(
        experiment_id="hybrid",
        title="Interest shortcuts + association rules hybrid (paper §VI)",
        rows=rows,
        extras={
            "shortcuts": str(shortcuts),
            "association": str(association),
            "hybrid": str(hybrid),
        },
    )


# ---------------------------------------------------------------------------
# §II  super-peer baseline
# ---------------------------------------------------------------------------
def run_superpeer(*, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Two-tier indexing: cheap hops, but tier-2 flooding still grows."""
    small = SuperPeerNetwork(SuperPeerConfig(n_superpeers=20), seed=seed)
    large = SuperPeerNetwork(SuperPeerConfig(n_superpeers=60), seed=seed)
    stats_small = small.run_workload(800)
    stats_large = large.run_workload(800)
    rows = [
        ComparisonRow(
            "msgs/query, 20 super-peers", "-", stats_small.messages_per_query
        ),
        ComparisonRow(
            "msgs/query, 60 super-peers", "-", stats_large.messages_per_query
        ),
        ComparisonRow(
            "traffic grows with system size (paper: 'can still suffer from flooding')",
            ">1",
            stats_large.messages_per_query / stats_small.messages_per_query,
            band=(1.1, 100.0),
        ),
        ComparisonRow(
            "hops to first hit stay small (benefit of indexing)",
            "small",
            stats_large.mean_first_hit_hops,
            band=(0.0, 4.0),
        ),
        ComparisonRow(
            "hit rate",
            "high",
            stats_large.success_rate,
            band=(0.7, 1.0),
        ),
    ]
    return ExperimentResult(
        experiment_id="superpeer",
        title="Super-peer two-tier baseline (paper §II, ref [14])",
        rows=rows,
        extras={"small": str(stats_small), "large": str(stats_large)},
    )
