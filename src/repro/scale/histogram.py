"""HDR-style coarse latency histograms for load generation.

Recording a latency sample must be O(1) and allocation-free — an
open-loop generator at hundreds of requests per second cannot afford to
keep every sample — so :class:`LatencyHistogram` buckets observations
into *geometrically spaced* bins (``buckets_per_decade`` per factor of
ten), the same trade HdrHistogram makes: percentile estimates carry a
bounded **relative** error (one bucket ratio, ~12% at the default 20
buckets/decade) instead of the unbounded absolute error of linear bins.

Histograms merge (per-worker results fold into a cluster-wide curve) and
round-trip through plain dicts, so they can cross a multiprocessing
control pipe or land in a ``BENCH_*.json`` without custom serialisation.
"""

from __future__ import annotations

import math
from bisect import bisect_left

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Fixed geometric buckets over ``[min_value, max_value]`` seconds."""

    def __init__(
        self,
        *,
        min_value: float = 1e-6,
        max_value: float = 60.0,
        buckets_per_decade: int = 20,
    ) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(max_value / min_value)
        n = int(math.ceil(decades * buckets_per_decade)) + 1
        ratio = 10.0 ** (1.0 / buckets_per_decade)
        #: upper bound of each bucket; the final bucket is a catch-all
        #: for samples above ``max_value`` (clamped, never dropped).
        self.bounds: list[float] = [
            min_value * ratio ** (i + 1) for i in range(n)
        ]
        self.counts = [0] * (n + 1)
        self.count = 0
        self.sum = 0.0
        self.min_seen = math.inf
        self.max_seen = 0.0

    # -- recording --------------------------------------------------------
    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self.count += 1
        self.sum += seconds
        if seconds < self.min_seen:
            self.min_seen = seconds
        if seconds > self.max_seen:
            self.max_seen = seconds
        self.counts[bisect_left(self.bounds, seconds)] += 1

    # -- reading ----------------------------------------------------------
    def percentile(self, p: float) -> float:
        """The latency at percentile ``p`` (0 < p <= 100), estimated as
        the upper bound of the bucket holding that rank — a conservative
        figure whose relative error is bounded by one bucket ratio."""
        if not 0.0 < p <= 100.0:
            raise ValueError("p must be in (0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= rank:
                if i >= len(self.bounds):
                    return self.max_seen
                # clamp to observed extremes so tiny histograms don't
                # report a bound far above anything actually seen
                return min(self.bounds[i], self.max_seen)
        return self.max_seen  # pragma: no cover - rank <= count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """The percentiles a saturation curve plots, as one dict."""
        return {
            "count": self.count,
            "mean_seconds": self.mean,
            "min_seconds": self.min_seen if self.count else 0.0,
            "max_seconds": self.max_seen,
            "p50_seconds": self.percentile(50.0),
            "p95_seconds": self.percentile(95.0),
            "p99_seconds": self.percentile(99.0),
        }

    # -- combination / transport ------------------------------------------
    def _compatible(self, other: "LatencyHistogram") -> bool:
        return (
            self.min_value == other.min_value
            and self.max_value == other.max_value
            and self.buckets_per_decade == other.buckets_per_decade
        )

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram's counts into this one (in place)."""
        if not self._compatible(other):
            raise ValueError("cannot merge histograms with different buckets")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)
        return self

    def to_dict(self) -> dict:
        return {
            "min_value": self.min_value,
            "max_value": self.max_value,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min_seen": self.min_seen if self.count else None,
            "max_seen": self.max_seen,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        hist = cls(
            min_value=payload["min_value"],
            max_value=payload["max_value"],
            buckets_per_decade=payload["buckets_per_decade"],
        )
        counts = list(payload["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("bucket layout mismatch")
        hist.counts = counts
        hist.count = int(payload["count"])
        hist.sum = float(payload["sum"])
        min_seen = payload.get("min_seen")
        hist.min_seen = math.inf if min_seen is None else float(min_seen)
        hist.max_seen = float(payload["max_seen"])
        return hist
