"""Seeded, replayable schedules of fault events.

The paper's premise is that rule sets decay under churn — neighbors
leave, reply paths move — so the reproduction needs failure that is
*deterministic*: a :class:`FaultPlan` fixes every fault (what, whom,
when) up front, with absolute activation times measured from the start
of the run, so two executions of the same plan inject bit-identical
fault sequences.  Plans drive both the live stack (via
:class:`~repro.faults.injector.FaultInjector` +
:class:`~repro.faults.transport.FaultController`) and the in-process
simulators (via :class:`~repro.faults.churn.TopologyChurn`).

Fault taxonomy (``FaultEvent.kind``):

========== ============================================================
``crash``      hard-stop one node (server, connections, supervisors)
``restart``    bring a crashed node back on its old port
``reset``      abort one link's TCP connection (RST-style)
``partition``  split the overlay into two groups: cross links reset,
               cross dials refused until ``heal``
``heal``       lift the active partition
``latency``    add fixed delay to one link's reads/drains (``seconds``;
               0 clears)
``corrupt``    inject garbage bytes mid-stream on one link (the remote
               decoder sees a malformed descriptor and drops the peer)
``truncate``   cut the next frame on one link in half, then reset it
               (a peer dying mid-write)
``stall``      one-shot slow-reader stall on one link (``seconds``):
               backpressure builds on the remote side
========== ============================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.utils.rng import as_generator

__all__ = [
    "CRASH",
    "CORRUPT",
    "FaultEvent",
    "FaultPlan",
    "HEAL",
    "KINDS",
    "LATENCY",
    "PARTITION",
    "RESET",
    "RESTART",
    "STALL",
    "TRUNCATE",
    "chaos_plan",
    "crash_restart_plan",
    "partition_heal_plan",
]

CRASH = "crash"
RESTART = "restart"
RESET = "reset"
PARTITION = "partition"
HEAL = "heal"
LATENCY = "latency"
CORRUPT = "corrupt"
TRUNCATE = "truncate"
STALL = "stall"

KINDS = (
    CRASH,
    RESTART,
    RESET,
    PARTITION,
    HEAL,
    LATENCY,
    CORRUPT,
    TRUNCATE,
    STALL,
)

#: kinds that target a single node / a single link.
_NODE_KINDS = (CRASH, RESTART)
_LINK_KINDS = (RESET, LATENCY, CORRUPT, TRUNCATE, STALL)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, activated ``time`` seconds into the run."""

    time: float
    kind: str
    #: target node for crash / restart.
    node: int | None = None
    #: target link (u, v), u < v, for link-level faults.
    link: tuple[int, int] | None = None
    #: the two node groups for a partition.
    groups: tuple[tuple[int, ...], tuple[int, ...]] | None = None
    #: latency / stall magnitude.
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be >= 0")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in _NODE_KINDS and self.node is None:
            raise ValueError(f"{self.kind} needs a node")
        if self.kind in _LINK_KINDS:
            if self.link is None:
                raise ValueError(f"{self.kind} needs a link")
            u, v = self.link
            if u >= v:
                raise ValueError("link must be (u, v) with u < v")
        if self.kind == PARTITION:
            if self.groups is None or not self.groups[0] or not self.groups[1]:
                raise ValueError("partition needs two non-empty groups")

    def as_dict(self) -> dict:
        """A compact JSON-ready record (None fields omitted)."""
        out: dict = {"time": self.time, "kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.link is not None:
            out["link"] = list(self.link)
        if self.groups is not None:
            out["groups"] = [list(g) for g in self.groups]
        if self.seconds:
            out["seconds"] = self.seconds
        return out

    @classmethod
    def from_dict(cls, record: dict) -> "FaultEvent":
        return cls(
            time=float(record["time"]),
            kind=record["kind"],
            node=record.get("node"),
            link=tuple(record["link"]) if "link" in record else None,
            groups=(
                tuple(tuple(g) for g in record["groups"])
                if "groups" in record
                else None
            ),
            seconds=float(record.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of :class:`FaultEvent`.

    ``duration`` is the plan's horizon: an injector sleeps out the
    remainder after the last event so late consequences (reconnects,
    rule relearning) have scheduled room before invariants are checked.
    """

    events: tuple[FaultEvent, ...]
    duration: float
    label: str = "plan"
    seed: int | None = None

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.kind, e.node or 0))
        )
        object.__setattr__(self, "events", ordered)
        if self.duration < 0:
            raise ValueError("duration must be >= 0")
        if ordered and ordered[-1].time > self.duration:
            raise ValueError("duration must cover the last event")
        self._check_lifecycles(ordered)

    @staticmethod
    def _check_lifecycles(events: tuple[FaultEvent, ...]) -> None:
        """Reject double-crashes, restarts of live nodes, and nested
        partitions — ambiguous schedules would make replay logs lie."""
        down: set[int] = set()
        partitioned = False
        for event in events:
            if event.kind == CRASH:
                if event.node in down:
                    raise ValueError(f"node {event.node} crashed twice")
                down.add(event.node)
            elif event.kind == RESTART:
                if event.node not in down:
                    raise ValueError(
                        f"restart of node {event.node} which is not down"
                    )
                down.discard(event.node)
            elif event.kind == PARTITION:
                if partitioned:
                    raise ValueError("nested partitions are not supported")
                partitioned = True
            elif event.kind == HEAL:
                if not partitioned:
                    raise ValueError("heal without an active partition")
                partitioned = False

    def __len__(self) -> int:
        return len(self.events)

    def kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def as_dicts(self) -> list[dict]:
        return [event.as_dict() for event in self.events]

    def to_json(self) -> str:
        return json.dumps(
            {
                "label": self.label,
                "seed": self.seed,
                "duration": self.duration,
                "events": self.as_dicts(),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        data = json.loads(blob)
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in data["events"]),
            duration=float(data["duration"]),
            label=data.get("label", "plan"),
            seed=data.get("seed"),
        )


def _round(t: float) -> float:
    """Millisecond-quantised times: replay logs compare cleanly."""
    return round(float(t), 3)


def crash_restart_plan(
    n_nodes: int,
    *,
    seed: int = 0,
    start: float = 0.3,
    downtime: float = 0.6,
    gap: float = 0.3,
    crashes: int = 1,
    settle: float = 0.8,
) -> FaultPlan:
    """Seeded crash→restart cycles over distinct nodes."""
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    crashes = min(crashes, n_nodes - 1)  # always keep one node up
    rng = as_generator(seed)
    order = [int(x) for x in rng.permutation(n_nodes)]
    events: list[FaultEvent] = []
    t = start
    for i in range(crashes):
        node = order[i]
        events.append(FaultEvent(time=_round(t), kind=CRASH, node=node))
        events.append(
            FaultEvent(time=_round(t + downtime), kind=RESTART, node=node)
        )
        t += downtime + gap
    return FaultPlan(
        events=tuple(events),
        duration=_round(t - gap + settle),
        label="crash-restart",
        seed=seed,
    )


def partition_heal_plan(
    n_nodes: int,
    *,
    seed: int = 0,
    at: float = 0.3,
    outage: float = 0.8,
    settle: float = 0.8,
) -> FaultPlan:
    """A seeded random bisection of the overlay, healed after ``outage``."""
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = as_generator(seed)
    order = [int(x) for x in rng.permutation(n_nodes)]
    cut = max(1, n_nodes // 2)
    groups = (
        tuple(sorted(order[:cut])),
        tuple(sorted(order[cut:])),
    )
    events = (
        FaultEvent(time=_round(at), kind=PARTITION, groups=groups),
        FaultEvent(time=_round(at + outage), kind=HEAL),
    )
    return FaultPlan(
        events=events,
        duration=_round(at + outage + settle),
        label="partition-heal",
        seed=seed,
    )


def chaos_plan(
    n_nodes: int,
    edges: list[tuple[int, int]],
    *,
    seed: int = 0,
    crashes: int = 1,
    partitions: int = 1,
    corruptions: int = 1,
    stalls: int = 1,
    latency_spikes: int = 1,
    resets: int = 0,
    truncations: int = 0,
    settle: float = 1.0,
) -> FaultPlan:
    """A mixed plan over a known edge set.

    Link faults are scheduled on edges *not incident to a crashed node
    or severed by the partition at that moment*, so every logged fault
    actually lands on a live link — the soak's fault-vs-metrics
    agreement invariant depends on that.
    """
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if not edges:
        raise ValueError("need at least one edge")
    rng = as_generator(seed)
    events: list[FaultEvent] = []
    t = 0.3

    crashes = min(crashes, n_nodes - 1)
    order = [int(x) for x in rng.permutation(n_nodes)]
    crashed: list[tuple[float, float, int]] = []  # (down, up, node)
    for i in range(crashes):
        node = order[i]
        down, up = t, t + 0.6
        events.append(FaultEvent(time=_round(down), kind=CRASH, node=node))
        events.append(FaultEvent(time=_round(up), kind=RESTART, node=node))
        crashed.append((down, up, node))
        t = up + 0.3

    cut_groups: tuple[tuple[int, ...], tuple[int, ...]] | None = None
    cut_window = (0.0, 0.0)
    if partitions:
        cut = max(1, n_nodes // 2)
        cut_groups = (tuple(sorted(order[:cut])), tuple(sorted(order[cut:])))
        down, up = t, t + 0.8
        events.append(
            FaultEvent(time=_round(down), kind=PARTITION, groups=cut_groups)
        )
        events.append(FaultEvent(time=_round(up), kind=HEAL))
        cut_window = (down, up)
        t = up + 0.3

    def link_is_clear(u: int, v: int, when: float) -> bool:
        for down, up, node in crashed:
            if node in (u, v) and down - 0.2 <= when <= up + 0.4:
                return False
        if cut_groups is not None:
            lo, hi = cut_window
            if lo - 0.2 <= when <= hi + 0.4:
                a, b = set(cut_groups[0]), set(cut_groups[1])
                if (u in a) != (v in a) or (u in b) != (v in b):
                    return False
        return True

    def pick_link(when: float) -> tuple[int, int] | None:
        candidates = [e for e in edges if link_is_clear(*e, when)]
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]

    link_faults = (
        [(CORRUPT, 0.0)] * corruptions
        + [(STALL, 0.25)] * stalls
        + [(LATENCY, 0.02)] * latency_spikes
        + [(RESET, 0.0)] * resets
        + [(TRUNCATE, 0.0)] * truncations
    )
    for kind, seconds in link_faults:
        link = pick_link(t)
        if link is None:
            continue
        u, v = (link[0], link[1]) if link[0] < link[1] else (link[1], link[0])
        events.append(
            FaultEvent(time=_round(t), kind=kind, link=(u, v), seconds=seconds)
        )
        if kind == LATENCY:
            # spikes clear themselves so the probe phase is not slowed.
            events.append(
                FaultEvent(
                    time=_round(t + 0.3), kind=LATENCY, link=(u, v), seconds=0.0
                )
            )
        t += 0.35

    return FaultPlan(
        events=tuple(events),
        duration=_round(t + settle),
        label="mixed-chaos",
        seed=seed,
    )
