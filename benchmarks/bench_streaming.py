"""Bench `streaming`: §VI future work — immediate rule updates.

Paper: "Initial simulations ... consistently show coverage and success
values above 90%."  On the synthetic trace the hard ceiling is ~0.87
(ephemeral one-shot sources can never be covered); the bench asserts the
cap-adjusted band plus the strict ordering streaming > sliding.
"""

import numpy as np

from benchmarks.conftest import run_and_report


def test_streaming_rules(benchmark):
    result = run_and_report(benchmark, "streaming")
    success = np.asarray(result.series["success"])
    # "consistently": every block, not just on average.
    assert success.min() > 0.75
