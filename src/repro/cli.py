"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every registered experiment with its paper reference.
``run <experiment-id> [...]``
    Regenerate one or more paper artifacts and print their
    paper-vs-measured tables (plus ASCII charts for figure experiments).
``all``
    Run the complete registry in order.
``bench-all``
    Time every registered experiment through the parallel engine and
    write a machine-readable ``BENCH_bench_all.json`` (see
    ``docs/performance.md``).
``trace``
    Print the descriptive profile of a freshly generated trace prefix.
``hier``
    Compare the two-tier routing arms (flood vs per-node rules vs
    super-peer rules vs hybrid) on one seeded workload and print
    traffic/α/ρ per arm (see ``docs/hierarchy.md``).
``live-node``
    Run one live asyncio servent daemon on a TCP port (optionally
    dialing peers), printing its counters on exit.
``live-cluster``
    Boot a loopback cluster of live servents over real sockets, drive a
    workload through it, and (with ``--compare``) race association
    routing against flooding on identical topology and queries.
``chaos-soak``
    Run a loopback cluster under a seeded fault-injection plan (peer
    crashes, partitions, stream corruption, stalls) and audit teardown
    / reconnect / accounting invariants; exits non-zero if any fails.
    With ``--state-dir`` nodes keep durable rule state and the
    warm-restart invariants join the audit.
``persist inspect``
    Dump the snapshot and WAL-segment headers of one durable
    rule-state directory as JSON (see ``docs/persistence.md``).
``cluster``
    Boot a **multi-process** sharded cluster (one servent per worker
    process over real TCP, see ``docs/scale.md``), hold it up for a
    duration, and print cluster-wide totals on exit.
``load-test``
    Drive a seeded **open-loop** load step (or RPS ramp) against
    already-running servents and print latency percentiles, error
    rates, and the saturation summary.

Use ``--seed`` to vary the seed and ``--full`` for the paper's full
365-block horizon (equivalent to ``REPRO_FULL_SCALE=1``).

Reports and tables go to stdout; diagnostics go through the structured
logger (stderr) — tune with ``--log-level`` and ``--log-json`` (see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.obs.logging import configure_logging, get_logger

__all__ = ["main", "build_parser"]

_log = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Adaptively Routing P2P Queries Using "
            "Association Analysis' (ICPP 2006)."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at the paper's full scale (365 blocks; slow)",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="structured-log threshold on stderr (default: info)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines instead of plain text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    workers_help = (
        "run through the parallel experiment engine: N>1 fans out over a "
        "process pool with shared-memory trace blocks, N=1 runs in-process "
        "with the trace memo and ruleset cache (default: plain serial)"
    )
    sub.add_parser("list", help="list registered experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiment_ids", nargs="+", metavar="EXPERIMENT")
    run.add_argument(
        "--no-chart", action="store_true", help="suppress ASCII series charts"
    )
    run.add_argument(
        "--seeds",
        type=int,
        default=0,
        metavar="N",
        help="aggregate over N seeds instead of one run (mean ± std per row)",
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also export each experiment's series as DIR/<id>.csv",
    )
    run.add_argument("--workers", type=int, default=0, metavar="N", help=workers_help)
    all_cmd = sub.add_parser("all", help="run every registered experiment")
    all_cmd.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write a markdown reproduction report to PATH",
    )
    all_cmd.add_argument(
        "--workers", type=int, default=0, metavar="N", help=workers_help
    )

    bench_all = sub.add_parser(
        "bench-all",
        help="time every registered experiment through the engine and "
        "write a machine-readable BENCH_*.json",
    )
    bench_all.add_argument(
        "--workers", type=int, default=0, metavar="N", help=workers_help
    )
    bench_all.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_bench_all.json",
        help="where to write the timing/cache JSON (default: %(default)s)",
    )
    bench_all.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="EXPERIMENT",
        help="restrict to these experiment ids (repeatable; default: all)",
    )
    trace = sub.add_parser("trace", help="profile a generated trace prefix")
    trace.add_argument("--blocks", type=int, default=5, help="blocks to profile")
    trace.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="profile blocks streamed from an on-disk trace store instead "
        "of generating a fresh trace",
    )

    tracegen = sub.add_parser(
        "tracegen",
        help="stream a generated trace into an on-disk columnar trace store",
    )
    tracegen.add_argument("path", metavar="PATH", help="store file to write")
    tracegen.add_argument(
        "--pairs",
        type=int,
        default=None,
        help="total pairs to generate (default: --blocks * block size)",
    )
    tracegen.add_argument(
        "--blocks",
        type=int,
        default=100,
        help="trace length in blocks when --pairs is not given (default: 100)",
    )
    tracegen.add_argument(
        "--chunk-size",
        type=int,
        default=50_000,
        help="pairs generated per writer append (default: 50,000)",
    )
    tracegen.add_argument(
        "--codec",
        choices=("none", "zlib", "zstd"),
        default="none",
        help="compress cold column segments (zlib/zstd write a v2 store; "
        "zstd needs a zstd binding in the interpreter; "
        "default: %(default)s)",
    )
    tracegen.add_argument(
        "--compress-level",
        type=int,
        default=6,
        help="compression level for --codec zlib/zstd (default: %(default)s)",
    )

    trace_eval = sub.add_parser(
        "trace-eval",
        help="evaluate a strategy over an on-disk trace store, "
        "optionally partitioned across worker processes",
    )
    trace_eval.add_argument("path", metavar="PATH", help="store file to evaluate")
    trace_eval.add_argument(
        "--strategy",
        choices=("static", "sliding", "lazy", "adaptive", "streaming"),
        default="sliding",
        help="mine/test strategy (default: %(default)s)",
    )
    trace_eval.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 1 = serial streaming run (default: 1)",
    )
    trace_eval.add_argument(
        "--check-serial",
        action="store_true",
        help="also run serially and verify the merged partitioned run "
        "is bit-identical",
    )

    hier = sub.add_parser(
        "hier",
        help="compare two-tier routing arms (flood vs per-node rules vs "
        "super-peer rules vs hybrid) on one seeded workload",
    )
    hier.add_argument(
        "--superpeers", type=int, default=60, help="super-peer count (default: 60)"
    )
    hier.add_argument(
        "--leaves-per",
        type=int,
        default=20,
        dest="leaves_per",
        help="leaves attached to each super-peer (default: 20)",
    )
    hier.add_argument(
        "--degree", type=int, default=4, help="super-peer overlay degree"
    )
    hier.add_argument(
        "--ttl", type=int, default=4, help="tier-2 flood TTL (default: 4)"
    )
    hier.add_argument(
        "--categories", type=int, default=40, help="content categories"
    )
    hier.add_argument(
        "--queries", type=int, default=2000, help="measured queries per arm"
    )
    hier.add_argument(
        "--warmup",
        type=int,
        default=2000,
        help="unrecorded warm-up queries per arm (rule tables learn here)",
    )
    hier.add_argument(
        "--mode",
        choices=("flood", "leaf-rules", "superpeer-rules", "hybrid"),
        default=None,
        help="run a single HierNetwork arm instead of the full comparison",
    )

    live_node = sub.add_parser(
        "live-node", help="run one live servent daemon over TCP"
    )
    live_node.add_argument("--host", default="127.0.0.1")
    live_node.add_argument(
        "--port", type=int, default=6346, help="listen port (0 = ephemeral)"
    )
    live_node.add_argument("--node-id", type=int, default=0)
    live_node.add_argument(
        "--connect",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="peer to dial and supervise (repeatable)",
    )
    live_node.add_argument(
        "--share",
        default="",
        metavar="TERM[,TERM...]",
        help="keywords to share one file apiece for",
    )
    live_node.add_argument(
        "--flood",
        action="store_true",
        help="plain flooding servent (default: rule-routed)",
    )
    live_node.add_argument(
        "--duration",
        type=float,
        default=0.0,
        metavar="SECS",
        help="run this long then exit (0 = until interrupted)",
    )
    live_node.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus /metrics and /healthz on this port "
        "(0 = ephemeral; default: disabled)",
    )
    live_node.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="journal learned rule state here and warm-recover it on "
        "restart (rule-routed nodes only; default: in-memory)",
    )
    live_node.add_argument(
        "--checkpoint-interval",
        type=float,
        default=30.0,
        metavar="SECS",
        help="seconds between rule-state snapshots (default: %(default)s)",
    )
    live_node.add_argument(
        "--fsync",
        choices=("always", "interval", "never"),
        default="interval",
        help="WAL durability policy (default: %(default)s)",
    )
    live_node.add_argument(
        "--uvloop",
        action="store_true",
        help="use uvloop if importable (silently falls back to asyncio)",
    )

    live_cluster = sub.add_parser(
        "live-cluster", help="boot a loopback live cluster and drive queries"
    )
    live_cluster.add_argument("--nodes", type=int, default=8)
    live_cluster.add_argument(
        "--topology",
        choices=("regular", "star"),
        default="regular",
        help="overlay shape (regular uses --degree)",
    )
    live_cluster.add_argument("--degree", type=int, default=3)
    live_cluster.add_argument("--queries", type=int, default=150)
    live_cluster.add_argument("--terms", type=int, default=24)
    live_cluster.add_argument("--top-k", type=int, default=2)
    live_cluster.add_argument("--max-ttl", type=int, default=7)
    live_cluster.add_argument(
        "--compare",
        action="store_true",
        help="also run a flooding cluster on the same topology/workload",
    )
    live_cluster.add_argument(
        "--per-node", action="store_true", help="print per-node counters"
    )
    live_cluster.add_argument(
        "--metrics-dump",
        metavar="PATH",
        default=None,
        help="write a Prometheus /metrics snapshot of the cluster to PATH "
        "after the workload (with --compare, one file per mode)",
    )
    live_cluster.add_argument(
        "--show-trace",
        action="store_true",
        help="print the hop-by-hop trace of one sample query per mode",
    )
    live_cluster.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="per-node durable rule state under DIR/node-NNN "
        "(association mode only; default: in-memory)",
    )

    chaos = sub.add_parser(
        "chaos-soak",
        help="batter a loopback live cluster with a seeded fault plan "
        "and audit its invariants",
    )
    chaos.add_argument("--nodes", type=int, default=8)
    chaos.add_argument("--degree", type=int, default=3)
    chaos.add_argument(
        "--plan",
        choices=("crash-restart", "partition-heal", "mixed"),
        default="mixed",
        help="which seeded fault schedule to run (default: %(default)s)",
    )
    chaos.add_argument(
        "--flood",
        action="store_true",
        help="flooding servents (default: rule-routed)",
    )
    chaos.add_argument(
        "--warmup-queries",
        type=int,
        default=30,
        help="queries to train rules before faults start",
    )
    chaos.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="stretch (>1) or compress (<1) the plan's activation times",
    )
    chaos.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write the full soak report as JSON to PATH",
    )
    chaos.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="give every node durable rule state under DIR and audit "
        "the warm-restart invariants (rule-routed soaks only)",
    )

    cluster = sub.add_parser(
        "cluster",
        help="boot a multi-process sharded cluster over real TCP",
    )
    cluster.add_argument(
        "--workers", type=int, default=2, help="worker processes (default 2)"
    )
    cluster.add_argument(
        "--terms",
        default="jazz,blues,rock,folk,metal,opera",
        metavar="TERM[,TERM...]",
        help="vocabulary partitioned round-robin across workers",
    )
    cluster.add_argument(
        "--duration",
        type=float,
        default=0.0,
        metavar="SECS",
        help="hold the cluster up this long then exit (0 = until ^C)",
    )
    cluster.add_argument(
        "--flood",
        action="store_true",
        help="flooding servents (default: rule-routed)",
    )
    cluster.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="per-node durable rule state under DIR/node-NNN",
    )
    cluster.add_argument(
        "--uvloop",
        action="store_true",
        help="workers use uvloop if importable (silent fallback)",
    )
    cluster.add_argument(
        "--scrape",
        action="store_true",
        help="also print totals scraped from every worker's /metrics",
    )
    cluster.add_argument(
        "--trace-sample",
        type=int,
        default=0,
        metavar="N",
        help="trace the 1-in-N GUID subset in every worker and serve "
        "spans on /trace (0 = tracing off, default)",
    )
    cluster.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="workers dump crash flight recordings under DIR",
    )
    cluster.add_argument(
        "--ports-file",
        metavar="PATH",
        default=None,
        help="write resolved node/data/obs ports as JSON (feeds trace-view)",
    )

    trace_view = sub.add_parser(
        "trace-view",
        help="merge /trace spans across a running cluster into query "
        "trees plus a live alpha/rho rollup",
    )
    trace_view.add_argument(
        "--endpoint",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="a worker's obs endpoint (repeatable)",
    )
    trace_view.add_argument(
        "--ports-file",
        metavar="PATH",
        default=None,
        help="read endpoints from a cluster --ports-file JSON document",
    )
    trace_view.add_argument(
        "--guid",
        default=None,
        metavar="GUID",
        help="render this query's tree (hex or decimal; default: the "
        "latest answered trace)",
    )
    trace_view.add_argument(
        "--polls",
        type=int,
        default=2,
        metavar="N",
        help="collection sweeps; each pair of sweeps yields one rolling "
        "alpha/rho window (default: %(default)s)",
    )
    trace_view.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECS",
        help="seconds between sweeps (default: %(default)s)",
    )
    trace_view.add_argument(
        "--trees",
        type=int,
        default=1,
        metavar="N",
        help="how many query trees to render (default: %(default)s)",
    )

    load_test = sub.add_parser(
        "load-test",
        help="open-loop load against running servents (saturation ramp)",
    )
    load_test.add_argument(
        "--target",
        action="append",
        default=[],
        metavar="HOST:PORT",
        required=True,
        help="servent to load (repeatable; clients attach as peers)",
    )
    load_test.add_argument(
        "--rps",
        default="50",
        metavar="R[,R...]",
        help="offered RPS — one value for a single step, a comma list "
        "for a saturation ramp (default: %(default)s)",
    )
    load_test.add_argument(
        "--duration",
        type=float,
        default=10.0,
        metavar="SECS",
        help="seconds of offered load per step (default: %(default)s)",
    )
    load_test.add_argument(
        "--terms",
        default="jazz,blues,rock,folk,metal,opera",
        metavar="TERM[,TERM...]",
        help="query vocabulary",
    )
    load_test.add_argument(
        "--think",
        choices=("exponential", "lognormal", "fixed"),
        default="exponential",
        help="inter-arrival distribution (default: %(default)s)",
    )
    load_test.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        help="per-request timeout in seconds (default: %(default)s)",
    )
    load_test.add_argument(
        "--p99-bound",
        type=float,
        default=1.0,
        help="saturation gate: p99 bound in seconds (default: %(default)s)",
    )
    load_test.add_argument(
        "--uvloop",
        action="store_true",
        help="use uvloop if importable (silent fallback)",
    )

    persist = sub.add_parser(
        "persist",
        help="inspect durable rule-state directories (snapshots + WAL)",
    )
    persist_sub = persist.add_subparsers(dest="persist_command", required=True)
    inspect = persist_sub.add_parser(
        "inspect",
        help="dump snapshot and WAL-segment headers of a state dir as JSON",
    )
    inspect.add_argument("state_dir", metavar="DIR")
    return parser


def _print_result(result, *, chart: bool = True, stream=None) -> None:
    stream = stream or sys.stdout
    print(result.report(), file=stream)
    if chart and result.series:
        from repro.metrics.ascii_chart import line_chart

        plottable = {
            name: values
            for name, values in result.series.items()
            if name in ("coverage", "success") and values
        }
        if plottable:
            print(file=stream)
            print(line_chart(plottable, height=10), file=stream)
    print(file=stream)


def _print_stats(stats: dict[str, int], *, indent: str = "  ", stream=None) -> None:
    stream = stream or sys.stdout
    width = max(len(k) for k in stats)
    for key, value in stats.items():
        print(f"{indent}{key.ljust(width)}  {value}", file=stream)


def _run_live_node(args) -> int:
    import asyncio

    from repro.live import LiveServent
    from repro.network.servent import SharedFile

    library = [
        SharedFile(index=i, name=f"{term.strip()} track{i}.mp3", size=1 << 20)
        for i, term in enumerate(args.share.split(","))
        if term.strip()
    ]
    peers = []
    for spec in args.connect:
        host, _, port = spec.rpartition(":")
        try:
            peers.append((host or "127.0.0.1", int(port)))
        except ValueError:
            _log.error(
                "bad --connect value; expected HOST:PORT", extra={"value": spec}
            )
            return 2

    if args.state_dir and args.flood:
        _log.error("--state-dir persists rule state; drop --flood to use it")
        return 2

    registry = tracer = None
    if args.metrics_port is not None:
        from repro.obs.registry import MetricsRegistry
        from repro.obs.tracing import QueryTracer

        registry = MetricsRegistry()
        tracer = QueryTracer()

    async def run() -> None:
        node = LiveServent(
            args.node_id,
            host=args.host,
            port=args.port,
            library=library,
            rule_routed=not args.flood,
            registry=registry,
            tracer=tracer,
            obs_port=args.metrics_port,
            state_dir=args.state_dir,
            checkpoint_interval=args.checkpoint_interval,
            fsync=args.fsync,
        )
        await node.start()
        mode = "flooding" if args.flood else "rule-routed"
        _log.info(
            "servent listening",
            extra={
                "mode": mode,
                "node": args.node_id,
                "host": node.host,
                "port": node.port,
                "metrics_port": node.obs_port,
            },
        )
        if node.recovery is not None:
            _log.info("rule state recovered", extra=node.recovery.as_dict())
        for host, port in peers:
            node.add_peer(host, port)
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        finally:
            await node.close()
            print("final counters:")
            _print_stats(node.snapshot())

    from repro.scale.loop import install_uvloop

    loop_impl = install_uvloop(args.uvloop)
    if args.uvloop:
        _log.info("event loop selected", extra={"loop": loop_impl})
    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _split_terms(text: str) -> list[str]:
    return [term.strip() for term in text.split(",") if term.strip()]


def _run_cluster(args) -> int:
    import json
    import time as _time

    from repro.network.topology import Topology
    from repro.scale import ClusterSupervisor, partitioned_specs

    if args.workers < 1:
        _log.error("need at least 1 worker", extra={"workers": args.workers})
        return 2
    vocabulary = _split_terms(args.terms)
    if not vocabulary:
        _log.error("need a non-empty --terms vocabulary")
        return 2
    specs = partitioned_specs(
        args.workers,
        vocabulary,
        rule_routed=not args.flood,
        uvloop=args.uvloop,
        trace_sample=max(0, args.trace_sample),
        flight_dir=args.flight_dir,
    )
    if args.state_dir:
        from dataclasses import replace

        specs = [
            replace(
                s,
                state_dir=os.path.join(
                    args.state_dir, f"node-{s.node_id:03d}"
                ),
            )
            for s in specs
        ]
    n = args.workers
    topology = (
        Topology(n, [(i, (i + 1) % n) for i in range(n)])
        if n > 1
        else Topology(1, [])
    )
    supervisor = ClusterSupervisor(specs, topology=topology)
    try:
        supervisor.start()
        if args.ports_file:
            doc = {
                "nodes": [
                    {
                        "node": node_id,
                        "host": host,
                        "port": port,
                        "obs_port": supervisor.handles[node_id].obs_port,
                    }
                    for node_id, host, port in supervisor.addresses()
                ]
            }
            with open(args.ports_file, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")
        for node_id, host, port in supervisor.addresses():
            handle = supervisor.handles[node_id]
            _log.info(
                "worker up",
                extra={
                    "node": node_id,
                    "addr": f"{host}:{port}",
                    "metrics": handle.obs_port,
                    "pid": handle.info.get("pid"),
                    "loop": handle.info.get("loop"),
                },
            )
        if args.duration > 0:
            _time.sleep(args.duration)
        else:
            while True:
                _time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        if args.scrape:
            try:
                print("scraped totals:")
                print(json.dumps(supervisor.scrape_totals(), indent=2))
            except OSError as exc:
                _log.warning("scrape failed", extra={"error": str(exc)})
        supervisor.close()
        print("cluster totals:")
        _print_stats(supervisor.grand_totals())
    return 0


def _run_load_test(args) -> int:
    import json

    from repro.scale import (
        LoadConfig,
        install_uvloop,
        run_ramp,
        saturation_summary,
    )

    addresses = []
    for spec in args.target:
        host, _, port = spec.rpartition(":")
        try:
            addresses.append((host or "127.0.0.1", int(port)))
        except ValueError:
            _log.error(
                "bad --target value; expected HOST:PORT", extra={"value": spec}
            )
            return 2
    vocabulary = _split_terms(args.terms)
    if not vocabulary:
        _log.error("need a non-empty --terms vocabulary")
        return 2
    try:
        rps_steps = [float(part) for part in args.rps.split(",") if part.strip()]
    except ValueError:
        _log.error("bad --rps value", extra={"value": args.rps})
        return 2
    if not rps_steps or any(r <= 0 for r in rps_steps):
        _log.error("--rps needs positive values", extra={"value": args.rps})
        return 2
    loop_impl = install_uvloop(args.uvloop)
    if args.uvloop:
        _log.info("event loop selected", extra={"loop": loop_impl})
    seed = args.seed if args.seed is not None else 0
    base = LoadConfig(
        rps=1.0,
        duration=args.duration,
        think=args.think,
        request_timeout=args.timeout,
    )
    steps = run_ramp(
        addresses,
        vocabulary,
        rps_steps,
        step_duration=args.duration,
        seed=seed,
        load_config=base,
    )
    summary = saturation_summary(steps, p99_bound=args.p99_bound)
    print(json.dumps({"steps": steps, "summary": summary}, indent=2))
    return 0


def _trace_view_endpoints(args) -> list[tuple[object, str]]:
    """(label, base URL) pairs from --endpoint and/or --ports-file."""
    import json

    endpoints: list[tuple[object, str]] = []
    for spec in args.endpoint:
        host, _, port = spec.rpartition(":")
        endpoints.append((spec, f"http://{host or '127.0.0.1'}:{port}"))
    if args.ports_file:
        with open(args.ports_file, encoding="utf-8") as fh:
            doc = json.load(fh)
        for node in doc.get("nodes", []):
            if node.get("obs_port"):
                endpoints.append(
                    (
                        node.get("node"),
                        f"http://{node.get('host', '127.0.0.1')}:"
                        f"{node['obs_port']}",
                    )
                )
    return endpoints


def _parse_guid(text: str) -> int:
    try:
        return int(text, 10)
    except ValueError:
        return int(text, 16)


def _run_trace_view(args) -> int:
    import time as _time

    from repro.obs.collect import (
        ClusterTraceCollector,
        format_cluster_rollup,
        format_trace_tree,
    )

    try:
        endpoints = _trace_view_endpoints(args)
    except (OSError, ValueError) as exc:
        _log.error("bad --ports-file", extra={"error": str(exc)})
        return 2
    if not endpoints:
        _log.error("no endpoints: pass --endpoint and/or --ports-file")
        return 2
    collector = ClusterTraceCollector(endpoints)
    polls = max(1, args.polls)
    for sweep in range(polls):
        if sweep:
            _time.sleep(max(0.0, args.interval))
        summary = collector.poll()
        _log.info(
            "trace sweep",
            extra={
                "sweep": sweep + 1,
                "nodes": summary["nodes"],
                "traces": summary["traces"],
            },
        )
    if collector.errors and not collector.per_node:
        _log.error(
            "no endpoint answered", extra={"errors": collector.errors}
        )
        return 2
    print(format_cluster_rollup(collector))
    if args.guid is not None:
        try:
            guids = [_parse_guid(args.guid)]
        except ValueError:
            _log.error("bad --guid value", extra={"value": args.guid})
            return 2
        if guids[0] not in collector.traces:
            _log.error(
                "guid not in any collected trace",
                extra={"guid": args.guid, "traces": len(collector.traces)},
            )
            return 2
    else:
        # latest answered traces first, then latest seen, up to --trees.
        answered = set(collector.answered_guids())
        by_recency = sorted(
            collector.traces,
            key=lambda g: (
                g in answered,
                collector.traces[g].last_event,
            ),
            reverse=True,
        )
        guids = by_recency[: max(1, args.trees)]
    if not guids:
        print("\nno traces collected (is --trace-sample enabled?)")
        return 0
    for guid in guids:
        print()
        print(format_trace_tree(collector.traces[guid]))
    return 0


def _print_sample_trace(cluster, label: str, *, stream=None) -> None:
    """Show one query's hop-by-hop path: the last answered query of the
    run (every hop visible end to end), or the last issued one if the
    workload answered nothing."""
    stream = stream or sys.stdout
    sample = None
    for node_id, term, guid in reversed(cluster.issued):
        trace = cluster.trace(guid)
        if trace is not None and trace.answered:
            sample = (node_id, term, guid)
            break
    if sample is None and cluster.issued:
        sample = cluster.issued[-1]
    if sample is None:
        print(f"{label}: no queries were issued, nothing to trace", file=stream)
        return
    node_id, term, guid = sample
    print(
        f"{label}: trace of {term!r} from node {node_id} "
        f"(guid {guid:#x}):",
        file=stream,
    )
    print(cluster.format_trace(guid), file=stream)


def _run_live_cluster(args) -> int:
    import asyncio

    import numpy as np

    from repro.live import LiveCluster, interest_plan, make_vocabulary
    from repro.metrics.savings import estimate_flood_reduction
    from repro.network.topology import Topology, random_regular

    seed = args.seed if args.seed is not None else 20060814
    rng = np.random.default_rng(seed)
    if args.nodes < 2:
        _log.error("need at least 2 nodes", extra={"nodes": args.nodes})
        return 2
    if args.topology == "star":
        topology = Topology(args.nodes, [(0, i) for i in range(1, args.nodes)])
        origins = list(range(1, args.nodes))
    else:
        topology = random_regular(args.nodes, args.degree, rng=rng)
        origins = None
    vocabulary = make_vocabulary(args.terms)
    plan = interest_plan(
        args.nodes, vocabulary, args.queries, rng, origins=origins
    )

    observe = bool(args.metrics_dump) or args.show_trace

    async def run_one(label: str, rule_routed: bool, n_modes: int):
        async with LiveCluster(
            topology,
            rule_routed=rule_routed,
            top_k=args.top_k,
            max_ttl=args.max_ttl,
            observe=observe,
            state_dir=args.state_dir if rule_routed else None,
        ) as cluster:
            cluster.stock_partitioned_library(vocabulary)
            summary = await cluster.run_plan(plan)
            if args.metrics_dump:
                path = args.metrics_dump
                if n_modes > 1:
                    path = f"{path}.{label}"
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(cluster.render_metrics())
                _log.info(
                    "metrics snapshot written",
                    extra={"path": path, "mode": label},
                )
            if args.show_trace:
                _print_sample_trace(cluster, label)
            return summary, cluster.totals(), cluster.node_stats()

    async def run() -> None:
        modes = [("association", True)]
        if args.compare:
            modes.append(("flooding", False))
        results = {}
        for label, rule_routed in modes:
            summary, totals, per_node = await run_one(
                label, rule_routed, len(modes)
            )
            results[label] = (summary, totals)
            print(f"{label}: {topology.n_nodes} nodes, {len(plan)} queries")
            for key in (
                "answer_rate",
                "frames_per_query",
                "frames_per_answered",
            ):
                print(f"  {key}: {summary[key]:.3f}")
            decisions = totals["queries_rule_routed"] + totals["queries_flooded"]
            if rule_routed and decisions:
                print(
                    f"  rule-routed decisions: "
                    f"{totals['queries_rule_routed']}/{decisions} "
                    f"(rules promoted {totals['rule_regenerations']}x)"
                )
            if args.per_node:
                for node_id, stats in per_node.items():
                    print(f"  node {node_id}: {stats}")
        if args.compare:
            rule_summary, rule_totals = results["association"]
            flood_summary, _ = results["flooding"]
            measured = (
                flood_summary["frames_per_answered"]
                / rule_summary["frames_per_answered"]
                if rule_summary["frames_per_answered"] > 0
                else float("inf")
            )
            decisions = (
                rule_totals["queries_rule_routed"]
                + rule_totals["queries_flooded"]
            )
            coverage = (
                rule_totals["queries_rule_routed"] / decisions
                if decisions
                else 0.0
            )
            estimate = estimate_flood_reduction(
                coverage=coverage,
                success=rule_summary["answer_rate"],
                rule_cost=max(rule_summary["frames_per_query"], 1e-9),
                flood_cost=max(flood_summary["frames_per_query"], 1e-9),
            )
            print(
                f"measured reduction: {measured:.2f}x cheaper per answered "
                f"query ({rule_summary['frames_per_answered']:.2f} vs "
                f"{flood_summary['frames_per_answered']:.2f} frames)"
            )
            print(f"analytic model at measured coverage/success: {estimate}")

    asyncio.run(run())
    return 0


def _run_chaos_soak(args) -> int:
    from repro.faults import chaos_soak

    if args.nodes < 2:
        _log.error("need at least 2 nodes", extra={"nodes": args.nodes})
        return 2
    seed = args.seed if args.seed is not None else 20060814
    if args.state_dir and args.flood:
        _log.error("--state-dir persists rule state; drop --flood to use it")
        return 2
    report = chaos_soak(
        args.plan,
        n_nodes=args.nodes,
        degree=args.degree,
        seed=seed,
        rule_routed=not args.flood,
        warmup_queries=args.warmup_queries,
        time_scale=args.time_scale,
        state_dir=args.state_dir,
    )
    print(report.format())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        _log.info("soak report written", extra={"path": args.report})
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_lines=args.log_json)
    if args.full:
        os.environ["REPRO_FULL_SCALE"] = "1"

    from repro.experiments import EXPERIMENTS, run_experiment

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for experiment_id, (title, _fn) in EXPERIMENTS.items():
            print(f"{experiment_id.ljust(width)}  {title}")
        return 0

    if args.command in ("run", "all"):
        ids = list(EXPERIMENTS) if args.command == "all" else args.experiment_ids
        unknown = [i for i in ids if i not in EXPERIMENTS]
        if unknown:
            _log.error(
                "unknown experiment",
                extra={
                    "experiment": ", ".join(unknown),
                    "known": ", ".join(EXPERIMENTS),
                },
            )
            return 2
        chart = not getattr(args, "no_chart", False)
        workers = getattr(args, "workers", 0)
        n_seeds = getattr(args, "seeds", 0)
        failures = 0
        results = []
        engine_outcomes = {}
        if workers > 0 and not (n_seeds and n_seeds > 1):
            from repro.parallel.engine import run_experiments

            kwargs = {} if args.seed is None else {"seed": args.seed}
            engine_run = run_experiments(ids, workers=workers, **kwargs)
            engine_outcomes = {o.experiment_id: o for o in engine_run.outcomes}
            _log.info(
                "engine run complete",
                extra={
                    "workers": engine_run.workers,
                    "seconds": round(engine_run.seconds, 2),
                    "shared_traces": engine_run.shared_traces,
                    "cache_hit_rate": round(
                        engine_run.cache.get("hit_rate", 0.0), 3
                    ),
                },
            )
        for experiment_id in ids:
            t0 = time.time()
            if n_seeds and n_seeds > 1:
                from repro.experiments.multi import run_seed_sweep

                base = args.seed if args.seed is not None else 20060814
                sweep = run_seed_sweep(
                    experiment_id,
                    seeds=range(base, base + n_seeds),
                    workers=workers,
                )
                print(sweep.report())
                status = "OK" if sweep.all_in_band else "OUT OF BAND"
                print(f"[{experiment_id}] {status} in {time.time() - t0:.1f}s\n")
                if not sweep.all_in_band:
                    failures += 1
                continue
            if experiment_id in engine_outcomes:
                outcome = engine_outcomes[experiment_id]
                result = outcome.result
                elapsed = outcome.seconds
            else:
                kwargs = {} if args.seed is None else {"seed": args.seed}
                result = run_experiment(experiment_id, **kwargs)
                elapsed = time.time() - t0
            results.append(result)
            csv_dir = getattr(args, "csv", None)
            if csv_dir and result.series:
                os.makedirs(csv_dir, exist_ok=True)
                csv_path = os.path.join(csv_dir, f"{experiment_id}.csv")
                result.save_series(csv_path)
                _log.info("series written", extra={"path": csv_path})
            _print_result(result, chart=chart)
            status = "OK" if result.all_within_band else "OUT OF BAND"
            print(f"[{experiment_id}] {status} in {elapsed:.1f}s\n")
            if not result.all_within_band:
                failures += 1
        markdown_path = getattr(args, "markdown", None)
        if markdown_path:
            from repro.experiments.report import build_markdown_report

            with open(markdown_path, "w", encoding="utf-8") as fh:
                fh.write(build_markdown_report(results))
            _log.info("markdown report written", extra={"path": markdown_path})
        return 1 if failures else 0

    if args.command == "bench-all":
        import json

        from repro.parallel.engine import run_experiments

        ids = args.only or list(EXPERIMENTS)
        unknown = [i for i in ids if i not in EXPERIMENTS]
        if unknown:
            _log.error(
                "unknown experiment",
                extra={
                    "experiment": ", ".join(unknown),
                    "known": ", ".join(EXPERIMENTS),
                },
            )
            return 2
        kwargs = {} if args.seed is None else {"seed": args.seed}
        engine_run = run_experiments(ids, workers=args.workers, **kwargs)
        width = max(len(o.experiment_id) for o in engine_run.outcomes)
        failures = 0
        rows = []
        for outcome in engine_run.outcomes:
            ok = outcome.result.all_within_band
            if not ok:
                failures += 1
            print(
                f"{outcome.experiment_id.ljust(width)}  "
                f"{outcome.seconds:7.2f}s  pid={outcome.pid}  "
                f"{'OK' if ok else 'OUT OF BAND'}"
            )
            rows.append(
                {
                    "experiment_id": outcome.experiment_id,
                    "seconds": outcome.seconds,
                    "pid": outcome.pid,
                    "within_band": ok,
                }
            )
        cache = dict(engine_run.cache)
        print(
            f"total: {engine_run.seconds:.2f}s wall "
            f"({engine_run.prewarm_seconds:.2f}s trace prewarm), "
            f"{engine_run.workers} worker(s), "
            f"{engine_run.shared_traces} shared trace(s), "
            f"ruleset cache hit rate {cache.get('hit_rate', 0.0):.1%}"
        )
        payload = {
            "name": "bench_all",
            "workers": engine_run.workers,
            "wall_seconds": engine_run.seconds,
            "prewarm_seconds": engine_run.prewarm_seconds,
            "shared_traces": engine_run.shared_traces,
            "ruleset_cache": cache,
            "experiments": rows,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        _log.info("bench json written", extra={"path": args.json})
        return 1 if failures else 0

    if args.command == "live-node":
        return _run_live_node(args)

    if args.command == "live-cluster":
        return _run_live_cluster(args)

    if args.command == "chaos-soak":
        return _run_chaos_soak(args)

    if args.command == "cluster":
        return _run_cluster(args)

    if args.command == "load-test":
        return _run_load_test(args)

    if args.command == "trace-view":
        return _run_trace_view(args)

    if args.command == "persist":
        import json

        from repro.persist import inspect_state_dir

        if not os.path.isdir(args.state_dir):
            _log.error("no such state dir", extra={"path": args.state_dir})
            return 2
        print(json.dumps(inspect_state_dir(args.state_dir), indent=2))
        return 0

    if args.command == "hier":
        from repro.experiments.hier import (
            amortized_messages_per_query,
            hier_arm_stats,
        )
        from repro.network.hier import HierConfig, HierNetwork

        seed = args.seed if args.seed is not None else 20060814
        substrate = dict(
            n_superpeers=args.superpeers,
            leaves_per_superpeer=args.leaves_per,
            superpeer_degree=args.degree,
            n_categories=args.categories,
            files_per_category=250,
            library_size=60,
            interests_per_peer=4,
            superpeer_ttl=args.ttl,
        )
        n_leaves = args.superpeers * args.leaves_per
        print(
            f"{args.superpeers} super-peers x {args.leaves_per} leaves "
            f"= {n_leaves + args.superpeers} nodes, "
            f"{args.queries} queries after {args.warmup} warm-up, seed {seed}"
        )
        if args.mode is not None:
            net = HierNetwork(HierConfig(mode=args.mode, **substrate), seed=seed)
            stats = net.run_workload(args.queries, warmup=args.warmup)
            arms = {args.mode: (stats, net.control_messages)}
        else:
            arms = hier_arm_stats(
                n_superpeers=args.superpeers,
                n_queries=args.queries,
                warmup=args.warmup,
                seed=seed,
                substrate=substrate,
            )
        header = (
            f"{'arm':<16s} {'msgs/query':>10s} {'+control':>10s} "
            f"{'success':>8s} {'alpha':>7s} {'rho':>7s} {'hops':>6s}"
        )
        print(header)
        print("-" * len(header))
        for arm, (stats, control) in arms.items():
            print(
                f"{arm:<16s} {stats.messages_per_query:>10.2f} "
                f"{amortized_messages_per_query(stats, control):>10.2f} "
                f"{stats.success_rate:>8.3f} {stats.coverage_alpha:>7.3f} "
                f"{stats.success_rho:>7.3f} {stats.mean_first_hit_hops:>6.2f}"
            )
        return 0

    if args.command == "trace":
        from repro.trace.analysis import coverage_ceiling, profile_block, source_turnover
        from repro.trace.blocks import blocks_from_arrays

        def _turnover_report(blocks) -> None:
            for lag in range(1, min(len(blocks), 4)):
                turnover = source_turnover(blocks[0], blocks[lag])
                print(
                    f"volume from sources unseen in block 0, lag {lag}: {turnover:.3f}"
                )
            print(
                f"in-block coverage ceiling (threshold 10): "
                f"{coverage_ceiling(blocks[0]):.3f}"
            )

        if args.store is not None:
            from repro.trace.store import TraceStoreReader

            # The report runs inside the with-block: closing the reader
            # invalidates the retained block views.
            with TraceStoreReader(args.store) as reader:
                if reader.recovered:
                    print(
                        f"note: footer missing/corrupt, recovered {reader.n_blocks} block(s)"
                    )
                blocks = []
                for block in reader.iter_blocks():
                    print(f"block {block.index}: {profile_block(block)}")
                    if len(blocks) < 4:
                        blocks.append(block)
                    if block.index + 1 >= args.blocks:
                        break
                _turnover_report(blocks)
        else:
            from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

            config = MonitorTraceConfig()
            seed = args.seed if args.seed is not None else 20060814
            generator = MonitorTraceGenerator(config, seed=seed)
            arrays = generator.generate_pair_arrays(args.blocks * config.block_size)
            blocks = blocks_from_arrays(
                arrays.source, arrays.replier, block_size=config.block_size
            )
            for block in blocks:
                print(f"block {block.index}: {profile_block(block)}")
            _turnover_report(blocks)
        return 0

    if args.command == "tracegen":
        from time import perf_counter

        from repro.trace.store import TraceStoreWriter
        from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

        config = MonitorTraceConfig()
        seed = args.seed if args.seed is not None else 20060814
        total = args.pairs if args.pairs is not None else args.blocks * config.block_size
        if total < 1:
            print("nothing to generate (need at least 1 pair)", file=sys.stderr)
            return 2
        generator = MonitorTraceGenerator(config, seed=seed)
        codec = None if args.codec == "none" else args.codec
        written = 0
        t0 = perf_counter()
        with TraceStoreWriter(
            args.path,
            block_size=config.block_size,
            codec=codec,
            compress_level=args.compress_level,
        ) as writer:
            while written < total:
                n = min(max(args.chunk_size, 1), total - written)
                arrays = generator.generate_pair_arrays(n)
                writer.append(arrays.source, arrays.replier)
                written += n
            n_blocks = writer.n_blocks + (1 if writer.pending_pairs else 0)
        seconds = perf_counter() - t0
        rate = written / seconds if seconds else float("inf")
        note = f", codec {codec}" if codec else ""
        print(
            f"wrote {written:,} pairs / {n_blocks} block(s) to {args.path} "
            f"in {seconds:.2f}s ({rate:,.0f} pairs/sec, seed {seed}{note})"
        )
        return 0

    if args.command == "trace-eval":
        from time import perf_counter

        from repro.core.streaming import StreamingRules
        from repro.core.strategies import (
            AdaptiveSlidingWindow,
            LazySlidingWindow,
            SlidingWindow,
            StaticRuleset,
        )
        from repro.parallel.partition import (
            evaluate_store,
            evaluate_store_partitioned,
        )
        from repro.trace.store import TraceStoreError, TraceStoreReader

        factories = {
            "static": StaticRuleset,
            "sliding": SlidingWindow,
            "lazy": LazySlidingWindow,
            "adaptive": AdaptiveSlidingWindow,
            "streaming": StreamingRules,
        }
        strategy = factories[args.strategy]()
        try:
            with TraceStoreReader(args.path) as reader:
                n_pairs = reader.n_pairs
                n_blocks = reader.n_blocks
        except (OSError, TraceStoreError) as exc:
            _log.error("cannot open trace store", extra={"error": str(exc)})
            return 2
        t0 = perf_counter()
        run = evaluate_store_partitioned(
            args.path, strategy, workers=max(args.workers, 1)
        )
        seconds = perf_counter() - t0
        rate = n_pairs / seconds if seconds else float("inf")
        print(
            f"{run.strategy_name} over {n_blocks} block(s) / {n_pairs:,} pairs "
            f"with {max(args.workers, 1)} worker(s): "
            f"trials={run.n_trials} avg_coverage={run.average_coverage:.3f} "
            f"avg_success={run.average_success:.3f} "
            f"generations={run.n_generations} "
            f"({seconds:.2f}s, {rate:,.0f} pairs/sec)"
        )
        if args.check_serial:
            serial = evaluate_store(args.path, strategy)
            if serial != run:
                print("MISMATCH: partitioned run differs from serial", file=sys.stderr)
                return 1
            print("serial check: bit-identical")
        return 0

    return 2  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
