"""Streaming rule maintenance (the paper's future-work algorithm).

§VI describes "an additional algorithm ... that would create rule sets for
query routing and update these rules immediately as query and reply
messages are received ... Initial simulations have been very promising, and
consistently show coverage and success values above 90%."

:class:`StreamingRules` implements that algorithm with two interchangeable
counting backends:

* ``backend="exact"`` — an exact sliding window over the most recent
  ``window_pairs`` query–reply pairs (a deque plus O(1) incremental
  counts);
* ``backend="lossy"`` — bounded-memory approximate counts via
  :class:`repro.mining.streaming.StreamingPairCounter` (Manku–Motwani),
  tying the implementation to the data-stream literature the paper cites.

Evaluation is *prequential* (test-then-train): each arriving pair is first
scored against the current rules — would this query's source have been
covered, and would the rules have pointed at the neighbor that actually
replied? — and only then folded into the counts.  Per-block coverage and
success are the prequential tallies, so the strategy plugs into the same
:class:`~repro.core.runner.StrategyRun` reporting as the batch strategies.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Iterable, Sequence

from repro.core.evaluation import RulesetTestResult
from repro.core.runner import StrategyRun, TrialResult
from repro.mining.streaming import StreamingPairCounter
from repro.obs.registry import get_global_registry
from repro.trace.blocks import PairBlock

__all__ = ["StreamingRules"]


class _ExactWindowCounts:
    """Exact pair counts over a sliding window of the last W pairs.

    Every read and update is O(1) (amortized): counts are kept per
    source (``_by_source``), antecedent totals and the live rule count
    are maintained incrementally on push/evict, so neither per-block
    evaluation (``n_rules``) nor per-query explainability
    (``rule_stats``) ever re-scans historical counts.
    """

    def __init__(self, window_pairs: int, min_support_count: int) -> None:
        self.window = deque()  # of (source, replier)
        self.window_pairs = window_pairs
        self.threshold = min_support_count
        # source -> {replier -> windowed count}
        self._by_source: dict[int, dict[int, int]] = {}
        # source -> windowed pairs from that source (confidence denominator)
        self._source_totals: dict[int, int] = {}
        # source -> number of consequents currently at/above threshold;
        # maintained incrementally so coverage checks are O(1).
        self._qualified: dict[int, int] = {}
        self._n_rules = 0

    def covers(self, source: int) -> bool:
        return self._qualified.get(source, 0) > 0

    def matches(self, source: int, replier: int) -> bool:
        counts = self._by_source.get(source)
        return counts is not None and counts.get(replier, 0) >= self.threshold

    def consequents(self, source: int, k: int | None = None) -> list[int]:
        """Qualified repliers for ``source``, highest windowed count first."""
        counts = self._by_source.get(source)
        if not counts:
            return []
        qualified = [
            (count, replier)
            for replier, count in counts.items()
            if count >= self.threshold
        ]
        qualified.sort(key=lambda cr: (-cr[0], cr[1]))
        out = [replier for _count, replier in qualified]
        return out[:k] if k is not None else out

    def push(self, source: int, replier: int) -> bool:
        """Fold in one pair; True if it just crossed the rule threshold."""
        counts = self._by_source.setdefault(source, {})
        new = counts.get(replier, 0) + 1
        counts[replier] = new
        self._source_totals[source] = self._source_totals.get(source, 0) + 1
        newly_qualified = new == self.threshold
        if newly_qualified:
            self._qualified[source] = self._qualified.get(source, 0) + 1
            self._n_rules += 1
        self.window.append((source, replier))
        if len(self.window) > self.window_pairs:
            old_src, old_rep = self.window.popleft()
            old_counts = self._by_source[old_src]
            old = old_counts[old_rep] - 1
            if old == 0:
                del old_counts[old_rep]
                if not old_counts:
                    del self._by_source[old_src]
            else:
                old_counts[old_rep] = old
            total = self._source_totals[old_src] - 1
            if total == 0:
                del self._source_totals[old_src]
            else:
                self._source_totals[old_src] = total
            if old == self.threshold - 1:
                self._n_rules -= 1
                remaining = self._qualified[old_src] - 1
                if remaining == 0:
                    del self._qualified[old_src]
                else:
                    self._qualified[old_src] = remaining
        return newly_qualified

    def n_rules(self) -> int:
        return self._n_rules

    def rule_stats(self, source: int, replier: int) -> tuple[int, float]:
        """Windowed ``(support, confidence)`` for one rule.

        Support is the pair's count inside the sliding window; confidence
        is that count over every windowed pair with the same antecedent —
        the association-rule measures the paper mines per block, read
        live (both O(1) lookups).  ``(0, 0.0)`` when the pair left the
        window.
        """
        counts = self._by_source.get(source)
        support = counts.get(replier, 0) if counts else 0
        if support == 0:
            return 0, 0.0
        return support, support / self._source_totals[source]

    # -- durable state (consumed by repro.persist) ------------------------
    def state(self) -> dict:
        """The complete live state as plain data.

        The window *is* the state: ``_pair_counts`` and ``_qualified``
        are exact functions of its contents, so :meth:`from_state`
        rebuilds them by replaying the window through :meth:`push`.
        """
        return {
            "backend": "exact",
            "window_pairs": self.window_pairs,
            "threshold": self.threshold,
            "window": [(int(s), int(r)) for s, r in self.window],
        }

    @classmethod
    def from_state(cls, state: dict) -> "_ExactWindowCounts":
        counts = cls(state["window_pairs"], state["threshold"])
        for source, replier in state["window"]:
            counts.push(source, replier)
        return counts


class _LossyCounts:
    """Approximate counts via lossy counting (no explicit eviction window).

    The sketch can silently evict entries during compression, so the
    per-source "qualified consequents" cache used for O(1) coverage checks
    is rebuilt periodically (every ``refresh_every`` pushes) rather than
    maintained exactly.
    """

    def __init__(self, epsilon: float, min_support_count: int) -> None:
        self._counter = StreamingPairCounter(epsilon)
        self.threshold = min_support_count
        self._qualified: dict[int, int] = {}
        # source -> estimated windowless pair volume (confidence
        # denominator); incremented per push, trued up on rebuild.
        self._source_totals: dict[int, int] = {}
        self._n_rules = 0
        self._since_refresh = 0
        self.refresh_every = max(1000, int(1.0 / epsilon))

    def covers(self, source: int) -> bool:
        return bool(self._qualified.get(source, 0))

    def matches(self, source: int, replier: int) -> bool:
        return self._counter.estimate(source, replier) >= self.threshold

    def consequents(self, source: int, k: int | None = None) -> list[int]:
        """Qualified repliers for ``source``, highest estimated count first."""
        qualified = [
            (count, replier)
            for (src, replier), count in self._counter.pairs_over_count(
                self.threshold
            ).items()
            if src == source
        ]
        qualified.sort(key=lambda cr: (-cr[0], cr[1]))
        out = [replier for _count, replier in qualified]
        return out[:k] if k is not None else out

    def push(self, source: int, replier: int) -> bool:
        """Fold in one pair; True if it just crossed the rule threshold."""
        before = self._counter.estimate(source, replier)
        self._counter.push(source, replier)
        after = self._counter.estimate(source, replier)
        newly_qualified = before < self.threshold <= after
        if newly_qualified:
            self._qualified[source] = self._qualified.get(source, 0) + 1
            self._n_rules += 1
        self._source_totals[source] = self._source_totals.get(source, 0) + 1
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_every:
            self._rebuild_qualified()
            self._since_refresh = 0
        return newly_qualified

    def _rebuild_qualified(self) -> None:
        """True the incremental caches up against the sketch.

        Sketch compression can silently evict entries (including
        qualified ones), which the O(1) push path cannot observe; this
        periodic pass — amortized over ``refresh_every`` pushes, so
        still O(1)/pair — reconciles the qualified map, the live rule
        count and the per-source totals with what the sketch retains.
        """
        qualified: dict[int, int] = {}
        totals: dict[int, int] = {}
        n_rules = 0
        for (source, _replier), count in self._counter.pairs_over_count(1).items():
            totals[source] = totals.get(source, 0) + count
            if count >= self.threshold:
                qualified[source] = qualified.get(source, 0) + 1
                n_rules += 1
        self._qualified = qualified
        self._source_totals = totals
        self._n_rules = n_rules

    def n_rules(self) -> int:
        return self._n_rules

    def rule_stats(self, source: int, replier: int) -> tuple[int, float]:
        """Estimated ``(support, confidence)`` for one rule.

        Support is the sketch's lower-bound estimate; confidence divides
        by the incrementally maintained per-source volume (trued up
        against the retained sketch entries on every periodic rebuild),
        so the read is O(1) instead of a sketch scan.
        """
        support = self._counter.estimate(source, replier)
        if support == 0:
            return 0, 0.0
        antecedent_total = self._source_totals.get(source, 0)
        return support, support / antecedent_total if antecedent_total else 0.0

    # -- durable state (consumed by repro.persist) ------------------------
    def state(self) -> dict:
        """The complete live state as plain data.

        The sketch entries are dumped sorted so two equal-state objects
        serialize identically; the ``_qualified`` cache is *not* part of
        the state — :meth:`from_state` rebuilds it from the entries, the
        same way the periodic refresh does.
        """
        counter = self._counter._counter
        return {
            "backend": "lossy",
            "epsilon": counter.epsilon,
            "threshold": self.threshold,
            "n_seen": counter.n_seen,
            "current_bucket": counter._current_bucket,
            "since_refresh": self._since_refresh,
            "entries": sorted(
                (int(s), int(r), int(count), int(delta))
                for (s, r), (count, delta) in counter._entries.items()
            ),
        }

    @classmethod
    def from_state(cls, state: dict) -> "_LossyCounts":
        counts = cls(state["epsilon"], state["threshold"])
        counter = counts._counter._counter
        counter.n_seen = state["n_seen"]
        counter._current_bucket = state["current_bucket"]
        counter._entries = {
            (source, replier): (count, delta)
            for source, replier, count, delta in state["entries"]
        }
        counts._since_refresh = state["since_refresh"]
        counts._rebuild_qualified()
        return counts


class StreamingRules:
    """Immediate per-pair rule updates with prequential evaluation.

    Parameters
    ----------
    min_support_count:
        Same support semantics as the batch strategies: a (source, replier)
        pair is a rule once its windowed count reaches this value.
    window_pairs:
        Size of the exact sliding window (default: one paper block,
        10,000 pairs).  Ignored by the lossy backend.
    backend:
        ``"exact"`` or ``"lossy"``.
    epsilon:
        Lossy-counting error bound (lossy backend only).
    """

    name = "streaming"

    def __init__(
        self,
        *,
        min_support_count: int = 10,
        window_pairs: int = 10_000,
        backend: str = "exact",
        epsilon: float = 1e-4,
    ) -> None:
        if min_support_count < 1:
            raise ValueError("min_support_count must be >= 1")
        if window_pairs < 1:
            raise ValueError("window_pairs must be >= 1")
        if backend not in ("exact", "lossy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.min_support_count = int(min_support_count)
        self.window_pairs = int(window_pairs)
        self.backend = backend
        self.epsilon = float(epsilon)

    def make_counts(self):
        """A fresh live counts object for this configuration.

        The returned object is the strategy's online core without the
        block-driven evaluation loop: ``push(source, replier)`` folds in
        one observed pair (returning True when it crosses the rule
        threshold), ``covers(source)`` / ``matches(source, replier)`` /
        ``consequents(source, k)`` query the current rules, and
        ``n_rules()`` sizes the rule set.  :mod:`repro.live` drives one
        of these per servent to adapt routing as live traffic arrives.
        """
        if self.backend == "exact":
            return _ExactWindowCounts(self.window_pairs, self.min_support_count)
        return _LossyCounts(self.epsilon, self.min_support_count)

    def partition_warmup(
        self, scored_start: int, block_pairs: Sequence[int] | None = None
    ) -> Sequence[int]:
        """Blocks needed before ``scored_start`` for partitioned runs.

        The exact backend's entire state is the sliding window of the
        last ``window_pairs`` pairs, so enough trailing blocks to cover
        that many pairs reproduce it bit-for-bit (``block_pairs`` —
        per-block pair counts — sizes that tail; without it the full
        prefix is the safe fallback).  The lossy sketch accumulates over
        the whole history, so it always warms from block 0.
        """
        if scored_start < 1:
            raise ValueError("scored_start must be >= 1 (block 0 only warms)")
        if self.backend != "exact" or block_pairs is None:
            return range(0, scored_start)
        start, covered = scored_start, 0
        while start > 0 and covered < self.window_pairs:
            start -= 1
            covered += int(block_pairs[start])
        return range(start, scored_start)

    def run_partition(
        self, blocks: Iterable[PairBlock], scored_start: int
    ) -> StrategyRun:
        """Run over warm-up + scored blocks, keeping only scored trials.

        Warm-up blocks past the first are scored and discarded (scoring
        never mutates the counts, so the final state matches push-only
        warm-up).  ``n_generations`` stays 0 — streaming maintenance has
        no batch generations to attribute, in partials or merged runs.
        """
        if scored_start < 1:
            raise ValueError("scored_start must be >= 1 (block 0 only warms)")
        run = self.run(blocks)
        kept = tuple(t for t in run.trials if t.block_index >= scored_start)
        return StrategyRun(self.name, kept, n_generations=0)

    def run(self, blocks: Iterable[PairBlock]) -> StrategyRun:
        """Prequentially process ``blocks`` (any iterable, e.g. a store
        reader's block generator — no block is retained after its pairs
        fold into the counts).

        The first block only warms the counts (it is the other strategies'
        training block, so per-trial series stay aligned across
        strategies); every subsequent block yields a
        :class:`~repro.core.runner.TrialResult`.
        """
        it = iter(blocks)
        warmup = next(it, None)
        if warmup is None:
            raise ValueError("streaming needs at least 2 blocks")
        counts = self.make_counts()
        for source, replier in zip(
            warmup.sources.tolist(), warmup.repliers.tolist()
        ):
            counts.push(source, replier)
        del warmup
        trials = []
        timings = get_global_registry().histogram(
            "repro_offline_test_seconds",
            "Per-block test duration in the offline simulator.",
            ("strategy",),
        ).labels(self.name)
        for block in it:
            t0 = perf_counter()
            n_total = len(block)
            n_covered = 0
            n_successful = 0
            for source, replier in zip(
                block.sources.tolist(), block.repliers.tolist()
            ):
                if counts.covers(source):
                    n_covered += 1
                    if counts.matches(source, replier):
                        n_successful += 1
                counts.push(source, replier)
            timings.observe(perf_counter() - t0)
            trials.append(
                TrialResult(
                    block_index=block.index,
                    result=RulesetTestResult(
                        n_total=n_total,
                        n_covered=n_covered,
                        n_successful=n_successful,
                    ),
                    fresh_ruleset=True,  # rules are *always* fresh
                    ruleset_size=counts.n_rules(),
                )
            )
        if not trials:
            raise ValueError("streaming needs at least 2 blocks")
        # Continuous maintenance: report zero batch generations; the
        # blocks_per_generation metric is inf by construction.
        return StrategyRun(self.name, tuple(trials), n_generations=0)
