"""Mutable overlay topology (substrate for §VI topology adaptation).

The base :class:`~repro.network.topology.Topology` is immutable — right
for trace-driven work, wrong for the paper's future-work idea of
*re-arranging the overlay* using mined rules.  :class:`DynamicTopology`
exposes the same read interface plus edge addition/removal with a
per-node degree cap (real peers have connection budgets).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

__all__ = ["DynamicTopology"]


class DynamicTopology:
    """An undirected graph supporting edge rewiring under a degree cap."""

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[tuple[int, int]],
        *,
        max_degree: int | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if max_degree is not None and max_degree < 1:
            raise ValueError("max_degree must be >= 1 or None")
        self.max_degree = max_degree
        self._adj: list[set[int]] = [set() for _ in range(n_nodes)]
        self.n_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    @classmethod
    def from_topology(cls, topology, *, max_degree: int | None = None) -> "DynamicTopology":
        """Thaw an immutable :class:`Topology` into a dynamic one."""
        return cls(topology.n_nodes, topology.edges(), max_degree=max_degree)

    # -- read interface (mirrors Topology) -------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._adj)

    def neighbors(self, node: int) -> tuple[int, ...]:
        return tuple(sorted(self._adj[node]))

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def degrees(self) -> list[int]:
        return [len(nbrs) for nbrs in self._adj]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def edges(self) -> list[tuple[int, int]]:
        out = []
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    out.append((u, v))
        return out

    def component_of(self, start: int) -> set[int]:
        seen = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    def is_connected(self) -> bool:
        return len(self.component_of(0)) == self.n_nodes

    def shortest_path_length(self, src: int, dst: int) -> int | None:
        if src == dst:
            return 0
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    if v == dst:
                        return dist[v]
                    queue.append(v)
        return None

    # -- mutation ----------------------------------------------------------
    def can_add_edge(self, u: int, v: int) -> bool:
        """Whether (u, v) can be added under the degree cap."""
        if u == v or self.has_edge(u, v):
            return False
        if self.max_degree is not None:
            if len(self._adj[u]) >= self.max_degree:
                return False
            if len(self._adj[v]) >= self.max_degree:
                return False
        return True

    def add_edge(self, u: int, v: int) -> None:
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise ValueError(f"edge ({u}, {v}) out of range")
        if u == v:
            raise ValueError(f"self-loop at node {u}")
        if self.has_edge(u, v):
            return
        if not self.can_add_edge(u, v):
            raise ValueError(
                f"degree cap {self.max_degree} forbids edge ({u}, {v})"
            )
        self._adj[u].add(v)
        self._adj[v].add(u)
        self.n_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        if not self.has_edge(u, v):
            raise ValueError(f"no edge ({u}, {v})")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self.n_edges -= 1

    def detach_node(self, node: int) -> list[tuple[int, int]]:
        """Remove every edge incident to ``node``; returns them (u < v).

        The churn driver (:class:`repro.faults.churn.TopologyChurn`) uses
        this for peer departure: the returned edges are what a later
        rejoin restores.
        """
        removed = []
        for neighbor in self.neighbors(node):
            self.remove_edge(node, neighbor)
            removed.append((min(node, neighbor), max(node, neighbor)))
        return removed

    def __repr__(self) -> str:  # pragma: no cover
        return f"DynamicTopology(n={self.n_nodes}, edges={self.n_edges})"
