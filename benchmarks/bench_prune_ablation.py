"""Bench `prune-ablation`: §III-B.1 — support-prune threshold trade-off.

Paper: low thresholds give large rule sets, high thresholds concise ones;
Sliding Window coverage stays similar for moderate thresholds.
"""

from benchmarks.conftest import run_and_report


def test_prune_ablation(benchmark):
    result = run_and_report(benchmark, "prune-ablation")
    coverages = result.extras["coverages"]
    # Monotone non-increasing in the threshold.
    thresholds = sorted(coverages)
    values = [coverages[t] for t in thresholds]
    assert all(a >= b - 0.02 for a, b in zip(values, values[1:]))
