"""Tests for repro.utils.timeline."""

import pytest

from repro.utils.timeline import DAY, HOUR, MINUTE, SECOND, WEEK, SimClock


class TestConstants:
    def test_hierarchy(self):
        assert MINUTE == 60 * SECOND
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_by(self):
        clock = SimClock(1.0)
        clock.advance_by(2.5)
        assert clock.now == 3.5

    def test_cannot_rewind(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_cannot_advance_by_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-1.0)

    def test_advance_to_same_time_is_ok(self):
        clock = SimClock(4.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0
