"""Tests for repro.store.query (join and aggregation)."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.store.query import group_count, inner_join
from repro.store.table import Table


def make_sides():
    left = Table("queries", ["guid", "source"])
    left.extend([(1, "a"), (2, "b"), (3, "c"), (2, "b2")])
    right = Table("replies", ["guid", "replier"])
    right.extend([(2, "x"), (3, "y"), (2, "z"), (9, "w")])
    return left, right


class TestInnerJoin:
    def test_basic_join(self):
        left, right = make_sides()
        out = inner_join(left, right, on="guid")
        rows = set(out.iter_rows())
        assert rows == {
            (2, "b", "x"),
            (2, "b", "z"),
            (3, "c", "y"),
            (2, "b2", "x"),
            (2, "b2", "z"),
        }

    def test_column_selection(self):
        left, right = make_sides()
        out = inner_join(left, right, on="guid", left_columns=[], right_columns=["replier"])
        assert out.column_names == ("guid", "replier")

    def test_name_collision_prefixed(self):
        left = Table("l", ["guid", "time"])
        left.append((1, 10.0))
        right = Table("r", ["guid", "time"])
        right.append((1, 20.0))
        out = inner_join(left, right, on="guid")
        assert out.column_names == ("guid", "time", "r.time")
        assert out.row(0) == (1, 10.0, 20.0)

    def test_empty_result(self):
        left = Table("l", ["guid", "v"])
        left.append((1, "a"))
        right = Table("r", ["guid", "w"])
        right.append((2, "b"))
        out = inner_join(left, right, on="guid")
        assert len(out) == 0

    @given(
        st.lists(st.tuples(st.integers(0, 8), st.integers(0, 100)), max_size=40),
        st.lists(st.tuples(st.integers(0, 8), st.integers(0, 100)), max_size=40),
    )
    def test_matches_nested_loop_join(self, left_rows, right_rows):
        left = Table("l", ["guid", "lv"])
        left.extend(left_rows)
        right = Table("r", ["guid", "rv"])
        right.extend(right_rows)
        out = inner_join(left, right, on="guid")
        expected = Counter(
            (lg, lv, rv)
            for lg, lv in left_rows
            for rg, rv in right_rows
            if lg == rg
        )
        assert Counter(out.iter_rows()) == expected


class TestGroupCount:
    def test_single_column(self):
        table = Table("t", ["source"])
        table.extend([("a",), ("b",), ("a",)])
        assert group_count(table, ["source"]) == Counter({("a",): 2, ("b",): 1})

    def test_pair_grouping(self):
        table = Table("t", ["source", "replier"])
        table.extend([(1, 2), (1, 2), (1, 3)])
        counts = group_count(table, ["source", "replier"])
        assert counts[(1, 2)] == 2
        assert counts[(1, 3)] == 1

    def test_empty_table(self):
        table = Table("t", ["a"])
        assert group_count(table, ["a"]) == Counter()

    def test_requires_columns(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError):
            group_count(table, [])
