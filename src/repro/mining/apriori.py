"""Apriori frequent-itemset mining (Agrawal et al., the paper's ref [15]).

Level-wise search: frequent k-itemsets are joined to form (k+1)-candidates,
candidates with an infrequent subset are pruned (the *apriori property* —
support is anti-monotone), and a single pass over the transactions counts
the survivors.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

from repro.mining.transactions import TransactionDataset

__all__ = ["apriori"]


def _candidate_join(frequent: list[frozenset[int]], k: int) -> set[frozenset[int]]:
    """Join frequent (k-1)-itemsets sharing a (k-2)-prefix into k-candidates."""
    candidates: set[frozenset[int]] = set()
    # Sort by the canonical tuple so prefix-sharing pairs are adjacent-ish;
    # correctness does not depend on order, only the dedup via the set does.
    as_tuples = sorted(tuple(sorted(s)) for s in frequent)
    n = len(as_tuples)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = as_tuples[i], as_tuples[j]
            if a[: k - 2] != b[: k - 2]:
                # With sorted tuples, once prefixes diverge for j they
                # diverge for all later j as well.
                break
            candidates.add(frozenset(a) | frozenset(b))
    return candidates


def _prune_candidates(
    candidates: set[frozenset[int]], frequent_prev: set[frozenset[int]]
) -> list[frozenset[int]]:
    """Drop candidates with an infrequent (k-1)-subset."""
    kept = []
    for cand in candidates:
        if all(cand - {item} in frequent_prev for item in cand):
            kept.append(cand)
    return kept


def apriori(
    dataset: TransactionDataset,
    *,
    min_support_count: int = 1,
    max_size: int | None = None,
) -> dict[frozenset[int], int]:
    """Mine all itemsets with support count >= ``min_support_count``.

    Parameters
    ----------
    dataset:
        The transactions to mine.
    min_support_count:
        Absolute support threshold (>= 1).  The paper's routing application
        prunes (source, replier) pairs seen fewer than 10 times; that is a
        ``min_support_count=10`` mine over 2-item transactions.
    max_size:
        Optional cap on itemset cardinality (``None`` = unbounded).

    Returns
    -------
    dict
        Mapping from frequent itemset (``frozenset`` of internal item ids)
        to its exact support count.
    """
    if min_support_count < 1:
        raise ValueError("min_support_count must be >= 1")
    if max_size is not None and max_size < 1:
        raise ValueError("max_size must be >= 1 or None")

    result: dict[frozenset[int], int] = {}

    # Level 1 from the dataset's precomputed item counts.
    frequent = [
        frozenset((item,))
        for item, count in dataset.item_counts().items()
        if count >= min_support_count
    ]
    for itemset in frequent:
        (item,) = itemset
        result[itemset] = dataset.item_count(item)

    k = 2
    while frequent and (max_size is None or k <= max_size):
        candidates = _candidate_join(frequent, k)
        candidates = _prune_candidates(candidates, set(frequent))
        if not candidates:
            break
        counts: Counter[frozenset[int]] = Counter()
        # Count by enumerating each transaction's k-subsets when that is
        # cheaper than testing every candidate, otherwise test candidates.
        candidate_set = set(candidates)
        for tx in dataset.transactions:
            if len(tx) < k:
                continue
            if _n_choose_k(len(tx), k) <= len(candidate_set):
                for combo in combinations(sorted(tx), k):
                    fs = frozenset(combo)
                    if fs in candidate_set:
                        counts[fs] += 1
            else:
                for cand in candidate_set:
                    if cand <= tx:
                        counts[cand] += 1
        frequent = [c for c, n in counts.items() if n >= min_support_count]
        for itemset in frequent:
            result[itemset] = counts[itemset]
        k += 1
    return result


def _n_choose_k(n: int, k: int) -> int:
    if k > n:
        return 0
    num = 1
    for i in range(k):
        num = num * (n - i) // (i + 1)
    return num
